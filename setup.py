"""Package metadata (single-sourced version, declared dependencies).

Kept as a plain ``setup.py`` so fully offline machines without the
``wheel`` package can still install via ``python setup.py develop``
(modern pip builds editable installs through PEP 660, which needs it).
The version is read from ``src/repro/_version.py`` — the single source of
truth — rather than being restated here.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    text = Path(__file__).parent.joinpath("src", "repro", "_version.py").read_text()
    match = re.search(r'__version__\s*=\s*"([^"]+)"', text)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/_version.py")
    return match.group(1)


setup(
    name="walk-not-wait-repro",
    version=read_version(),
    description=(
        "Reproduction of 'Walk, Not Wait: Faster Sampling Over Online "
        "Social Networks' (VLDB 2015)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.22",
        "networkx>=2.6",
    ],
    extras_require={
        "dev": [
            "pytest>=7",
            "pytest-benchmark",
            "hypothesis",
        ],
        # The JIT walk-kernel backend (repro.walks.kernels "native").
        # Optional: without it the package runs on the NumPy reference
        # kernels; 0.57 is the first numba with np.random.Generator
        # support in nopython code (bit-identical streams).
        "native": [
            "numba>=0.57",
        ],
        # The HTTP adapter (repro.service.server.create_app) plus the
        # test client it is exercised with.  Optional: the core service
        # runs fully in-process without either.
        "service": [
            "fastapi",
            "httpx",
        ],
    },
)
