"""Setuptools shim for offline environments lacking the wheel package.

Modern pip builds editable installs through PEP 660, which requires the
``wheel`` package; fully offline machines without it can still install via
``python setup.py develop``.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
