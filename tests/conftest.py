"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import barabasi_albert_graph, cycle_graph
from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """Smallest interesting graph: a 3-cycle."""
    g = Graph(name="triangle")
    g.add_edges_from([(0, 1), (1, 2), (2, 0)])
    return g


@pytest.fixture
def path4() -> Graph:
    """Path 0-1-2-3 (non-regular, bipartite)."""
    g = Graph(name="path4")
    g.add_edges_from([(0, 1), (1, 2), (2, 3)])
    return g


@pytest.fixture
def star5() -> Graph:
    """Hub 0 with 4 leaves — extreme degree skew."""
    g = Graph(name="star5")
    g.add_edges_from([(0, i) for i in range(1, 5)])
    return g


@pytest.fixture
def small_ba() -> Graph:
    """A 30-node scale-free graph, the workhorse for statistical tests."""
    return barabasi_albert_graph(30, 3, seed=7).relabeled()


@pytest.fixture
def small_cycle() -> Graph:
    """An 11-node (odd, hence aperiodic) cycle."""
    return cycle_graph(11).relabeled()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.default_rng(12345)
