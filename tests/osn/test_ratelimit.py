"""Token-bucket rate limiter on the virtual clock."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.osn.ratelimit import TokenBucketRateLimiter, VirtualClock


def test_clock_advances_monotonically():
    clock = VirtualClock(start=10.0)
    clock.advance(5.0)
    assert clock.now == 15.0
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_burst_up_to_capacity():
    limiter = TokenBucketRateLimiter(capacity=3, period_seconds=30)
    for _ in range(3):
        limiter.acquire()
    with pytest.raises(RateLimitExceededError):
        limiter.acquire()


def test_refill_over_time():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=2, period_seconds=20, clock=clock)
    limiter.acquire()
    limiter.acquire()
    clock.advance(10.0)  # refill rate 0.1/s -> one token back
    limiter.acquire()
    with pytest.raises(RateLimitExceededError):
        limiter.acquire()


def test_tokens_capped_at_capacity():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=5, period_seconds=10, clock=clock)
    clock.advance(1000.0)
    assert limiter.tokens == 5.0


def test_acquire_or_wait_reports_wait_time():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=1, period_seconds=60, clock=clock)
    assert limiter.acquire_or_wait() == 0.0
    wait = limiter.acquire_or_wait()
    assert wait == pytest.approx(60.0)
    assert clock.now == pytest.approx(60.0)


def test_twitter_example_timing():
    # 15 requests / 15 minutes: 100 requests should take ~85 minutes.
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=15, period_seconds=900, clock=clock)
    for _ in range(100):
        limiter.acquire_or_wait()
    assert clock.now == pytest.approx((100 - 15) * 60.0)


def test_retry_after_hint_is_accurate():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=1, period_seconds=10, clock=clock)
    limiter.acquire()
    try:
        limiter.acquire()
    except RateLimitExceededError as err:
        clock.advance(err.retry_after)
        limiter.acquire()  # must now succeed
    else:  # pragma: no cover
        pytest.fail("second acquire should have been limited")


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        TokenBucketRateLimiter(capacity=0, period_seconds=10)
    with pytest.raises(ConfigurationError):
        TokenBucketRateLimiter(capacity=1, period_seconds=0)


# ----------------------------------------------------------------------
# Property tests: the batch API is exactly N sequential acquires
# ----------------------------------------------------------------------

#: One interleaving step: drain a batch, drain singly, or let time pass.
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("many"), st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("one"), st.integers(min_value=1, max_value=8)),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        ),
    ),
    min_size=1,
    max_size=20,
)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


class TestBatchAcquireProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=25),
        period=st.floats(min_value=0.5, max_value=1800.0, allow_nan=False),
        events=_EVENTS,
    )
    def test_many_matches_sequential_acquires_under_interleaving(
        self, capacity, period, events
    ):
        """acquire_or_wait_many(n) ≡ n× acquire_or_wait, at every step.

        Two limiters see the same interleaving of drains and idle time;
        one settles each drain as a batch, the other one token at a time.
        Their mirrored waits, clocks, and token levels must never diverge.
        """
        batch_clock, serial_clock = VirtualClock(), VirtualClock()
        batched = TokenBucketRateLimiter(capacity, period, clock=batch_clock)
        serial = TokenBucketRateLimiter(capacity, period, clock=serial_clock)
        for kind, value in events:
            if kind == "advance":
                batch_clock.advance(value)
                serial_clock.advance(value)
                continue
            count = int(value)
            batch_wait = batched.acquire_or_wait_many(count)
            serial_wait = sum(
                serial.acquire_or_wait() for _ in range(count)
            )
            assert _close(batch_wait, serial_wait)
            assert _close(batch_clock.now, serial_clock.now)
            assert _close(batched.tokens, serial.tokens)

    @settings(max_examples=150, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=25),
        period=st.floats(min_value=0.5, max_value=1800.0, allow_nan=False),
        events=_EVENTS,
    )
    def test_never_over_grants(self, capacity, period, events):
        """Total tokens granted never exceed capacity + elapsed × rate.

        The token-bucket contract: at any observable moment the bucket
        has handed out at most its initial burst plus what the refill
        rate has produced since the start, and the live token level
        never goes negative.
        """
        clock = VirtualClock()
        limiter = TokenBucketRateLimiter(capacity, period, clock=clock)
        granted = 0
        for kind, value in events:
            if kind == "advance":
                clock.advance(value)
                continue
            count = int(value)
            if kind == "many":
                limiter.acquire_or_wait_many(count)
                granted += count
            else:
                for _ in range(count):
                    limiter.acquire_or_wait()
                    granted += 1
            budget = capacity + clock.now * limiter.refill_rate
            assert granted <= budget + 1e-6 * max(1.0, budget)
            assert limiter.tokens >= -1e-9
