"""Token-bucket rate limiter on the virtual clock."""

import pytest

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.osn.ratelimit import TokenBucketRateLimiter, VirtualClock


def test_clock_advances_monotonically():
    clock = VirtualClock(start=10.0)
    clock.advance(5.0)
    assert clock.now == 15.0
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_burst_up_to_capacity():
    limiter = TokenBucketRateLimiter(capacity=3, period_seconds=30)
    for _ in range(3):
        limiter.acquire()
    with pytest.raises(RateLimitExceededError):
        limiter.acquire()


def test_refill_over_time():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=2, period_seconds=20, clock=clock)
    limiter.acquire()
    limiter.acquire()
    clock.advance(10.0)  # refill rate 0.1/s -> one token back
    limiter.acquire()
    with pytest.raises(RateLimitExceededError):
        limiter.acquire()


def test_tokens_capped_at_capacity():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=5, period_seconds=10, clock=clock)
    clock.advance(1000.0)
    assert limiter.tokens == 5.0


def test_acquire_or_wait_reports_wait_time():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=1, period_seconds=60, clock=clock)
    assert limiter.acquire_or_wait() == 0.0
    wait = limiter.acquire_or_wait()
    assert wait == pytest.approx(60.0)
    assert clock.now == pytest.approx(60.0)


def test_twitter_example_timing():
    # 15 requests / 15 minutes: 100 requests should take ~85 minutes.
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=15, period_seconds=900, clock=clock)
    for _ in range(100):
        limiter.acquire_or_wait()
    assert clock.now == pytest.approx((100 - 15) * 60.0)


def test_retry_after_hint_is_accurate():
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=1, period_seconds=10, clock=clock)
    limiter.acquire()
    try:
        limiter.acquire()
    except RateLimitExceededError as err:
        clock.advance(err.retry_after)
        limiter.acquire()  # must now succeed
    else:  # pragma: no cover
        pytest.fail("second acquire should have been limited")


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        TokenBucketRateLimiter(capacity=0, period_seconds=10)
    with pytest.raises(ConfigurationError):
        TokenBucketRateLimiter(capacity=1, period_seconds=0)
