"""Neighbor-access restriction semantics (paper §6.3.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.osn.restrictions import (
    FixedRandomKRestriction,
    RandomKRestriction,
    TruncatedKRestriction,
    mark_recapture_degree,
    mutual_neighbors,
)


@pytest.fixture
def neighbors10():
    return tuple(range(10))


def test_random_k_fresh_subsets(neighbors10):
    restriction = RandomKRestriction(3, seed=1)
    samples = {restriction.apply(0, neighbors10) for _ in range(30)}
    assert all(len(s) == 3 for s in samples)
    assert len(samples) > 1  # re-randomizes per call
    # All returned nodes are true neighbors.
    for subset in samples:
        assert set(subset) <= set(neighbors10)


def test_random_k_small_list_passthrough():
    restriction = RandomKRestriction(5, seed=1)
    assert restriction.apply(0, (1, 2)) == (1, 2)


def test_fixed_k_stable_per_node(neighbors10):
    restriction = FixedRandomKRestriction(4, seed=2)
    first = restriction.apply(7, neighbors10)
    assert all(restriction.apply(7, neighbors10) == first for _ in range(10))
    # Different nodes may get different subsets.
    other = restriction.apply(8, neighbors10)
    assert len(other) == 4


def test_fixed_k_reset_is_still_deterministic(neighbors10):
    restriction = FixedRandomKRestriction(4, seed=2)
    before = restriction.apply(7, neighbors10)
    restriction.reset()
    assert restriction.apply(7, neighbors10) == before  # derived from (seed, node)


def test_truncated_prefix(neighbors10):
    restriction = TruncatedKRestriction(3)
    assert restriction.apply(0, neighbors10) == (0, 1, 2)
    assert restriction.apply(0, (5,)) == (5,)


def test_restrictions_validate_k():
    with pytest.raises(ConfigurationError):
        RandomKRestriction(0)
    with pytest.raises(ConfigurationError):
        FixedRandomKRestriction(0)
    with pytest.raises(ConfigurationError):
        TruncatedKRestriction(0)


def test_type2_and_type3_indistinguishable_statically(neighbors10):
    # Paper: fixed-random-k and truncated-l present identical interfaces —
    # both return a stable subset of fixed size.
    fixed = FixedRandomKRestriction(3, seed=5)
    trunc = TruncatedKRestriction(3)
    for node in range(5):
        a = fixed.apply(node, neighbors10)
        b = trunc.apply(node, neighbors10)
        assert len(a) == len(b) == 3
        assert a == fixed.apply(node, neighbors10)
        assert b == trunc.apply(node, neighbors10)


def test_mutual_neighbors_bidirectional_check():
    graph = barabasi_albert_graph(40, 3, seed=3).relabeled()
    api = SocialNetworkAPI(graph, restriction=TruncatedKRestriction(3))
    node = max(graph.nodes(), key=graph.degree)
    mutual = mutual_neighbors(api, node)
    visible = api.neighbors(node)
    assert set(mutual) <= set(visible)
    # Every mutual edge really is bidirectional under the restriction.
    for v in mutual:
        assert node in api.neighbors(v)


def test_mutual_neighbors_unrestricted_is_identity(small_ba):
    api = SocialNetworkAPI(small_ba)
    assert mutual_neighbors(api, 0) == small_ba.neighbors(0)


class TestMarkRecaptureDegree:
    def test_unrestricted_returns_visible_degree(self, small_ba):
        api = SocialNetworkAPI(small_ba)
        assert mark_recapture_degree(api, 5) == small_ba.degree(5)

    def test_stable_restriction_returns_visible_degree(self, small_ba):
        api = SocialNetworkAPI(small_ba, restriction=TruncatedKRestriction(3))
        hub = max(small_ba.nodes(), key=small_ba.degree)
        assert mark_recapture_degree(api, hub) == 3.0

    def test_type1_recovers_true_degree(self):
        from repro.graphs.generators import star_graph

        true_degree = 40
        graph = star_graph(true_degree + 1)
        estimates = []
        for rep in range(30):
            api = SocialNetworkAPI(
                graph, restriction=RandomKRestriction(8, seed=rep)
            )
            estimates.append(mark_recapture_degree(api, 0, rounds=6))
        import numpy as np

        assert abs(np.mean(estimates) - true_degree) / true_degree < 0.2

    def test_small_degree_exact(self):
        from repro.graphs.generators import star_graph

        graph = star_graph(5)  # hub degree 4 < k
        api = SocialNetworkAPI(graph, restriction=RandomKRestriction(8, seed=1))
        assert mark_recapture_degree(api, 0) == 4.0

    def test_rounds_are_query_free_after_first(self, small_ba):
        api = SocialNetworkAPI(small_ba, restriction=RandomKRestriction(2, seed=2))
        hub = max(small_ba.nodes(), key=small_ba.degree)
        mark_recapture_degree(api, hub, rounds=6)
        assert api.query_cost == 1  # unique-node cost model: repeats free
        assert api.raw_calls == 6

    def test_validates_rounds(self, small_ba):
        api = SocialNetworkAPI(small_ba)
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            mark_recapture_degree(api, 0, rounds=1)
