"""Vectorized query accounting: batch API grain vs the scalar grain."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    NodeNotFoundError,
    QueryBudgetExceededError,
)
from repro.osn.accounting import QueryBudget, QueryCounter
from repro.osn.api import SocialNetworkAPI
from repro.osn.ratelimit import TokenBucketRateLimiter, VirtualClock
from repro.osn.restrictions import (
    FixedRandomKRestriction,
    RandomKRestriction,
    TruncatedKRestriction,
)


@pytest.fixture
def nodes(rng):
    return rng.integers(0, 30, size=60)


# ----------------------------------------------------------------------
# QueryCounter batch grain
# ----------------------------------------------------------------------
def test_charge_batch_matches_scalar_sequence(nodes):
    scalar, batch = QueryCounter(), QueryCounter()
    expected = [scalar.charge(int(n)) for n in nodes]
    got = batch.charge_batch(nodes)
    assert got.tolist() == expected
    assert batch.unique_nodes == scalar.unique_nodes
    assert batch.raw_calls == scalar.raw_calls
    assert batch.seen_many(nodes).all()
    assert not batch.seen_many(np.array([999])).any()


def test_charge_batch_interleaves_with_scalar(nodes):
    counter = QueryCounter()
    counter.charge(int(nodes[0]))
    new = counter.charge_batch(nodes[:5])
    assert not new[0] or int(nodes[0]) not in nodes[:1]  # first entry already seen
    assert counter.seen(int(nodes[1]))
    counter.record_raw(3)
    assert counter.raw_calls == 1 + 5 + 3


def test_delta_between_snapshots(nodes):
    counter = QueryCounter()
    counter.charge_batch(nodes[:10])
    before = counter.snapshot()
    counter.charge_batch(nodes)
    delta = counter.delta(before)
    assert delta.unique_nodes == counter.unique_nodes - before.unique_nodes
    assert delta.raw_calls == nodes.size
    assert before.cost_since(counter.snapshot()) == delta.unique_nodes


def test_budget_affordable():
    counter = QueryCounter()
    budget = QueryBudget(5)
    counter.charge_batch(np.arange(3))
    assert budget.affordable(counter, 10) == 2
    assert budget.affordable(counter, 1) == 1
    assert QueryBudget(None).affordable(counter, 10) == 10


# ----------------------------------------------------------------------
# Rate limiter batch grain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [0, 1, 2, 5, 17])
def test_acquire_many_equals_sequential(count):
    scalar = TokenBucketRateLimiter(3, 90.0, clock=VirtualClock())
    batch = TokenBucketRateLimiter(3, 90.0, clock=VirtualClock())
    waited = sum(scalar.acquire_or_wait() for _ in range(count))
    assert batch.acquire_or_wait_many(count) == pytest.approx(waited)
    assert batch.clock.now == pytest.approx(scalar.clock.now)
    assert batch.tokens == pytest.approx(scalar.tokens)


def test_acquire_many_rejects_negative():
    limiter = TokenBucketRateLimiter(3, 90.0)
    with pytest.raises(ConfigurationError):
        limiter.acquire_or_wait_many(-1)


# ----------------------------------------------------------------------
# API batch grain
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "restriction",
    [None, FixedRandomKRestriction(2, seed=3), TruncatedKRestriction(2)],
    ids=["none", "type2", "type3"],
)
def test_neighbors_batch_equals_scalar_loop(small_ba, nodes, restriction):
    other = (
        None
        if restriction is None
        else type(restriction)(2, seed=3)
        if isinstance(restriction, FixedRandomKRestriction)
        else TruncatedKRestriction(2)
    )
    scalar = SocialNetworkAPI(small_ba, restriction=restriction)
    batch = SocialNetworkAPI(small_ba, restriction=other)
    expected = [scalar.neighbors(int(n)) for n in nodes]
    got = batch.neighbors_batch(nodes)
    assert got == expected
    assert batch.query_cost == scalar.query_cost
    assert batch.raw_calls == scalar.raw_calls
    assert batch.degrees_batch(nodes).tolist() == [len(r) for r in expected]
    # Degrees for cached nodes are free (no new raw calls).
    assert batch.raw_calls == scalar.raw_calls


def test_batch_charges_unique_only(small_ba):
    api = SocialNetworkAPI(small_ba)
    rows = api.neighbors_batch(np.array([4, 4, 4, 9]))
    assert len(rows) == 4 and rows[0] == rows[1] == rows[2]
    assert api.query_cost == 2
    assert api.raw_calls == 2


def test_batch_type1_reinvokes_per_occurrence(small_ba):
    hub = max(small_ba.nodes(), key=small_ba.degree)
    api = SocialNetworkAPI(small_ba, restriction=RandomKRestriction(2, seed=1))
    rows = api.neighbors_batch(np.array([hub, hub, hub, hub]))
    assert api.raw_calls == 4
    assert api.query_cost == 1
    assert len(set(rows)) > 1  # fresh subsets per occurrence


def test_batch_unknown_node_is_free(small_ba):
    api = SocialNetworkAPI(small_ba)
    with pytest.raises(NodeNotFoundError):
        api.neighbors_batch(np.array([0, 99999]))
    assert api.query_cost == 0


def test_batch_rejects_bad_shape(small_ba):
    api = SocialNetworkAPI(small_ba)
    with pytest.raises(ConfigurationError):
        api.neighbors_batch(np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(ConfigurationError):
        api.degrees_batch(np.zeros((2, 2), dtype=np.int64))
    assert api.neighbors_batch(np.zeros(0, dtype=np.int64)) == []


def test_batch_budget_charges_affordable_prefix(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(3))
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors_batch(np.arange(10))
    # Exactly the affordable prefix was charged, cached, and stays usable.
    assert api.query_cost == 3
    assert [api.neighbors(i) for i in range(3)] == [
        small_ba.neighbors(i) for i in range(3)
    ]
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors(5)


def test_batch_budget_mixed_cached_and_new(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(4))
    api.neighbors_batch(np.array([0, 1, 2]))
    # 0-2 cached: only node 8 is new; fits exactly.
    rows = api.neighbors_batch(np.array([0, 8, 1]))
    assert rows[1] == small_ba.neighbors(8)
    assert api.query_cost == 4
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors_batch(np.array([0, 9]))
    assert api.query_cost == 4


def test_batch_rate_limited_invocations(small_ba):
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=2, period_seconds=60, clock=clock)
    api = SocialNetworkAPI(small_ba, rate_limiter=limiter)
    api.neighbors_batch(np.array([0, 1]))
    assert clock.now == 0.0
    api.neighbors_batch(np.array([0, 1, 2]))  # one real invocation
    assert clock.now > 0.0


def test_batch_feeds_discovered_graph(small_ba, nodes):
    api = SocialNetworkAPI(small_ba)
    api.neighbors_batch(nodes)
    unique = {int(n) for n in nodes}
    assert api.discovered.fetched_count == len(unique)
    assert api.counter.unique_nodes <= api.discovered.membership_size
    api.reset_accounting()
    assert api.discovered.fetched_count == 0


def test_batch_log_records_invocations(small_ba):
    api = SocialNetworkAPI(small_ba, log_queries=True)
    api.neighbors_batch(np.array([3, 3, 5]))
    assert api.log.entries == [3, 5]


def test_api_snapshot_helper(small_ba):
    api = SocialNetworkAPI(small_ba)
    before = api.snapshot()
    api.neighbors_batch(np.arange(5))
    delta = api.counter.delta(before)
    assert delta.unique_nodes == 5
    assert delta.raw_calls == 5
