"""SocialNetworkAPI: charging, caching, budget and restriction behaviour."""

import pytest

from repro.errors import NodeNotFoundError, QueryBudgetExceededError
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.osn.ratelimit import TokenBucketRateLimiter, VirtualClock
from repro.osn.restrictions import RandomKRestriction, TruncatedKRestriction


@pytest.fixture
def api(small_ba):
    return SocialNetworkAPI(small_ba)


def test_neighbors_charges_once(api, small_ba):
    first = api.neighbors(0)
    assert first == small_ba.neighbors(0)
    assert api.query_cost == 1
    api.neighbors(0)  # cache hit
    assert api.query_cost == 1
    assert api.raw_calls == 1


def test_degree_equals_visible_neighbor_count(api, small_ba):
    assert api.degree(3) == small_ba.degree(3)


def test_unknown_node_rejected(api):
    with pytest.raises(NodeNotFoundError):
        api.neighbors(9999)
    assert api.query_cost == 0  # failed lookups are free


def test_budget_enforced(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(2))
    api.neighbors(0)
    api.neighbors(1)
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors(2)
    # Cached nodes remain accessible after exhaustion.
    assert api.neighbors(0) == small_ba.neighbors(0)


def test_attribute_charges_like_neighbors(small_ba):
    small_ba.set_attribute("x", {n: float(n) for n in small_ba.nodes()})
    api = SocialNetworkAPI(small_ba)
    assert api.attribute(5, "x") == 5.0
    assert api.query_cost == 1
    # Second read of the same profile is free.
    api.attribute(5, "x")
    assert api.query_cost == 1
    # A node already fetched via neighbors() has its profile cached too.
    api.neighbors(7)
    api.attribute(7, "x")
    assert api.query_cost == 2


def test_reset_accounting(small_ba):
    api = SocialNetworkAPI(small_ba, log_queries=True)
    api.neighbors(0)
    api.reset_accounting()
    assert api.query_cost == 0
    assert api.raw_calls == 0
    assert api.log.entries == []


def test_type1_restriction_not_cached(small_ba):
    api = SocialNetworkAPI(small_ba, restriction=RandomKRestriction(2, seed=1))
    hub = max(small_ba.nodes(), key=small_ba.degree)
    results = {api.neighbors(hub) for _ in range(20)}
    # Fresh random subsets: the API is re-invoked (raw calls grow) and
    # several distinct subsets appear.
    assert api.raw_calls == 20
    assert len(results) > 1
    assert api.query_cost == 1


def test_truncation_restriction_cached(small_ba):
    api = SocialNetworkAPI(small_ba, restriction=TruncatedKRestriction(2))
    hub = max(small_ba.nodes(), key=small_ba.degree)
    first = api.neighbors(hub)
    assert len(first) == 2
    assert api.neighbors(hub) == first
    assert api.raw_calls == 1


def test_rate_limiter_advances_clock(small_ba):
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=2, period_seconds=60, clock=clock)
    api = SocialNetworkAPI(small_ba, rate_limiter=limiter)
    api.neighbors(0)
    api.neighbors(1)
    assert clock.now == 0.0  # burst fits the bucket
    api.neighbors(2)
    assert clock.now > 0.0  # third call had to wait


def test_query_log_records_invocations(small_ba):
    api = SocialNetworkAPI(small_ba, log_queries=True)
    api.neighbors(0)
    api.neighbors(0)  # cached: not an invocation
    api.neighbors(1)
    assert api.log.entries == [0, 1]


def test_has_node_is_free(api):
    assert api.has_node(0)
    assert not api.has_node(123456)
    assert api.query_cost == 0
