"""Query counters, budgets, and logs."""

import pytest

from repro.errors import QueryBudgetExceededError
from repro.osn.accounting import QueryBudget, QueryCounter, QueryLog


def test_counter_unique_vs_raw():
    counter = QueryCounter()
    assert counter.charge(1) is True
    assert counter.charge(1) is False
    assert counter.charge(2) is True
    assert counter.unique_nodes == 2
    assert counter.raw_calls == 3


def test_counter_seen_and_reset():
    counter = QueryCounter()
    counter.charge(5)
    assert counter.seen(5) and not counter.seen(6)
    counter.reset()
    assert counter.unique_nodes == 0 and counter.raw_calls == 0


def test_snapshot_cost_delta():
    counter = QueryCounter()
    counter.charge(1)
    before = counter.snapshot()
    counter.charge(2)
    counter.charge(3)
    counter.charge(2)  # repeat, free
    after = counter.snapshot()
    assert before.cost_since(after) == 2


def test_budget_allows_cached_nodes():
    counter = QueryCounter()
    budget = QueryBudget(1)
    budget.check(counter, 7)
    counter.charge(7)
    # Re-touching node 7 must not raise even though the budget is spent.
    budget.check(counter, 7)
    with pytest.raises(QueryBudgetExceededError):
        budget.check(counter, 8)


def test_budget_unlimited():
    counter = QueryCounter()
    budget = QueryBudget(None)
    for node in range(1000):
        budget.check(counter, node)
        counter.charge(node)
    assert budget.remaining(counter) is None


def test_budget_remaining():
    counter = QueryCounter()
    budget = QueryBudget(3)
    assert budget.remaining(counter) == 3
    counter.charge(0)
    assert budget.remaining(counter) == 2


def test_budget_rejects_negative_limit():
    with pytest.raises(ValueError):
        QueryBudget(-1)


def test_query_log_enabled_and_disabled():
    enabled = QueryLog(enabled=True)
    enabled.record(4)
    enabled.record(4)
    assert enabled.entries == [4, 4]
    enabled.clear()
    assert enabled.entries == []

    disabled = QueryLog(enabled=False)
    disabled.record(4)
    assert disabled.entries == []


def test_counter_state_is_canonical_and_order_free():
    a, b = QueryCounter(), QueryCounter()
    for node in (5, 1, 9):
        a.charge(node)
    for node in (9, 5, 1):
        b.charge(node)
    assert a.state() == b.state() == ((1, 5, 9), 3)
    # Raw calls distinguish otherwise-equal charge sets.
    b.charge(1)
    assert a.state() != b.state()


def test_counter_state_matches_batch_equivalent():
    import numpy as np

    scalar, batched = QueryCounter(), QueryCounter()
    for node in (3, 3, 7, 2):
        scalar.charge(node)
    batched.charge_batch(np.array([3, 3, 7, 2]))
    assert scalar.state() == batched.state()
