"""Distribution evolution and distance measures."""

import numpy as np
import pytest

from repro.markov.distributions import (
    kl_divergence,
    l_infinity_distance,
    step_distribution,
    step_distributions,
    total_variation_distance,
)
from repro.markov.matrix import TransitionMatrix
from repro.walks.transitions import SimpleRandomWalk


@pytest.fixture
def matrix(small_ba):
    return TransitionMatrix(small_ba, SimpleRandomWalk())


def test_step_distributions_match_matrix_powers(matrix):
    for t, p_t in step_distributions(matrix, start=0, max_t=6):
        assert np.allclose(p_t, matrix.step_distribution(0, t))


def test_step_distributions_rejects_negative(matrix):
    with pytest.raises(ValueError):
        list(step_distributions(matrix, 0, -1))


def test_step_distribution_delegates(matrix):
    assert np.allclose(
        step_distribution(matrix, 0, 4), matrix.step_distribution(0, 4)
    )


def _uniform(n):
    return np.full(n, 1.0 / n)


def test_distances_zero_iff_equal():
    p = _uniform(10)
    assert l_infinity_distance(p, p) == 0.0
    assert total_variation_distance(p, p) == 0.0
    assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)


def test_distance_values_simple_case():
    p = np.array([0.5, 0.5, 0.0, 0.0])
    q = np.array([0.25, 0.25, 0.25, 0.25])
    assert l_infinity_distance(p, q) == pytest.approx(0.25)
    assert total_variation_distance(p, q) == pytest.approx(0.5)
    assert kl_divergence(p, q) == pytest.approx(np.log(2))


def test_kl_handles_empirical_zero_support():
    # q missing mass where p has none is fine; p mass on q-zero is finite
    # (epsilon floor) rather than inf, so Table 1 is computable empirically.
    p = np.array([1.0, 0.0])
    q = np.array([0.0, 1.0])
    assert np.isfinite(kl_divergence(p, q))
    assert kl_divergence(p, q) > 100  # enormous, as it should be


def test_distances_validate_inputs():
    p = _uniform(4)
    with pytest.raises(ValueError):
        l_infinity_distance(p, _uniform(5))
    with pytest.raises(ValueError):
        total_variation_distance(p, np.array([0.5, 0.5, 0.5, 0.5]) * 2)
    with pytest.raises(ValueError):
        kl_divergence(np.array([[0.5, 0.5]]), p)


def test_tv_bounded_by_linf_times_n():
    rng = np.random.default_rng(0)
    for _ in range(10):
        p = rng.dirichlet(np.ones(8))
        q = rng.dirichlet(np.ones(8))
        tv = total_variation_distance(p, q)
        linf = l_infinity_distance(p, q)
        assert linf <= 2 * tv + 1e-12
        assert tv <= 8 * linf / 2 + 1e-12
