"""Mixing diagnostics: Δ(t), burn-in length, spectral bounds."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.markov.matrix import TransitionMatrix
from repro.markov.mixing import (
    burn_in_length,
    linf_mixing_bound,
    relative_pointwise_distance,
    spectral_gap,
)
from repro.walks.transitions import LazyWalk, SimpleRandomWalk


@pytest.fixture
def matrix(small_ba):
    return TransitionMatrix(small_ba, SimpleRandomWalk())


def test_relative_pointwise_distance_decreases(matrix):
    d1 = relative_pointwise_distance(matrix, 1)
    d10 = relative_pointwise_distance(matrix, 10)
    d50 = relative_pointwise_distance(matrix, 50)
    assert d1 > d10 > d50
    assert d50 >= 0.0


def test_relative_pointwise_distance_rejects_negative_t(matrix):
    with pytest.raises(ValueError):
        relative_pointwise_distance(matrix, -1)


def test_burn_in_length_monotone_in_epsilon(matrix):
    loose = burn_in_length(matrix, epsilon=0.5)
    tight = burn_in_length(matrix, epsilon=0.01)
    assert tight >= loose >= 1
    # Definition check: the returned t actually satisfies the threshold.
    assert relative_pointwise_distance(matrix, tight) <= 0.01
    assert relative_pointwise_distance(matrix, tight - 1) > 0.01


def test_burn_in_linf_measure(matrix):
    t = burn_in_length(matrix, epsilon=0.01, measure="linf", start=0)
    pi = matrix.stationary_distribution()
    assert np.max(np.abs(matrix.step_distribution(0, t) - pi)) <= 0.01


def test_burn_in_validates_inputs(matrix):
    with pytest.raises(ValueError):
        burn_in_length(matrix, epsilon=0.0)
    with pytest.raises(ValueError):
        burn_in_length(matrix, epsilon=0.1, measure="nonsense")


def test_burn_in_times_out_on_slow_chain(small_cycle):
    matrix = TransitionMatrix(small_cycle, LazyWalk(SimpleRandomWalk(), 0.5))
    with pytest.raises(ConvergenceError):
        burn_in_length(matrix, epsilon=1e-9, max_steps=3)


def test_spectral_gap_matches_matrix_method(matrix):
    assert spectral_gap(matrix) == pytest.approx(matrix.spectral_gap())


def test_linf_mixing_bound_properties():
    # Decays geometrically; scale is the start degree (paper Eq. 9).
    assert linf_mixing_bound(0.5, 8, 0) == 8.0
    assert linf_mixing_bound(0.5, 8, 3) == pytest.approx(1.0)
    assert linf_mixing_bound(0.5, 8, 10) < 0.01
    with pytest.raises(ValueError):
        linf_mixing_bound(1.5, 8, 1)
    with pytest.raises(ValueError):
        linf_mixing_bound(0.5, -1, 1)
    with pytest.raises(ValueError):
        linf_mixing_bound(0.5, 8, -1)


def test_mixing_bound_actually_bounds(matrix):
    # The spectral bound must dominate the true l-inf deviation.
    gap = matrix.spectral_gap()
    pi = matrix.stationary_distribution()
    start = 0
    degree = matrix.graph.degree(start)
    for t in (1, 3, 6, 10):
        true_dev = float(
            np.max(np.abs(matrix.step_distribution(start, t) - pi))
        )
        assert true_dev <= linf_mixing_bound(gap, degree, t) + 1e-9
