"""Hitting and return times."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import cycle_graph
from repro.graphs.graph import Graph
from repro.markov.hitting import (
    expected_hitting_times,
    expected_return_time,
    mean_hitting_time_to_ball,
)
from repro.markov.matrix import TransitionMatrix
from repro.rng import ensure_rng
from repro.walks.transitions import LazyWalk, SimpleRandomWalk


@pytest.fixture
def ba_matrix(small_ba):
    return TransitionMatrix(small_ba, SimpleRandomWalk())


def test_hitting_time_zero_on_targets(ba_matrix):
    times = expected_hitting_times(ba_matrix, targets=[0, 5])
    assert times[0] == 0.0
    assert times[5] == 0.0
    assert np.all(times >= 0.0)


def test_hitting_time_path_graph_closed_form():
    # Path 0-1-2-3, target {0}: from node k the SRW hitting time of the
    # left end is k*(2n-1-k) with n=4... verify against simulation instead
    # of trusting a formula: exact solver vs Monte Carlo.
    g = Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 3)])
    matrix = TransitionMatrix(g, SimpleRandomWalk())
    times = expected_hitting_times(matrix, targets=[0])
    rng = ensure_rng(3)
    for start in (1, 2, 3):
        samples = []
        for _ in range(4000):
            current = start
            steps = 0
            while current != 0:
                current = SimpleRandomWalk().step(g, current, rng)
                steps += 1
            samples.append(steps)
        assert np.mean(samples) == pytest.approx(times[start], rel=0.1)


def test_hitting_validations(ba_matrix):
    with pytest.raises(GraphError):
        expected_hitting_times(ba_matrix, targets=[])
    with pytest.raises(GraphError):
        expected_hitting_times(ba_matrix, targets=[999])


def test_all_states_target_gives_zero(ba_matrix):
    times = expected_hitting_times(ba_matrix, targets=range(30))
    assert np.all(times == 0.0)


def test_return_time_kac_formula(ba_matrix, small_ba):
    # pi(v) * E[return to v] = 1; for SRW pi ∝ degree.
    degrees = {v: small_ba.degree(v) for v in small_ba.nodes()}
    total = 2.0 * small_ba.number_of_edges()
    for v in (0, 7, 19):
        assert expected_return_time(ba_matrix, v) == pytest.approx(
            total / degrees[v]
        )
    with pytest.raises(GraphError):
        expected_return_time(ba_matrix, 999)


def test_return_time_simulated(small_ba, ba_matrix, rng):
    design = SimpleRandomWalk()
    hub = max(small_ba.nodes(), key=small_ba.degree)
    expected = expected_return_time(ba_matrix, hub)
    returns = []
    for _ in range(3000):
        current = design.step(small_ba, hub, rng)
        steps = 1
        while current != hub:
            current = design.step(small_ba, current, rng)
            steps += 1
        returns.append(steps)
    assert np.mean(returns) == pytest.approx(expected, rel=0.1)


def test_ball_hitting_time_grows_with_cycle_size():
    # The §6.2 limitation quantified: the crawl zone gets harder to hit as
    # the cycle grows (diffusive: ~diameter^2), while BA stays flat.
    small = TransitionMatrix(
        cycle_graph(11).relabeled(), LazyWalk(SimpleRandomWalk(), 0.05)
    )
    large = TransitionMatrix(
        cycle_graph(41).relabeled(), LazyWalk(SimpleRandomWalk(), 0.05)
    )
    t_small = mean_hitting_time_to_ball(small, center=0, hops=2)
    t_large = mean_hitting_time_to_ball(large, center=0, hops=2)
    assert t_large > 5 * t_small


def test_ball_hitting_small_on_ba(small_ba, ba_matrix):
    time_to_ball = mean_hitting_time_to_ball(ba_matrix, center=0, hops=2)
    assert time_to_ball < 10.0  # small-diameter graphs: a few steps


def test_ball_hitting_with_explicit_starts(ba_matrix):
    subset = mean_hitting_time_to_ball(ba_matrix, 0, 1, starts=[20, 25])
    assert subset >= 0.0


def test_unreachable_targets_are_infinite():
    # Two disconnected triangles; hitting the other component never happens.
    g = Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 0)])
    g.add_edges_from([(3, 4), (4, 5), (5, 3)])
    matrix = TransitionMatrix(g, SimpleRandomWalk())
    times = expected_hitting_times(matrix, targets=[0])
    assert times[1] > 0 and np.isfinite(times[1])
    for state in (3, 4, 5):
        assert times[state] == float("inf")
