"""TransitionMatrix: stochasticity, powers, stationary distributions."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.markov.matrix import TransitionMatrix
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)


@pytest.fixture
def ba_matrix(small_ba):
    return TransitionMatrix(small_ba, SimpleRandomWalk())


def test_rows_are_stochastic(small_ba):
    for design in (
        SimpleRandomWalk(),
        MetropolisHastingsWalk(),
        LazyWalk(SimpleRandomWalk(), 0.3),
        MaxDegreeWalk(small_ba.max_degree()),
    ):
        matrix = TransitionMatrix(small_ba, design).matrix
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0)


def test_requires_contiguous_ids():
    g = Graph()
    g.add_edge(3, 7)
    with pytest.raises(GraphError):
        TransitionMatrix(g, SimpleRandomWalk())


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        TransitionMatrix(Graph(), SimpleRandomWalk())


def test_power_matches_repeated_multiplication(ba_matrix):
    direct = ba_matrix.matrix @ ba_matrix.matrix @ ba_matrix.matrix
    assert np.allclose(ba_matrix.power(3), direct)
    assert np.allclose(ba_matrix.power(0), np.eye(ba_matrix.size))
    with pytest.raises(ValueError):
        ba_matrix.power(-1)


def test_step_distribution_is_distribution(ba_matrix):
    for t in (0, 1, 5, 20):
        p = ba_matrix.step_distribution(0, t)
        assert p.shape == (ba_matrix.size,)
        assert np.isclose(p.sum(), 1.0)
        assert np.all(p >= 0)
    with pytest.raises(GraphError):
        ba_matrix.step_distribution(999, 1)


def test_evolve_matches_step_distribution(ba_matrix):
    initial = np.zeros(ba_matrix.size)
    initial[0] = 1.0
    assert np.allclose(
        ba_matrix.evolve(initial, steps=7), ba_matrix.step_distribution(0, 7)
    )
    with pytest.raises(ValueError):
        ba_matrix.evolve(np.ones(3))


def test_srw_stationary_proportional_to_degree(small_ba):
    matrix = TransitionMatrix(small_ba, SimpleRandomWalk())
    pi = matrix.stationary_distribution()
    degrees = np.array([small_ba.degree(v) for v in small_ba.nodes()], dtype=float)
    assert np.allclose(pi, degrees / degrees.sum())


def test_mhrw_stationary_uniform(small_ba):
    matrix = TransitionMatrix(small_ba, MetropolisHastingsWalk())
    pi = matrix.stationary_distribution()
    assert np.allclose(pi, 1.0 / small_ba.number_of_nodes())


def test_lazy_walk_preserves_stationary(small_ba):
    plain = TransitionMatrix(small_ba, SimpleRandomWalk()).stationary_distribution()
    lazy = TransitionMatrix(
        small_ba, LazyWalk(SimpleRandomWalk(), 0.4)
    ).stationary_distribution()
    assert np.allclose(plain, lazy)


def test_stationary_is_invariant(small_ba):
    matrix = TransitionMatrix(small_ba, MetropolisHastingsWalk())
    pi = matrix.stationary_distribution()
    assert np.allclose(pi @ matrix.matrix, pi)


def test_spectral_gap_in_unit_interval(small_ba, small_cycle):
    for graph in (small_ba, small_cycle):
        gap = TransitionMatrix(graph, SimpleRandomWalk()).spectral_gap()
        assert 0.0 <= gap <= 1.0


def test_cycle_has_smaller_gap_than_expander(small_ba, small_cycle):
    # The paper notes cycles mix poorly (gap O(n^-2)); BA graphs mix fast.
    gap_cycle = TransitionMatrix(small_cycle, SimpleRandomWalk()).spectral_gap()
    gap_ba = TransitionMatrix(small_ba, SimpleRandomWalk()).spectral_gap()
    assert gap_cycle < gap_ba


def test_step_distribution_converges_to_stationary(small_ba):
    matrix = TransitionMatrix(small_ba, SimpleRandomWalk())
    pi = matrix.stationary_distribution()
    p_large = matrix.step_distribution(0, 200)
    assert np.max(np.abs(p_large - pi)) < 1e-6
