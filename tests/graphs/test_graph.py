"""Graph data-structure invariants."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph


def test_empty_graph():
    g = Graph()
    assert g.number_of_nodes() == 0
    assert g.number_of_edges() == 0
    assert g.nodes() == ()
    assert len(g) == 0
    assert g.max_degree() == 0
    assert g.min_degree() == 0


def test_add_edge_creates_endpoints():
    g = Graph()
    g.add_edge(1, 5)
    assert g.has_node(1) and g.has_node(5)
    assert g.has_edge(1, 5) and g.has_edge(5, 1)
    assert g.number_of_edges() == 1


def test_duplicate_edges_ignored():
    g = Graph()
    g.add_edge(0, 1)
    g.add_edge(1, 0)
    g.add_edge(0, 1)
    assert g.number_of_edges() == 1
    assert g.degree(0) == 1


def test_self_loop_rejected():
    g = Graph()
    with pytest.raises(GraphError):
        g.add_edge(3, 3)


def test_neighbors_sorted_and_cached(triangle):
    assert triangle.neighbors(0) == (1, 2)
    # Mutation invalidates the cached tuple.
    triangle.add_edge(0, 5)
    assert triangle.neighbors(0) == (1, 2, 5)


def test_neighbors_unknown_node(triangle):
    with pytest.raises(NodeNotFoundError):
        triangle.neighbors(99)
    with pytest.raises(NodeNotFoundError):
        triangle.degree(99)


def test_degree_and_degrees(star5):
    assert star5.degree(0) == 4
    assert star5.degree(1) == 1
    assert star5.degrees() == {0: 4, 1: 1, 2: 1, 3: 1, 4: 1}
    assert star5.max_degree() == 4
    assert star5.min_degree() == 1


def test_edges_iterates_each_edge_once(triangle):
    assert sorted(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]


def test_remove_edge(triangle):
    triangle.remove_edge(0, 1)
    assert not triangle.has_edge(0, 1)
    assert triangle.number_of_edges() == 2
    with pytest.raises(GraphError):
        triangle.remove_edge(0, 1)


def test_remove_node_drops_incident_edges(star5):
    star5.remove_node(0)
    assert star5.number_of_edges() == 0
    assert star5.number_of_nodes() == 4
    with pytest.raises(NodeNotFoundError):
        star5.remove_node(0)


def test_contains_and_len(triangle):
    assert 0 in triangle
    assert 9 not in triangle
    assert len(triangle) == 3


def test_attributes_roundtrip(triangle):
    triangle.set_attribute("score", {0: 1.0, 1: 2.0, 2: 3.0})
    assert triangle.get_attribute("score", 1) == 2.0
    assert triangle.attribute_names() == ("score",)
    assert triangle.attribute_mean("score") == pytest.approx(2.0)


def test_attribute_on_unknown_node_rejected(triangle):
    with pytest.raises(NodeNotFoundError):
        triangle.set_attribute("x", {42: 1.0})


def test_partial_attribute_mean_rejected(triangle):
    triangle.set_attribute("partial", {0: 1.0})
    with pytest.raises(GraphError):
        triangle.attribute_mean("partial")


def test_get_undefined_attribute(triangle):
    with pytest.raises(GraphError):
        triangle.get_attribute("nope", 0)
    with pytest.raises(GraphError):
        triangle.attribute_values("nope")


def test_copy_is_deep(triangle):
    triangle.set_attribute("w", {0: 1.0, 1: 1.0, 2: 1.0})
    clone = triangle.copy()
    clone.add_edge(0, 7)
    assert not triangle.has_node(7)
    assert clone.get_attribute("w", 0) == 1.0


def test_subgraph_restricts_structure_and_attributes(star5):
    star5.set_attribute("v", {n: float(n) for n in star5.nodes()})
    sub = star5.subgraph([0, 1, 2])
    assert sub.number_of_nodes() == 3
    assert sub.number_of_edges() == 2
    assert sub.get_attribute("v", 2) == 2.0
    with pytest.raises(NodeNotFoundError):
        star5.subgraph([0, 99])


def test_relabeled_contiguous():
    g = Graph()
    g.add_edge(10, 30)
    g.add_edge(30, 20)
    g.set_attribute("a", {10: 1.0, 20: 2.0, 30: 3.0})
    r = g.relabeled()
    assert r.nodes() == (0, 1, 2)
    assert r.number_of_edges() == 2
    # 10 -> 0, 20 -> 1, 30 -> 2 (sorted order)
    assert r.get_attribute("a", 0) == 1.0
    assert r.has_edge(0, 2) and r.has_edge(1, 2)


def test_remove_node_cleans_attributes():
    g = Graph()
    g.add_edge(0, 1)
    g.set_attribute("a", {0: 1.0, 1: 2.0})
    g.remove_node(0)
    assert g.attribute_values("a") == {1: 2.0}


def test_repr_mentions_counts(triangle):
    text = repr(triangle)
    assert "nodes=3" in text and "edges=3" in text
