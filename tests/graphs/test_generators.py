"""Generator shape guarantees (sizes, degrees, diameters the paper quotes)."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import (
    balanced_tree_graph,
    barabasi_albert_graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    directed_preferential_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    regular_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import diameter, is_connected


def test_cycle_shape():
    g = cycle_graph(10)
    assert g.number_of_nodes() == 10
    assert g.number_of_edges() == 10
    assert all(g.degree(v) == 2 for v in g.nodes())
    assert diameter(g) == 5


def test_cycle_minimum_size():
    with pytest.raises(ConfigurationError):
        cycle_graph(2)


def test_complete_graph():
    g = complete_graph(6)
    assert g.number_of_edges() == 15
    assert all(g.degree(v) == 5 for v in g.nodes())
    assert diameter(g) == 1


def test_hypercube_shape():
    # Paper: 2^k nodes, 2^(k-1) * k edges, diameter k, k-regular.
    g = hypercube_graph(4)
    assert g.number_of_nodes() == 16
    assert g.number_of_edges() == 32
    assert all(g.degree(v) == 4 for v in g.nodes())
    assert diameter(g) == 4


def test_barbell_structure():
    # Two cliques of (n-1)/2 joined through a central node (paper §4.2).
    g = barbell_graph(11)
    assert g.number_of_nodes() == 11
    center = 10
    assert g.degree(center) == 2
    # Gateway-to-gateway through the center: the construction's diameter
    # is 4 (the paper states 3; see DESIGN.md note).
    assert diameter(g) == 4
    assert is_connected(g)


def test_barbell_requires_odd():
    with pytest.raises(ConfigurationError):
        barbell_graph(10)
    with pytest.raises(ConfigurationError):
        barbell_graph(3)


def test_balanced_tree_shape():
    # Height h: 2^(h+1) - 1 nodes, diameter 2h (paper §4.2).
    g = balanced_tree_graph(3)
    assert g.number_of_nodes() == 15
    assert g.number_of_edges() == 14
    assert diameter(g) == 6


def test_balanced_tree_height_zero():
    g = balanced_tree_graph(0)
    assert g.number_of_nodes() == 1
    assert g.number_of_edges() == 0


def test_star_shape():
    g = star_graph(7)
    assert g.degree(0) == 6
    assert diameter(g) == 2


def test_grid_shape():
    g = grid_graph(3, 4)
    assert g.number_of_nodes() == 12
    assert g.number_of_edges() == 3 * 3 + 2 * 4  # horizontal + vertical
    assert diameter(g) == 5


def test_regular_graph_is_regular():
    g = regular_graph(20, 4, seed=3)
    assert all(g.degree(v) == 4 for v in g.nodes())
    assert g.number_of_edges() == 40


def test_regular_graph_infeasible():
    with pytest.raises(ConfigurationError):
        regular_graph(5, 3, seed=1)  # n*k odd
    with pytest.raises(ConfigurationError):
        regular_graph(4, 4, seed=1)  # k >= n


def test_erdos_renyi_bounds():
    empty = erdos_renyi_graph(20, 0.0, seed=1)
    assert empty.number_of_edges() == 0
    full = erdos_renyi_graph(10, 1.0, seed=1)
    assert full.number_of_edges() == 45
    with pytest.raises(ConfigurationError):
        erdos_renyi_graph(10, 1.5, seed=1)


def test_watts_strogatz_preserves_edge_count():
    g = watts_strogatz_graph(30, 4, 0.3, seed=2)
    assert g.number_of_nodes() == 30
    assert g.number_of_edges() == 60  # n * k / 2, rewiring preserves count
    with pytest.raises(ConfigurationError):
        watts_strogatz_graph(30, 3, 0.3, seed=2)  # odd k


def test_barabasi_albert_edge_count():
    # m initial star edges + m per subsequent node = m * (n - m).
    g = barabasi_albert_graph(100, 3, seed=9)
    assert g.number_of_nodes() == 100
    assert g.number_of_edges() == 3 * 97
    assert g.min_degree() >= 3 or g.degree(0) >= 3
    assert is_connected(g)


def test_barabasi_albert_paper_exact_bias_size():
    # The paper's 1000-node / 6951-edge graph is exactly BA(1000, 7).
    g = barabasi_albert_graph(1000, 7, seed=0)
    assert g.number_of_edges() == 6951


def test_barabasi_albert_determinism():
    a = barabasi_albert_graph(50, 2, seed=11)
    b = barabasi_albert_graph(50, 2, seed=11)
    assert sorted(a.edges()) == sorted(b.edges())


def test_barabasi_albert_heavy_tail():
    g = barabasi_albert_graph(400, 3, seed=5)
    degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
    # The hub should dominate the median degree by a wide margin.
    assert degrees[0] > 5 * degrees[len(degrees) // 2]


def test_barabasi_albert_rejects_bad_m():
    with pytest.raises(ConfigurationError):
        barabasi_albert_graph(5, 0)
    with pytest.raises(ConfigurationError):
        barabasi_albert_graph(5, 5)


def test_directed_preferential_edges_are_directed_pairs():
    edges = directed_preferential_graph(50, 3, seed=4)
    assert all(isinstance(u, int) and isinstance(v, int) for u, v in edges)
    assert all(u != v for u, v in edges)
    # Reciprocity exists but is partial (the mutual-reduction has work to do).
    edge_set = set(edges)
    mutual = sum(1 for u, v in edge_set if (v, u) in edge_set)
    assert 0 < mutual < 2 * len(edge_set)
