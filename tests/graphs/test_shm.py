"""Shared-memory CSR slabs: round trip, zero-copy, and lifetime rules."""

import os
import pickle
from multiprocessing import resource_tracker
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.shm import (
    _LIVE_SEGMENTS,
    CSRSlabSpec,
    SharedCSR,
    _defuse_shared_memory,
    compute_file_digest,
)


@pytest.fixture()
def graph():
    g = barabasi_albert_graph(120, 3, seed=5)
    g.set_attribute("score", {n: float(n % 7) for n in g.nodes()})
    return g


def _dev_shm(segment: str) -> str:
    return os.path.join("/dev/shm", segment)


class TestRoundTrip:
    def test_attach_reproduces_graph_exactly(self, graph):
        csr = graph.compile()
        with SharedCSR.create(csr) as shared:
            attached = SharedCSR.attach(shared.spec)
            twin = attached.graph
            assert np.array_equal(twin.indptr, csr.indptr)
            assert np.array_equal(twin.indices, csr.indices)
            assert np.array_equal(twin.degrees, csr.degrees)
            assert np.array_equal(twin.node_ids, csr.node_ids)
            assert twin.name == csr.name
            assert twin.contiguous == csr.contiguous
            assert twin.attribute_values("score") == csr.attribute_values("score")
            back = twin.to_graph()
            assert back.number_of_nodes() == graph.number_of_nodes()
            assert back.number_of_edges() == graph.number_of_edges()
            attached.close()

    def test_non_contiguous_node_ids_survive(self):
        g = Graph(name="sparse-ids")
        g.add_edge(10, 20)
        g.add_edge(20, 40)
        with SharedCSR.create(g.compile()) as shared:
            twin = shared.graph
            assert twin.nodes() == (10, 20, 40)
            assert twin.neighbors(20) == (10, 40)
            assert not twin.contiguous

    def test_empty_graph_round_trips(self):
        with SharedCSR.create(Graph(name="empty").compile()) as shared:
            assert shared.graph.number_of_nodes() == 0
            assert shared.graph.nodes() == ()

    def test_spec_is_picklable(self, graph):
        with SharedCSR.create(graph.compile()) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec))
            assert isinstance(spec, CSRSlabSpec)
            assert spec.segment == shared.spec.segment
            assert spec.lengths == shared.spec.lengths
            attached = SharedCSR.attach(spec)
            assert attached.graph.number_of_edges() == graph.number_of_edges()
            attached.close()


class TestZeroCopy:
    def test_attached_arrays_are_views_not_copies(self, graph):
        with SharedCSR.create(graph.compile()) as shared:
            twin = shared.graph
            for array in (twin.indptr, twin.indices, twin.degrees, twin.node_ids):
                assert not array.flags.owndata, "array was copied, not mapped"

    def test_two_attaches_see_one_memory(self, graph):
        # Writing through one mapping must be visible through the other:
        # the definition of zero-copy sharing.  (Production code never
        # writes; this is a throwaway slab.)
        with SharedCSR.create(graph.compile()) as shared:
            a = SharedCSR.attach(shared.spec)
            b = SharedCSR.attach(shared.spec)
            a.graph.indices[0] = 999
            assert b.graph.indices[0] == 999
            a.close()
            b.close()


class TestLifetime:
    def test_segment_exists_until_owner_closes(self, graph):
        shared = SharedCSR.create(graph.compile())
        segment = shared.spec.segment
        assert os.path.exists(_dev_shm(segment))
        assert segment in _LIVE_SEGMENTS
        shared.close()
        assert not os.path.exists(_dev_shm(segment))
        assert segment not in _LIVE_SEGMENTS

    def test_attach_close_does_not_unlink(self, graph):
        shared = SharedCSR.create(graph.compile())
        attached = SharedCSR.attach(shared.spec)
        attached.close()
        assert os.path.exists(_dev_shm(shared.spec.segment))
        shared.close()
        assert not os.path.exists(_dev_shm(shared.spec.segment))

    def test_attach_after_unlink_fails(self, graph):
        shared = SharedCSR.create(graph.compile())
        spec = shared.spec
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(spec)

    def test_close_is_idempotent(self, graph):
        shared = SharedCSR.create(graph.compile())
        shared.close()
        shared.close()
        assert shared.closed

    def test_graph_access_after_close_raises(self, graph):
        shared = SharedCSR.create(graph.compile())
        shared.close()
        with pytest.raises(GraphError, match="closed"):
            shared.graph

    def test_abandoned_handle_is_finalized(self, graph):
        # No explicit close: the GC finalizer must still unlink.
        shared = SharedCSR.create(graph.compile())
        segment = shared.spec.segment
        del shared
        assert not os.path.exists(_dev_shm(segment))
        assert segment not in _LIVE_SEGMENTS


class TestFileSlab:
    def _create(self, graph, tmp_path):
        return SharedCSR.create(
            graph.compile(), storage="file", slab_dir=tmp_path / "slabs"
        )

    def test_attach_reproduces_graph_exactly(self, graph, tmp_path):
        csr = graph.compile()
        with self._create(graph, tmp_path) as shared:
            assert shared.storage == "file"
            attached = SharedCSR.attach(shared.spec)
            twin = attached.graph
            assert np.array_equal(twin.indptr, csr.indptr)
            assert np.array_equal(twin.indices, csr.indices)
            assert np.array_equal(twin.degrees, csr.degrees)
            assert np.array_equal(twin.node_ids, csr.node_ids)
            assert twin.attribute_values("score") == csr.attribute_values("score")
            assert not twin.indices.flags.owndata, "array was copied, not mapped"
            attached.close()

    def test_views_are_read_only(self, graph, tmp_path):
        # File slabs are mapped ACCESS_READ on both sides: nobody can
        # scribble on a persisted topology.
        with self._create(graph, tmp_path) as shared:
            with pytest.raises(ValueError, match="read-only"):
                shared.graph.indices[0] = 999

    def test_create_leaves_no_tmp_files(self, graph, tmp_path):
        with self._create(graph, tmp_path) as shared:
            slab_dir = Path(shared.spec.segment).parent
            leftovers = [p.name for p in slab_dir.iterdir()]
            assert leftovers == [Path(shared.spec.segment).name]

    def test_owner_close_unlinks_the_file(self, graph, tmp_path):
        shared = self._create(graph, tmp_path)
        path = shared.spec.segment
        assert os.path.exists(path)
        assert path in _LIVE_SEGMENTS
        attached = SharedCSR.attach(shared.spec)
        attached.close()
        assert os.path.exists(path), "attach close must not unlink"
        shared.close()
        assert not os.path.exists(path)
        assert path not in _LIVE_SEGMENTS

    def test_attach_after_unlink_fails(self, graph, tmp_path):
        shared = self._create(graph, tmp_path)
        spec = shared.spec
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(spec)

    def test_short_file_is_rejected(self, graph, tmp_path):
        shared = self._create(graph, tmp_path)
        spec = shared.spec
        shared.close()
        Path(spec.segment).write_bytes(b"\x00" * 8)
        with pytest.raises(GraphError, match="bytes"):
            SharedCSR.attach(spec)
        Path(spec.segment).unlink()

    def test_adopt_takes_over_unlink_duty(self, graph, tmp_path):
        shared = self._create(graph, tmp_path)
        spec = shared.spec
        # Simulate the creator crashing: drop the handle without close,
        # but neutralize its finalizer so the file survives the "crash".
        shared._finalizer.detach()
        del shared
        assert os.path.exists(spec.segment)
        adopted = SharedCSR.adopt(spec)
        assert adopted.owner
        assert spec.segment in _LIVE_SEGMENTS
        assert adopted.graph.number_of_edges() == graph.number_of_edges()
        adopted.close()
        assert not os.path.exists(spec.segment)
        assert spec.segment not in _LIVE_SEGMENTS

    def test_content_digest_matches_file_digest(self, graph, tmp_path):
        with self._create(graph, tmp_path) as shared:
            assert shared.content_digest() == compute_file_digest(
                shared.spec.segment
            )

    def test_spec_round_trips_through_json(self, graph, tmp_path):
        import json

        with self._create(graph, tmp_path) as shared:
            wire = json.loads(json.dumps(shared.spec.to_dict()))
            spec = CSRSlabSpec.from_dict(wire)
            assert spec == shared.spec
            assert spec.storage == "file"
            attached = SharedCSR.attach(spec)
            assert attached.graph.attribute_values(
                "score"
            ) == graph.compile().attribute_values("score")
            attached.close()

    def test_unknown_storage_is_rejected(self, graph, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown slab storage"):
            SharedCSR.create(graph.compile(), storage="tape")
        with pytest.raises(ConfigurationError, match="slab_dir"):
            SharedCSR.create(graph.compile(), storage="file")


class TestBufferErrorDefusal:
    """Closing under leaked views must not raise or leak slab names."""

    @pytest.mark.parametrize("storage", ["shm", "file"])
    def test_owner_close_with_leaked_view_is_clean(self, graph, tmp_path, storage):
        kwargs = {"slab_dir": tmp_path} if storage == "file" else {}
        shared = SharedCSR.create(graph.compile(), storage=storage, **kwargs)
        segment = shared.spec.segment
        leaked = shared.graph.indices  # deliberately outlives close()
        checksum = int(leaked.sum())
        shared.close()  # must not raise BufferError
        assert shared.closed
        assert segment not in _LIVE_SEGMENTS
        if storage == "file":
            assert not os.path.exists(segment)
        else:
            assert not os.path.exists(_dev_shm(segment))
        # The leaked view stays readable until it dies: defusal drops the
        # handle's references, it does not tear down the mapping.
        assert int(leaked.sum()) == checksum

    def test_close_after_defusal_is_idempotent(self, graph):
        shared = SharedCSR.create(graph.compile())
        leaked = shared.graph.indptr
        shared.close()
        shared.close()
        assert leaked is not None

    def test_defusal_tolerates_missing_private_attrs(self):
        # Future CPythons may rename SharedMemory internals; defusal must
        # degrade to a no-op, never an AttributeError.
        class Stub:
            pass

        _defuse_shared_memory(Stub())  # nothing to drop: fine

        class Partial:
            _buf = None
            _mmap = object()
            _fd = "not-an-fd"

        partial = Partial()
        _defuse_shared_memory(partial)
        assert partial._mmap is None

    def test_vanished_segment_unregisters_from_tracker(self, graph, monkeypatch):
        # If the segment name is already gone when the owner unlinks,
        # CPython's tracker would warn about a "leak" at exit unless we
        # unregister it ourselves.
        calls = []
        monkeypatch.setattr(
            resource_tracker,
            "unregister",
            lambda name, rtype: calls.append((name, rtype)),
        )
        shared = SharedCSR.create(graph.compile())
        segment = shared.spec.segment
        os.unlink(_dev_shm(segment))  # somebody else swept /dev/shm
        shared.close()  # must not raise FileNotFoundError
        assert (f"/{segment}", "shared_memory") in calls or (
            segment,
            "shared_memory",
        ) in calls
        assert segment not in _LIVE_SEGMENTS
