"""Shared-memory CSR slabs: round trip, zero-copy, and lifetime rules."""

import os
import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.shm import _LIVE_SEGMENTS, CSRSlabSpec, SharedCSR


@pytest.fixture()
def graph():
    g = barabasi_albert_graph(120, 3, seed=5)
    g.set_attribute("score", {n: float(n % 7) for n in g.nodes()})
    return g


def _dev_shm(segment: str) -> str:
    return os.path.join("/dev/shm", segment)


class TestRoundTrip:
    def test_attach_reproduces_graph_exactly(self, graph):
        csr = graph.compile()
        with SharedCSR.create(csr) as shared:
            attached = SharedCSR.attach(shared.spec)
            twin = attached.graph
            assert np.array_equal(twin.indptr, csr.indptr)
            assert np.array_equal(twin.indices, csr.indices)
            assert np.array_equal(twin.degrees, csr.degrees)
            assert np.array_equal(twin.node_ids, csr.node_ids)
            assert twin.name == csr.name
            assert twin.contiguous == csr.contiguous
            assert twin.attribute_values("score") == csr.attribute_values("score")
            back = twin.to_graph()
            assert back.number_of_nodes() == graph.number_of_nodes()
            assert back.number_of_edges() == graph.number_of_edges()
            attached.close()

    def test_non_contiguous_node_ids_survive(self):
        g = Graph(name="sparse-ids")
        g.add_edge(10, 20)
        g.add_edge(20, 40)
        with SharedCSR.create(g.compile()) as shared:
            twin = shared.graph
            assert twin.nodes() == (10, 20, 40)
            assert twin.neighbors(20) == (10, 40)
            assert not twin.contiguous

    def test_empty_graph_round_trips(self):
        with SharedCSR.create(Graph(name="empty").compile()) as shared:
            assert shared.graph.number_of_nodes() == 0
            assert shared.graph.nodes() == ()

    def test_spec_is_picklable(self, graph):
        with SharedCSR.create(graph.compile()) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec))
            assert isinstance(spec, CSRSlabSpec)
            assert spec.segment == shared.spec.segment
            assert spec.lengths == shared.spec.lengths
            attached = SharedCSR.attach(spec)
            assert attached.graph.number_of_edges() == graph.number_of_edges()
            attached.close()


class TestZeroCopy:
    def test_attached_arrays_are_views_not_copies(self, graph):
        with SharedCSR.create(graph.compile()) as shared:
            twin = shared.graph
            for array in (twin.indptr, twin.indices, twin.degrees, twin.node_ids):
                assert not array.flags.owndata, "array was copied, not mapped"

    def test_two_attaches_see_one_memory(self, graph):
        # Writing through one mapping must be visible through the other:
        # the definition of zero-copy sharing.  (Production code never
        # writes; this is a throwaway slab.)
        with SharedCSR.create(graph.compile()) as shared:
            a = SharedCSR.attach(shared.spec)
            b = SharedCSR.attach(shared.spec)
            a.graph.indices[0] = 999
            assert b.graph.indices[0] == 999
            a.close()
            b.close()


class TestLifetime:
    def test_segment_exists_until_owner_closes(self, graph):
        shared = SharedCSR.create(graph.compile())
        segment = shared.spec.segment
        assert os.path.exists(_dev_shm(segment))
        assert segment in _LIVE_SEGMENTS
        shared.close()
        assert not os.path.exists(_dev_shm(segment))
        assert segment not in _LIVE_SEGMENTS

    def test_attach_close_does_not_unlink(self, graph):
        shared = SharedCSR.create(graph.compile())
        attached = SharedCSR.attach(shared.spec)
        attached.close()
        assert os.path.exists(_dev_shm(shared.spec.segment))
        shared.close()
        assert not os.path.exists(_dev_shm(shared.spec.segment))

    def test_attach_after_unlink_fails(self, graph):
        shared = SharedCSR.create(graph.compile())
        spec = shared.spec
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(spec)

    def test_close_is_idempotent(self, graph):
        shared = SharedCSR.create(graph.compile())
        shared.close()
        shared.close()
        assert shared.closed

    def test_graph_access_after_close_raises(self, graph):
        shared = SharedCSR.create(graph.compile())
        shared.close()
        with pytest.raises(GraphError, match="closed"):
            shared.graph

    def test_abandoned_handle_is_finalized(self, graph):
        # No explicit close: the GC finalizer must still unlink.
        shared = SharedCSR.create(graph.compile())
        segment = shared.spec.segment
        del shared
        assert not os.path.exists(_dev_shm(segment))
        assert segment not in _LIVE_SEGMENTS
