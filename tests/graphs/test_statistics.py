"""Distributional statistics: power-law fit, assortativity, Gini, summary."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    barabasi_albert_graph,
    cycle_graph,
    regular_graph,
    star_graph,
)
from repro.graphs.statistics import (
    degree_assortativity,
    gini_coefficient,
    power_law_alpha,
    summarize,
)


def test_power_law_alpha_on_ba_near_three():
    graph = barabasi_albert_graph(3000, 4, seed=1).relabeled()
    alpha = power_law_alpha(graph, d_min=4)
    # BA's theoretical exponent is 3; MLE on finite graphs lands nearby.
    assert 2.3 < alpha < 3.8


def test_power_law_alpha_regular_graph_extreme():
    # A regular graph has no tail beyond its constant degree: with d_min at
    # the support, the estimator diverges upward — the correct
    # "not heavy-tailed" signal.  (d_min must sit at the distribution's
    # lower support for the CSN estimator to be meaningful.)
    graph = regular_graph(100, 6, seed=2)
    alpha = power_law_alpha(graph, d_min=6)
    assert alpha > 8.0


def test_power_law_alpha_validations():
    graph = cycle_graph(10)
    with pytest.raises(GraphError):
        power_law_alpha(graph, d_min=0)
    with pytest.raises(GraphError):
        power_law_alpha(graph, d_min=5)  # no node has degree 5


def test_assortativity_star_is_negative():
    # Star: hub (high degree) only connects to leaves (degree 1).
    assert degree_assortativity(star_graph(20)) < -0.9


def test_assortativity_regular_zero():
    assert degree_assortativity(cycle_graph(12)) == 0.0


def test_assortativity_symmetric_in_edge_orientation():
    graph = barabasi_albert_graph(200, 3, seed=3)
    value = degree_assortativity(graph)
    assert -1.0 <= value <= 1.0


def test_assortativity_requires_edges():
    from repro.graphs.graph import Graph

    g = Graph()
    g.add_node(0)
    with pytest.raises(GraphError):
        degree_assortativity(g)


def test_gini_extremes():
    assert gini_coefficient([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)
    concentrated = gini_coefficient([0.0] * 99 + [100.0])
    assert concentrated > 0.95
    with pytest.raises(GraphError):
        gini_coefficient([])
    with pytest.raises(GraphError):
        gini_coefficient([-1.0, 2.0])
    assert gini_coefficient([0.0, 0.0]) == 0.0


def test_gini_of_ba_exceeds_gini_of_er():
    ba = barabasi_albert_graph(500, 3, seed=4)
    ring = cycle_graph(500)
    assert gini_coefficient(ba.degrees().values()) > gini_coefficient(
        ring.degrees().values()
    )


def test_summarize_complete_fingerprint():
    graph = barabasi_albert_graph(300, 3, seed=5).relabeled()
    summary = summarize(graph, seed=1)
    assert summary.nodes == 300
    assert summary.edges == graph.number_of_edges()
    assert summary.components == 1
    assert summary.max_degree == graph.max_degree()
    rows = dict(summary.as_rows())
    assert rows["nodes"] == 300
    assert "power-law alpha" in rows


def test_summarize_rejects_empty():
    from repro.graphs.graph import Graph

    with pytest.raises(GraphError):
        summarize(Graph())


def test_surrogates_have_social_shape():
    # The validation the statistics module exists for: the dataset
    # surrogates must look like social graphs.
    from repro.datasets import google_plus_surrogate

    dataset = google_plus_surrogate(nodes=800, m=12, seed=6)
    summary = summarize(dataset.graph, seed=2)
    assert summary.degree_gini > 0.2       # heavy-tailed degrees
    assert summary.diameter_estimate <= 8  # small world
    assert summary.components == 1
