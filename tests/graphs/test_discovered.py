"""DiscoveredGraph: recording, membership, array lookups, compaction."""

import numpy as np
import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.discovered import DiscoveredGraph
from repro.graphs.generators import barabasi_albert_graph


@pytest.fixture
def store(small_ba):
    discovered = DiscoveredGraph(name="test")
    for node in (0, 1, 2, 7):
        discovered.record(node, small_ba.neighbors(node))
    return discovered


def test_record_and_row_roundtrip(store, small_ba):
    assert store.has_row(0)
    assert store.row(0) == small_ba.neighbors(0)
    assert store.neighbors(2) == small_ba.neighbors(2)
    assert store.degree(2) == small_ba.degree(2)


def test_unfetched_row_raises(store):
    assert store.row(25) is None
    with pytest.raises(NodeNotFoundError):
        store.neighbors(25)
    with pytest.raises(NodeNotFoundError):
        store.degrees_of(np.array([0, 25]))


def test_membership_covers_fetched_and_listed(store, small_ba):
    # Every fetched node and every listed neighbor is a member.
    expected = {0, 1, 2, 7}
    for node in (0, 1, 2, 7):
        expected.update(small_ba.neighbors(node))
    assert store.membership_size == len(expected)
    assert set(store.member_ids().tolist()) == expected
    assert 0 in store
    assert store.fetched_count == 4


def test_mark_adds_membership_without_row(store):
    before = store.membership_size
    store.mark(999)
    assert store.membership_size == before + 1
    assert not store.has_row(999)
    assert 999 in store


def test_record_is_idempotent(store, small_ba):
    size = store.membership_size
    count = store.fetched_count
    store.record(0, small_ba.neighbors(0))
    assert (store.membership_size, store.fetched_count) == (size, count)


def test_fetched_mask_and_degrees_vectorized(store, small_ba):
    nodes = np.array([0, 25, 2, 7, 3])
    mask = store.fetched_mask(nodes)
    assert mask.tolist() == [True, False, True, True, False]
    degrees = store.degrees_of(nodes[mask])
    assert degrees.tolist() == [
        small_ba.degree(0),
        small_ba.degree(2),
        small_ba.degree(7),
    ]
    got, known = store.try_degrees(nodes)
    assert known.tolist() == mask.tolist()
    assert got[known].tolist() == degrees.tolist()


def test_rows_flat_matches_rows(store, small_ba):
    nodes = np.array([2, 0, 7])
    flat, lengths = store.rows_flat(nodes)
    expected = [small_ba.neighbors(int(n)) for n in nodes]
    assert lengths.tolist() == [len(r) for r in expected]
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    for i, row in enumerate(expected):
        assert tuple(flat[offsets[i] : offsets[i + 1]].tolist()) == row


def test_rows_contain(store, small_ba):
    row0 = small_ba.neighbors(0)
    inside, outside = row0[0], 0  # 0 is not its own neighbor
    result = store.rows_contain(np.array([0, 0]), np.array([inside, outside]))
    assert result.tolist() == [True, False]


def test_sparse_fallback_beyond_dense_limit(small_ba):
    # Huge ids force the sorted-array path; results must be identical.
    store = DiscoveredGraph()
    big = 10**12
    store.record(big, (big + 1, big + 2))
    store.record(5, (1, big + 1))
    assert store.fetched_mask(np.array([big, 5, 17])).tolist() == [True, True, False]
    assert store.degrees_of(np.array([big, 5])).tolist() == [2, 2]
    flat, lengths = store.rows_flat(np.array([5, big]))
    assert flat.tolist() == [1, big + 1, big + 1, big + 2]
    assert lengths.tolist() == [2, 2]
    assert store.rows_contain(
        np.array([big, big]), np.array([big + 2, big + 9])
    ).tolist() == [True, False]


def test_compact_slab(store, small_ba):
    slab = store.compact()
    assert slab.csr.number_of_nodes() == store.membership_size
    assert set(slab.fetched_ids.tolist()) == {0, 1, 2, 7}
    for node in (0, 1, 2, 7):
        assert slab.csr.neighbors(node) == small_ba.neighbors(node)
    # Unfetched members carry empty placeholder rows.
    frontier = next(
        int(n) for n in slab.csr.node_ids if not store.has_row(int(n))
    )
    assert slab.csr.degree(frontier) == 0
    # Compaction is cached until the store grows.
    assert store.compact() is slab
    store.record(3, small_ba.neighbors(3))
    assert store.compact() is not slab


def test_clear_resets_everything(store):
    store.clear()
    assert store.fetched_count == 0
    assert store.membership_size == 0
    assert store.fetched_mask(np.array([0, 1])).tolist() == [False, False]


def test_incremental_growth_large(rng):
    # Exercise pool/table doubling well past the initial capacities.
    graph = barabasi_albert_graph(600, 4, seed=11).relabeled()
    store = DiscoveredGraph()
    for node in graph.nodes():
        store.record(node, graph.neighbors(node))
    nodes = np.asarray(graph.nodes())
    assert np.all(store.fetched_mask(nodes))
    assert store.degrees_of(nodes).tolist() == [graph.degree(int(n)) for n in nodes]
    flat, lengths = store.rows_flat(nodes)
    assert int(lengths.sum()) == flat.size == 2 * graph.number_of_edges()
