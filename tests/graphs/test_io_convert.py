"""Edge-list I/O and NetworkX conversion round-trips."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.io import load_edge_list, save_edge_list


def test_edge_list_roundtrip(tmp_path):
    g = barabasi_albert_graph(40, 2, seed=1)
    g.set_attribute("score", {n: float(n) for n in g.nodes()})
    path = tmp_path / "graph.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert sorted(loaded.edges()) == sorted(g.edges())
    assert loaded.get_attribute("score", 7) == 7.0


def test_edge_list_preserves_isolated_nodes(tmp_path):
    g = Graph()
    g.add_edge(0, 1)
    g.add_node(5)
    path = tmp_path / "iso.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert loaded.has_node(5)
    assert loaded.number_of_nodes() == 3


def test_load_raw_snap_format(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text("# comment\n0 1\n1 2\n2 2\n", encoding="utf-8")
    g = load_edge_list(path)
    assert g.number_of_edges() == 2  # the self-loop 2-2 is dropped


def test_load_malformed_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1 2\n", encoding="utf-8")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("a b\n", encoding="utf-8")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_load_missing_file():
    with pytest.raises(GraphError):
        load_edge_list("/nonexistent/file.txt")


def test_networkx_roundtrip():
    g = barabasi_albert_graph(25, 3, seed=4)
    g.set_attribute("w", {n: 2.0 * n for n in g.nodes()})
    nx_graph = to_networkx(g)
    assert nx_graph.number_of_edges() == g.number_of_edges()
    back = from_networkx(nx_graph)
    assert sorted(back.edges()) == sorted(g.edges())
    assert back.get_attribute("w", 3) == 6.0


def test_from_networkx_rejects_directed():
    with pytest.raises(GraphError):
        from_networkx(nx.DiGraph([(0, 1)]))


def test_from_networkx_rejects_non_int_labels():
    with pytest.raises(GraphError):
        from_networkx(nx.Graph([("a", "b")]))


def test_from_networkx_rejects_self_loop():
    g = nx.Graph()
    g.add_edge(0, 0)
    with pytest.raises(GraphError):
        from_networkx(g)


def test_cross_validate_degrees_with_networkx():
    g = barabasi_albert_graph(60, 3, seed=8)
    nx_graph = to_networkx(g)
    for node in g.nodes():
        assert g.degree(node) == nx_graph.degree(node)
