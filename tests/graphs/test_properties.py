"""Structural property computations."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    average_clustering,
    average_degree,
    bfs_distances,
    connected_components,
    degree_histogram,
    diameter,
    eccentricity,
    estimate_diameter,
    is_connected,
    k_hop_neighborhood,
    largest_connected_component,
    local_clustering,
    mean_shortest_path_lengths,
)


def test_bfs_distances_path(path4):
    assert bfs_distances(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}
    with pytest.raises(NodeNotFoundError):
        bfs_distances(path4, 9)


def test_k_hop_neighborhood(path4):
    assert k_hop_neighborhood(path4, 0, 2) == {0: 0, 1: 1, 2: 2}
    assert k_hop_neighborhood(path4, 0, 0) == {0: 0}
    with pytest.raises(GraphError):
        k_hop_neighborhood(path4, 0, -1)


def test_connected_components_ordering():
    g = Graph()
    g.add_edges_from([(0, 1), (1, 2), (5, 6)])
    g.add_node(9)
    components = connected_components(g)
    assert [len(c) for c in components] == [3, 2, 1]
    assert not is_connected(g)


def test_largest_connected_component_relabels():
    g = Graph()
    g.add_edges_from([(10, 20), (20, 30), (100, 200)])
    lcc = largest_connected_component(g)
    assert lcc.number_of_nodes() == 3
    assert lcc.nodes() == (0, 1, 2)


def test_diameter_and_eccentricity(path4):
    assert eccentricity(path4, 0) == 3
    assert eccentricity(path4, 1) == 2
    assert diameter(path4) == 3


def test_diameter_disconnected_raises():
    g = Graph()
    g.add_edge(0, 1)
    g.add_node(5)
    with pytest.raises(GraphError):
        diameter(g)


def test_estimate_diameter_bounds_true_value():
    g = cycle_graph(20)
    estimated = estimate_diameter(g, probes=8, seed=1)
    assert estimated <= diameter(g)
    # Double-sweep on a cycle finds the true diameter easily.
    assert estimated >= diameter(g) - 1


def test_local_clustering_extremes():
    g = complete_graph(5)
    assert local_clustering(g, 0) == 1.0
    s = star_graph(6)
    assert local_clustering(s, 0) == 0.0  # hub: no neighbor links
    assert local_clustering(s, 1) == 0.0  # leaf: degree < 2


def test_average_clustering_triangle_plus_tail():
    g = Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 0), (2, 3)])
    # nodes 0,1: coefficient 1.0; node 2: 1/3; node 3: 0.
    assert average_clustering(g) == pytest.approx((1 + 1 + 1 / 3 + 0) / 4)


def test_average_degree(triangle):
    assert average_degree(triangle) == 2.0
    with pytest.raises(GraphError):
        average_degree(Graph())


def test_degree_histogram(star5):
    assert degree_histogram(star5) == {4: 1, 1: 4}


def test_mean_shortest_path_lengths_exact_on_cycle():
    g = cycle_graph(6)
    means = mean_shortest_path_lengths(g, landmarks=list(g.nodes()))
    # By symmetry, every node's mean distance to all nodes is (1+1+2+2+3)/6.
    expected = (0 + 1 + 1 + 2 + 2 + 3) / 6
    for value in means.values():
        assert value == pytest.approx(expected)


def test_mean_shortest_path_lengths_random_landmarks():
    g = barabasi_albert_graph(60, 3, seed=2)
    means = mean_shortest_path_lengths(g, landmark_count=8, seed=3)
    assert set(means) == set(g.nodes())
    assert all(v >= 0 for v in means.values())


def test_mean_shortest_path_unreachable_raises():
    g = Graph()
    g.add_edge(0, 1)
    g.add_node(2)
    with pytest.raises(GraphError):
        mean_shortest_path_lengths(g, landmarks=[0])
