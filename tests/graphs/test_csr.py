"""CSRGraph: construction, NeighborView conformance, and round-tripping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.convert import csr_to_graph, graph_to_csr
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph


@st.composite
def attributed_graphs(draw):
    """Simple graphs with gappy node ids, isolated nodes, and attributes."""
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    g = Graph(name="hyp")
    g.add_nodes_from(ids)
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(ids), st.sampled_from(ids)),
            max_size=80,
        )
    )
    for u, v in pairs:
        if u != v:
            g.add_edge(u, v)
    if draw(st.booleans()):
        g.set_attribute("x", {n: float(n % 7) for n in ids})
    return g


class TestFromGraph:
    def test_arrays_describe_the_adjacency(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        assert csr.indptr.tolist() == [0, 2, 4, 6]
        assert csr.degrees.tolist() == [2, 2, 2]
        assert csr.neighbors(0) == (1, 2)

    def test_compile_is_from_graph(self, small_ba):
        compiled = small_ba.compile()
        direct = CSRGraph.from_graph(small_ba)
        assert np.array_equal(compiled.indptr, direct.indptr)
        assert np.array_equal(compiled.indices, direct.indices)

    def test_compile_is_a_snapshot(self, path4):
        csr = path4.compile()
        path4.add_edge(0, 3)
        assert csr.degree(0) == 1
        assert path4.degree(0) == 2

    def test_noncontiguous_ids(self):
        g = Graph()
        g.add_edges_from([(10, 20), (20, 40)])
        csr = g.compile()
        assert not csr.contiguous
        assert csr.nodes() == (10, 20, 40)
        assert csr.neighbors(20) == (10, 40)
        assert csr.degree(40) == 1

    def test_isolated_nodes_have_empty_rows(self):
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        csr = g.compile()
        assert csr.degree(2) == 0
        assert csr.neighbors(2) == ()


class TestNeighborView:
    """CSRGraph must be usable wherever a Graph view is (scalar walkers)."""

    def test_matches_graph(self, small_ba):
        csr = small_ba.compile()
        for node in small_ba.nodes():
            assert csr.neighbors(node) == small_ba.neighbors(node)
            assert csr.degree(node) == small_ba.degree(node)

    def test_has_edge(self, star5):
        csr = star5.compile()
        assert csr.has_edge(0, 3)
        assert csr.has_edge(3, 0)
        assert not csr.has_edge(1, 2)

    def test_missing_node_raises(self, triangle):
        csr = triangle.compile()
        with pytest.raises(NodeNotFoundError):
            csr.neighbors(99)
        with pytest.raises(NodeNotFoundError):
            csr.degree(-1)

    def test_membership_and_len(self, triangle):
        csr = triangle.compile()
        assert 1 in csr
        assert 99 not in csr
        assert len(csr) == 3


class TestPositions:
    def test_roundtrip_contiguous(self, small_ba):
        csr = small_ba.compile()
        nodes = np.array([0, 5, 29])
        assert np.array_equal(csr.ids_of(csr.positions_of(nodes)), nodes)

    def test_roundtrip_gappy(self):
        g = Graph()
        g.add_edges_from([(3, 7), (7, 100)])
        csr = g.compile()
        nodes = np.array([100, 3, 7])
        assert np.array_equal(csr.ids_of(csr.positions_of(nodes)), nodes)

    def test_unknown_id_raises(self):
        g = Graph()
        g.add_edges_from([(3, 7)])
        csr = g.compile()
        with pytest.raises(NodeNotFoundError):
            csr.positions_of([3, 8])


class TestAttributes:
    def test_values_survive_compilation(self, triangle):
        triangle.set_attribute("x", {0: 1.0, 1: 2.0, 2: 3.0})
        csr = triangle.compile()
        assert csr.get_attribute("x", 1) == 2.0
        assert csr.attribute_names() == ("x",)

    def test_attribute_array_is_position_aligned(self):
        g = Graph()
        g.add_edges_from([(10, 30), (30, 20)])
        g.set_attribute("x", {10: 1.0, 20: 2.0, 30: 3.0})
        csr = g.compile()
        assert csr.attribute_array("x").tolist() == [1.0, 2.0, 3.0]

    def test_partial_attribute_array_raises(self, path4):
        path4.set_attribute("x", {0: 1.0})
        csr = path4.compile()
        with pytest.raises(GraphError):
            csr.attribute_array("x")
        assert csr.attribute_values("x") == {0: 1.0}

    def test_unknown_attribute_raises(self, triangle):
        csr = triangle.compile()
        with pytest.raises(GraphError):
            csr.attribute_array("nope")


class TestValidation:
    def test_indptr_must_cover_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]))

    def test_node_ids_must_match_rows(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 0]), np.array([]), node_ids=np.array([1, 2]))


class TestRoundTrip:
    def test_counts_survive(self):
        g = barabasi_albert_graph(150, 5, seed=9).relabeled()
        back = csr_to_graph(graph_to_csr(g))
        assert back.number_of_nodes() == g.number_of_nodes()
        assert back.number_of_edges() == g.number_of_edges()

    def test_star_exact(self, star5):
        back = graph_to_csr(star5).to_graph()
        assert list(back.edges()) == list(star5.edges())

    @given(attributed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_graph_csr_graph_is_identity(self, g):
        back = csr_to_graph(graph_to_csr(g))
        assert back.nodes() == g.nodes()
        assert list(back.edges()) == list(g.edges())
        assert back.attribute_names() == g.attribute_names()
        for attr in g.attribute_names():
            assert back.attribute_values(attr) == g.attribute_values(attr)

    @given(attributed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_csr_degrees_match_graph(self, g):
        csr = graph_to_csr(g)
        assert sum(int(d) for d in csr.degrees) == 2 * g.number_of_edges()
        for node in g.nodes():
            assert csr.degree(node) == g.degree(node)


class TestMhrwSelfloopMass:
    def test_matches_scalar_row(self, small_ba):
        from repro.walks.transitions import MetropolisHastingsWalk

        design = MetropolisHastingsWalk()
        csr = small_ba.compile()
        mass = csr.mhrw_selfloop_mass()
        for node in small_ba.nodes():
            row = design.transition_row(small_ba, node)
            assert mass[node] == pytest.approx(row.get(node, 0.0), abs=1e-12)

    def test_regular_graph_has_no_selfloop(self):
        from repro.graphs.generators import cycle_graph

        csr = cycle_graph(8).relabeled().compile()
        assert np.allclose(csr.mhrw_selfloop_mass(), 0.0)
