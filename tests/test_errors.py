"""Exception hierarchy contracts."""

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    EstimationError,
    ExperimentError,
    GraphError,
    NodeNotFoundError,
    QueryBudgetExceededError,
    RateLimitExceededError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for cls in (
        GraphError,
        NodeNotFoundError,
        QueryBudgetExceededError,
        RateLimitExceededError,
        ConfigurationError,
        EstimationError,
        ConvergenceError,
        ExperimentError,
    ):
        assert issubclass(cls, ReproError)


def test_node_not_found_is_key_error():
    # dict-style callers may catch KeyError; preserve that contract.
    assert issubclass(NodeNotFoundError, KeyError)
    err = NodeNotFoundError(42)
    assert err.node == 42
    assert "42" in str(err)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)


def test_budget_error_carries_accounting():
    err = QueryBudgetExceededError(budget=100, spent=100)
    assert err.budget == 100
    assert err.spent == 100
    assert "100" in str(err)


def test_rate_limit_error_carries_retry_after():
    err = RateLimitExceededError(retry_after=12.5)
    assert err.retry_after == 12.5
