"""The FastAPI adapter, end to end through a real test client.

These tests only run where the ``.[service]`` extra is installed
(fastapi + httpx); the core test suite never needs either.  The adapter
is a thin mapping over :class:`SamplingService`, so every route is
exercised against a service that has genuinely run a campaign on the
FakeClock — the HTTP layer adds serialization, not behavior.
"""

import json

import pytest

fastapi = pytest.importorskip("fastapi")
pytest.importorskip("httpx")

from fastapi.testclient import TestClient  # noqa: E402

from repro.core import EngineConfig, EstimationJobSpec, WalkEstimateConfig
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.service import JobState, SamplingService, ServiceConfig, create_app

LATENCY = [1.0, 0.25, 0.5, 2.0, 0.75]

WALK = WalkEstimateConfig(
    walk_length=5,
    crawl_hops=0,
    backward_repetitions=3,
    refine_repetitions=0,
    calibration_walks=4,
)


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(200, 4, seed=9).relabeled()


@pytest.fixture
def service(hidden):
    api = SocialNetworkAPI(hidden)
    with SamplingService(
        api,
        0,
        config=ServiceConfig(rows_per_epoch=30),
        latency=LATENCY,
        seed=5,
    ) as svc:
        yield svc


@pytest.fixture
def client(service):
    return TestClient(create_app(service))


def spec_document(tenant, budget=120):
    return EstimationJobSpec(
        tenant=tenant,
        query_budget=budget,
        error_target=0.8,
        design="srw",
        samples=30,
        walk=WALK,
        engine=EngineConfig(backend="batch"),
    ).to_dict()


class TestSubmitRoute:
    def test_submit_returns_job_id_and_state(self, client):
        response = client.post("/jobs", json=spec_document("alice"))
        assert response.status_code == 200
        body = response.json()
        assert body["job_id"]
        assert body["state"] == JobState.PENDING.value

    def test_invalid_spec_is_422(self, client):
        bad = spec_document("alice")
        bad["design"] = "teleport"
        response = client.post("/jobs", json=bad)
        assert response.status_code == 422

    def test_admission_backpressure_is_429(self, hidden):
        api = SocialNetworkAPI(hidden)
        with SamplingService(
            api,
            0,
            config=ServiceConfig(
                rows_per_epoch=30, max_pending=1, max_running=1
            ),
            latency=LATENCY,
            seed=5,
        ) as svc:
            client = TestClient(create_app(svc))
            codes = [
                client.post("/jobs", json=spec_document(f"t{i}")).status_code
                for i in range(4)
            ]
            assert codes[0] == 200
            assert 429 in codes


class TestStatusAndStreamRoutes:
    def test_unknown_job_is_404(self, client):
        assert client.get("/jobs/nope").status_code == 404
        assert client.get("/jobs/nope/stream").status_code == 404

    def test_status_reflects_completed_campaign(self, service, client):
        job_id = client.post("/jobs", json=spec_document("alice")).json()["job_id"]
        service.run([])  # drain the already-submitted job
        body = client.get(f"/jobs/{job_id}").json()
        assert body["state"] == JobState.COMPLETED.value
        assert body["tenant"] == "alice"
        assert body["rounds"] >= 1
        assert len(body["partials"]) == body["rounds"]
        assert body["result"]["estimate"] == pytest.approx(
            service.jobs[job_id].result.estimate
        )

    def test_stream_replays_partials_as_ndjson(self, service, client):
        job_id = client.post("/jobs", json=spec_document("alice")).json()["job_id"]
        service.run([])
        response = client.get(f"/jobs/{job_id}/stream")
        assert response.status_code == 200
        assert response.headers["content-type"].startswith(
            "application/x-ndjson"
        )
        lines = [json.loads(line) for line in response.text.splitlines()]
        job = service.jobs[job_id]
        # One line per recorded partial, in stream order, then the result.
        assert len(lines) == len(job.partials) + 1
        for line, partial in zip(lines, job.partials):
            assert line == vars(partial)
        assert lines[-1]["result"]["state"] == JobState.COMPLETED.value
        assert lines[-1]["result"]["estimate"] == pytest.approx(
            job.result.estimate
        )


class TestMetricsRoute:
    def test_metrics_snapshot_round_trips(self, service, client):
        client.post("/jobs", json=spec_document("alice"))
        service.run([])
        body = client.get("/metrics").json()
        assert body == json.loads(json.dumps(service.metrics.snapshot()))
        assert body["jobs_completed"] == 1
