"""Service instruments: counters, gauges, latency stats, monitor samples."""

import pytest

from repro.service import Counter, Gauge, LatencyStat, ServiceMetrics


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.high_water == 7


class TestLatencyStat:
    def test_moments(self):
        stat = LatencyStat()
        for v in (1.0, 2.0, 3.0):
            stat.observe(v)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.max == 3.0
        assert stat.stddev == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_empty_is_zero(self):
        stat = LatencyStat()
        assert stat.mean == 0.0
        assert stat.stddev == 0.0

    def test_single_observation_has_no_spread(self):
        stat = LatencyStat()
        stat.observe(5.0)
        assert stat.stddev == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            LatencyStat().observe(-0.1)


class TestServiceMetrics:
    def test_cache_rate(self):
        m = ServiceMetrics()
        m.record_cache_rate(unique_nodes=30, raw_calls=120)
        assert m.cache_hit_rate.value == pytest.approx(0.75)
        m.record_cache_rate(0, 0)
        assert m.cache_hit_rate.value == 0.0

    def test_monitor_sample_appends(self):
        m = ServiceMetrics()
        sample = m.observe_monitor(
            clock_seconds=4.0,
            queue_depth=2,
            running_jobs=3,
            query_cost=10,
            raw_calls=40,
            published_epochs=1,
        )
        assert m.samples == [sample]
        assert sample.cache_hit_rate == pytest.approx(0.75)
        assert m.queue_depth.value == 2
        assert m.running_jobs.high_water == 3

    def test_snapshot_is_flat_and_json_safe(self):
        import json

        m = ServiceMetrics()
        m.jobs_submitted.inc(2)
        m.first_partial_latency.observe(1.5)
        snap = m.snapshot()
        assert snap["jobs_submitted"] == 2
        assert snap["first_partial_latency_mean"] == 1.5
        json.dumps(snap)  # must not raise
