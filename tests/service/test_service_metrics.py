"""Service instruments: counters, gauges, latency stats, monitor samples."""

import pytest

from repro.service import Counter, Gauge, LatencyStat, ServiceMetrics


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.high_water == 7


class TestLatencyStat:
    def test_moments(self):
        stat = LatencyStat()
        for v in (1.0, 2.0, 3.0):
            stat.observe(v)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.max == 3.0
        assert stat.stddev == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_empty_is_none_not_zero(self):
        # Pinned: "no observations yet" is None — distinguishable from a
        # measured zero-latency, and JSON-safe (null), never NaN.
        stat = LatencyStat()
        assert stat.count == 0
        assert stat.mean is None
        assert stat.stddev is None
        assert stat.max is None
        assert stat.summary() == {
            "count": 0,
            "mean": None,
            "stddev": None,
            "max": None,
        }

    def test_single_observation_pins_degenerate_moments(self):
        # Pinned: one sample defines mean and max; the spread of a
        # single sample is 0.0 (defined, degenerate), not None.
        stat = LatencyStat()
        stat.observe(5.0)
        assert stat.mean == 5.0
        assert stat.max == 5.0
        assert stat.stddev == 0.0
        assert stat.summary() == {
            "count": 1,
            "mean": 5.0,
            "stddev": 0.0,
            "max": 5.0,
        }

    def test_zero_duration_observation_is_not_empty(self):
        # A real 0.0-second observation must not look like "no data".
        stat = LatencyStat()
        stat.observe(0.0)
        assert stat.mean == 0.0
        assert stat.max == 0.0
        assert stat.count == 1

    def test_summary_json_serializable_in_all_states(self):
        import json

        stat = LatencyStat()
        json.dumps(stat.summary(), allow_nan=False)
        stat.observe(1.25)
        json.dumps(stat.summary(), allow_nan=False)
        stat.observe(0.75)
        json.dumps(stat.summary(), allow_nan=False)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            LatencyStat().observe(-0.1)


class TestServiceMetrics:
    def test_cache_rate(self):
        m = ServiceMetrics()
        m.record_cache_rate(unique_nodes=30, raw_calls=120)
        assert m.cache_hit_rate.value == pytest.approx(0.75)
        m.record_cache_rate(0, 0)
        assert m.cache_hit_rate.value == 0.0

    def test_monitor_sample_appends(self):
        m = ServiceMetrics()
        sample = m.observe_monitor(
            clock_seconds=4.0,
            queue_depth=2,
            running_jobs=3,
            query_cost=10,
            raw_calls=40,
            published_epochs=1,
        )
        assert m.samples == [sample]
        assert sample.cache_hit_rate == pytest.approx(0.75)
        assert m.queue_depth.value == 2
        assert m.running_jobs.high_water == 3

    def test_snapshot_is_flat_and_json_safe(self):
        import json

        m = ServiceMetrics()
        m.jobs_submitted.inc(2)
        m.first_partial_latency.observe(1.5)
        snap = m.snapshot()
        assert snap["jobs_submitted"] == 2
        assert snap["first_partial_latency_count"] == 1
        assert snap["first_partial_latency_mean"] == 1.5
        json.dumps(snap, allow_nan=False)  # must not raise

    def test_pristine_snapshot_reports_null_latencies(self):
        # Regression: empty LatencyStats used to report mean/max 0.0,
        # indistinguishable from an instant response.  A service that has
        # served nothing must say "no data" (null), and the snapshot must
        # still be strict-JSON serializable.
        import json

        snap = ServiceMetrics().snapshot()
        for stat in (
            "first_partial_latency",
            "job_turnaround",
            "crawl_seconds",
            "round_seconds",
        ):
            assert snap[f"{stat}_count"] == 0
            assert snap[f"{stat}_mean"] is None
        assert snap["first_partial_latency_max"] is None
        assert snap["job_turnaround_max"] is None
        parsed = json.loads(json.dumps(snap, allow_nan=False))
        assert parsed["first_partial_latency_mean"] is None
