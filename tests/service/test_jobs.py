"""Job lifecycle: accumulation, streaming, handles, resolution."""

import numpy as np
import pytest

from repro.core import EstimationJobSpec
from repro.crawl.clock import FakeClock, drive
from repro.errors import ConfigurationError
from repro.service import Job, JobResult, JobState, PartialEstimate


def make_job(job_id="job-1", **spec_kwargs) -> Job:
    spec_kwargs.setdefault("design", "srw")
    spec_kwargs.setdefault("tenant", "alice")
    return Job(job_id, EstimationJobSpec(**spec_kwargs), np.random.default_rng(1))


def make_result(job, state=JobState.COMPLETED, **overrides) -> JobResult:
    fields = dict(
        job_id=job.job_id,
        tenant=job.tenant,
        state=state,
        estimate=1.0,
        stderr=0.1,
        samples=job.samples,
        rounds=job.rounds,
        query_cost=0,
        met_target=True,
        reason="error-target",
        clock_seconds=0.0,
    )
    fields.update(overrides)
    return JobResult(**fields)


def make_partial(job, round_index=1) -> PartialEstimate:
    return PartialEstimate(
        job_id=job.job_id,
        tenant=job.tenant,
        round_index=round_index,
        epoch=1,
        estimate=2.0,
        stderr=0.5,
        samples=job.samples,
        query_cost=0,
        clock_seconds=0.0,
    )


class TestStates:
    def test_terminal_partition(self):
        live = {JobState.PENDING, JobState.RUNNING}
        for state in JobState:
            assert state.terminal == (state not in live)


class TestAccumulation:
    def test_empty_job_has_no_estimate(self):
        job = make_job()
        est, stderr = job.current_estimate()
        assert np.isnan(est)
        assert stderr == float("inf")

    def test_uniform_weights_give_plain_mean(self):
        job = make_job()
        job.absorb(np.array([2.0, 4.0, 6.0]), np.ones(3))
        est, stderr = job.current_estimate()
        assert est == pytest.approx(4.0)
        # sqrt(sum((x - mean)^2)) / n for unit weights.
        assert stderr == pytest.approx(np.sqrt(8.0) / 3.0)

    def test_rounds_accumulate(self):
        job = make_job()
        job.absorb(np.array([1.0, 3.0]), np.ones(2))
        job.absorb(np.array([5.0]), np.ones(1))
        assert job.samples == 3
        est, _ = job.current_estimate()
        assert est == pytest.approx(3.0)

    def test_importance_weighting(self):
        job = make_job()
        job.absorb(np.array([10.0, 2.0]), np.array([3.0, 1.0]))
        est, _ = job.current_estimate()
        assert est == pytest.approx((30.0 + 2.0) / 4.0)

    def test_empty_round_is_a_noop(self):
        job = make_job()
        job.absorb(np.array([]), np.array([]))
        assert job.samples == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="mismatch"):
            make_job().absorb(np.ones(2), np.ones(3))


class TestTargetMet:
    def test_no_target_never_met(self):
        job = make_job(error_target=None)
        job.absorb(np.full(100, 5.0), np.ones(100))
        assert not job.target_met(min_samples=1)

    def test_min_samples_gate(self):
        job = make_job(error_target=1.0)
        job.absorb(np.array([5.0, 5.0]), np.ones(2))
        assert not job.target_met(min_samples=8)
        assert job.target_met(min_samples=2)

    def test_target_comparison(self):
        job = make_job(error_target=0.01)
        job.absorb(np.array([1.0, 9.0] * 10), np.ones(20))
        assert not job.target_met(min_samples=1)


class TestResolution:
    def test_resolve_sets_state_and_wakes_waiters(self):
        job = make_job()
        job.state = JobState.RUNNING
        job.resolve(make_result(job))
        assert job.state is JobState.COMPLETED
        assert job.result.met_target

    def test_double_resolve_rejected(self):
        job = make_job()
        job.resolve(make_result(job))
        with pytest.raises(ConfigurationError, match="already resolved"):
            job.resolve(make_result(job))

    def test_non_terminal_resolution_rejected(self):
        job = make_job()
        with pytest.raises(ConfigurationError, match="non-terminal"):
            job.resolve(make_result(job, state=JobState.RUNNING))


class TestHandle:
    def test_stream_yields_until_sentinel(self):
        clock = FakeClock()

        async def scenario():
            job = make_job()
            handle = job.handle()
            job.push_partial(make_partial(job, 1))
            job.push_partial(make_partial(job, 2))
            job.resolve(make_result(job))
            seen = [p.round_index async for p in handle.stream()]
            result = await handle.result()
            return seen, result

        seen, result = drive(clock, scenario())
        assert seen == [1, 2]
        assert result.state is JobState.COMPLETED

    def test_handle_views(self):
        job = make_job()
        handle = job.handle()
        assert handle.job_id == "job-1"
        assert handle.tenant == "alice"
        assert handle.state is JobState.PENDING
        job.push_partial(make_partial(job))
        assert len(handle.partials) == 1
