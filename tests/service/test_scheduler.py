"""Admission control, budget views, and crawl-driver rotation."""

import numpy as np
import pytest

from repro.core import EstimationJobSpec
from repro.crawl.clock import FakeClock, drive
from repro.errors import AdmissionError, ConfigurationError
from repro.osn.accounting import QueryCounter, TenantLedger
from repro.service import Job, JobScheduler


def make_job(job_id, tenant="alice", budget=None) -> Job:
    spec = EstimationJobSpec(design="srw", tenant=tenant, query_budget=budget)
    return Job(job_id, spec, np.random.default_rng(0))


@pytest.fixture()
def ledger():
    return TenantLedger(QueryCounter())


@pytest.fixture()
def scheduler(ledger):
    return JobScheduler(ledger, max_pending=3, max_running=2)


class TestBackpressure:
    def test_offer_raises_when_full(self, scheduler):
        for i in range(3):
            scheduler.offer(make_job(f"j{i}"))
        with pytest.raises(AdmissionError, match="full"):
            scheduler.offer(make_job("j3"))

    def test_wait_for_space_wakes_on_admit(self, scheduler):
        clock = FakeClock()

        async def scenario():
            for i in range(3):
                scheduler.offer(make_job(f"j{i}"))
            await scheduler.wait_for_space()  # parks until admit() drains
            scheduler.offer(make_job("late"))
            return [j.job_id for j in scheduler.pending]

        async def main():
            import asyncio

            waiter = asyncio.ensure_future(scenario())
            await asyncio.sleep(0)
            scheduler.admit()
            return await waiter

        pending = drive(clock, main())
        # Two admitted to running, one left pending, then the late job.
        assert pending == ["j2", "late"]

    def test_bounds_validated(self, ledger):
        with pytest.raises(ConfigurationError, match="max_pending"):
            JobScheduler(ledger, max_pending=0)
        with pytest.raises(ConfigurationError, match="max_running"):
            JobScheduler(ledger, max_running=0)


class TestAdmission:
    def test_fifo_up_to_cap(self, scheduler):
        jobs = [make_job(f"j{i}") for i in range(3)]
        for job in jobs:
            scheduler.offer(job)
        promoted = scheduler.admit()
        assert [j.job_id for j in promoted] == ["j0", "j1"]
        assert scheduler.queue_depth == 1
        assert scheduler.admit() == []  # cap reached

    def test_retire_opens_a_slot(self, scheduler):
        jobs = [make_job(f"j{i}") for i in range(3)]
        for job in jobs:
            scheduler.offer(job)
        scheduler.admit()
        scheduler.retire(jobs[0])
        assert [j.job_id for j in scheduler.admit()] == ["j2"]
        assert not scheduler.has_work or scheduler.running

    def test_retire_unknown_job_rejected(self, scheduler):
        with pytest.raises(ConfigurationError, match="not in the running set"):
            scheduler.retire(make_job("ghost"))


class TestBudgets:
    def test_min_across_live_jobs(self, scheduler):
        scheduler.offer(make_job("a1", tenant="alice", budget=100))
        scheduler.offer(make_job("a2", tenant="alice", budget=60))
        scheduler.admit()
        assert scheduler.tenant_limit("alice") == 60
        assert scheduler.budgets() == {"alice": 60}

    def test_undeclared_budget_is_unlimited(self, scheduler):
        scheduler.offer(make_job("a1", tenant="alice"))
        assert scheduler.tenant_limit("alice") is None
        assert scheduler.tenant_remaining("alice") is None

    def test_remaining_reads_ledger(self, scheduler, ledger):
        scheduler.offer(make_job("a1", tenant="alice", budget=10))
        with ledger.attribute("alice"):
            for node in range(7):
                ledger.counter.charge(node)
        assert scheduler.tenant_remaining("alice") == 3
        with ledger.attribute("alice"):
            for node in range(7, 20):
                ledger.counter.charge(node)
        assert scheduler.tenant_remaining("alice") == 0  # clamped


class TestDriverRotation:
    def test_round_robin(self, scheduler):
        a = make_job("a", tenant="alice", budget=100)
        b = make_job("b", tenant="bob", budget=100)
        scheduler.offer(a)
        scheduler.offer(b)
        scheduler.admit()
        picks = [scheduler.next_driver().job_id for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_skips_exhausted_tenants(self, scheduler, ledger):
        a = make_job("a", tenant="alice", budget=5)
        b = make_job("b", tenant="bob", budget=100)
        scheduler.offer(a)
        scheduler.offer(b)
        scheduler.admit()
        with ledger.attribute("alice"):
            for node in range(5):
                ledger.counter.charge(node)
        picks = [scheduler.next_driver().job_id for _ in range(3)]
        assert picks == ["b", "b", "b"]

    def test_none_when_nobody_can_pay(self, scheduler, ledger):
        a = make_job("a", tenant="alice", budget=0)
        scheduler.offer(a)
        scheduler.admit()
        assert scheduler.next_driver() is None

    def test_none_when_idle(self, scheduler):
        assert scheduler.next_driver() is None

    def test_retire_keeps_rotation_fair(self, scheduler):
        a = make_job("a", tenant="alice")
        b = make_job("b", tenant="bob")
        scheduler.offer(a)
        scheduler.offer(b)
        scheduler.admit()
        assert scheduler.next_driver() is a
        scheduler.retire(a)
        # Cursor re-anchors on the surviving job without skipping it.
        assert scheduler.next_driver() is b
        assert scheduler.next_driver() is b
