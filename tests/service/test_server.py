"""SamplingService: determinism, multi-tenancy, budgets, streaming, hygiene.

Every scenario runs on a FakeClock under drive(), so each asserted
interleaving — admission order, preemption, epoch swaps under running
jobs — replays bit for bit.
"""

import asyncio

import numpy as np
import pytest

from repro.core import EngineConfig, EstimationJobSpec, WalkEstimateConfig
from repro.crawl.clock import drive
from repro.errors import AdmissionError, ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.service import JobState, SamplingService, ServiceConfig, create_app

LATENCY = [1.0, 0.25, 0.5, 2.0, 0.75]

WALK = WalkEstimateConfig(
    walk_length=5,
    crawl_hops=0,
    backward_repetitions=3,
    refine_repetitions=0,
    calibration_walks=4,
)


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(200, 4, seed=9).relabeled()


def job_spec(tenant, budget=120, *, error_target=0.8, backend="batch", **kwargs):
    kwargs.setdefault("design", "srw")
    kwargs.setdefault("samples", 30)
    kwargs.setdefault("walk", WALK)
    return EstimationJobSpec(
        tenant=tenant,
        query_budget=budget,
        error_target=error_target,
        engine=EngineConfig(backend=backend),
        **kwargs,
    )


def make_service(hidden, *, config=None, seed=5, latency=LATENCY):
    api = SocialNetworkAPI(hidden)
    return SamplingService(
        api,
        0,
        config=config if config is not None else ServiceConfig(rows_per_epoch=30),
        latency=latency,
        seed=seed,
    )


def result_fingerprint(result):
    return (
        result.job_id,
        result.tenant,
        result.state.value,
        result.estimate,
        result.stderr,
        result.samples,
        result.rounds,
        result.query_cost,
        result.met_target,
        result.reason,
        result.clock_seconds,
    )


class TestEndToEnd:
    def test_two_tenants_complete_and_books_balance(self, hidden):
        with make_service(hidden) as service:
            results = service.run([job_spec("alice"), job_spec("bob")])
            assert all(r.state is JobState.COMPLETED for r in results)
            assert all(r.met_target for r in results)
            # Per-tenant budgets sum exactly to the global counter charge.
            service.ledger.assert_balanced()
            assert (
                sum(service.ledger.charges().values()) == service.api.query_cost
            )
            # Every crawled row was paid by exactly one tenant.
            assert service.metrics.crawl_rows.value == service.api.query_cost

    def test_deterministic_per_seed(self, hidden):
        def fingerprints():
            with make_service(hidden) as service:
                results = service.run([job_spec("alice"), job_spec("bob")])
                return (
                    [result_fingerprint(r) for r in results],
                    service.ledger.charges(),
                    service.metrics.snapshot(),
                    [tuple(vars(s).values()) for s in service.metrics.samples],
                )

        assert fingerprints() == fingerprints()

    def test_different_seeds_diverge(self, hidden):
        def estimates(seed):
            with make_service(hidden, seed=seed) as service:
                return [r.estimate for r in service.run([job_spec("alice")])]

        assert estimates(5) != estimates(6)

    def test_partials_stream_per_round(self, hidden):
        with make_service(hidden) as service:
            clock = service.clock

            async def main():
                handle = service.submit_nowait(job_spec("alice"))
                collected = []

                async def consume():
                    async for partial in handle.stream():
                        collected.append(partial)

                consumer = asyncio.ensure_future(consume())
                await service.serve()
                await consumer
                return handle, collected

            handle, collected = drive(clock, main())
            result = drive(clock, handle.result())
            assert [p.round_index for p in collected] == list(
                range(1, result.rounds + 1)
            )
            # Partials refine: the estimate stream converges onto the result.
            assert collected[-1].estimate == result.estimate
            assert collected[-1].samples == result.samples
            # Epochs advanced while the job ran (swap under a running job).
            assert collected[-1].epoch >= collected[0].epoch
            assert all(
                later.samples >= earlier.samples
                for earlier, later in zip(collected, collected[1:])
            )

    def test_shared_cache_makes_second_tenant_cheaper(self, hidden):
        # Alice runs alone first; Bob then submits the same workload over
        # the already-discovered graph and pays strictly less than Alice.
        with make_service(hidden) as service:
            (alice,) = service.run([job_spec("alice")])
            (bob,) = service.run([job_spec("bob")])
            assert alice.met_target and bob.met_target
            assert bob.query_cost < alice.query_cost
            service.ledger.assert_balanced()


class TestAdmissionControl:
    def test_backpressure_raises_when_queue_full(self, hidden):
        config = ServiceConfig(max_pending=2, max_running=1, rows_per_epoch=30)
        with make_service(hidden, config=config) as service:
            for i in range(2):
                service.submit_nowait(job_spec(f"t{i}"))
            with pytest.raises(AdmissionError, match="full"):
                service.submit_nowait(job_spec("overflow"))
            assert service.metrics.jobs_rejected.value == 1
            assert service.metrics.jobs_submitted.value == 2

    def test_async_submit_waits_for_space(self, hidden):
        config = ServiceConfig(max_pending=1, max_running=1, rows_per_epoch=30)
        with make_service(hidden, config=config) as service:

            async def main():
                first = service.submit_nowait(job_spec("alice"))
                # Queue is now full; this submit parks until serve() admits.
                waiter = asyncio.ensure_future(service.submit(job_spec("bob")))
                await asyncio.sleep(0)
                assert not waiter.done()
                await service.serve()
                second = await waiter
                await service.serve()
                return await first.result(), await second.result()

            alice, bob = drive(service.clock, main())
            assert alice.state is JobState.COMPLETED
            assert bob.state is JobState.COMPLETED

    def test_scalar_backend_rejected(self, hidden):
        with make_service(hidden) as service:
            with pytest.raises(AdmissionError, match="charged"):
                service.submit_nowait(job_spec("alice", backend="scalar"))
            assert service.metrics.jobs_rejected.value == 1

    def test_submit_after_close_refused(self, hidden):
        service = make_service(hidden)
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.submit_nowait(job_spec("alice"))

    def test_cancel_pending_and_running(self, hidden):
        with make_service(hidden) as service:
            handle = service.submit_nowait(job_spec("alice"))
            assert service.cancel(handle.job_id)
            assert handle.state is JobState.CANCELLED
            assert not service.cancel(handle.job_id)  # already terminal
            assert not service.cancel("no-such-job")
            result = drive(service.clock, handle.result())
            assert result.reason == "cancelled"


class TestBudgetsAndPreemption:
    def test_underfunded_tenant_is_preempted_with_partial(self, hidden):
        specs = [
            job_spec("rich", budget=200, error_target=0.6),
            job_spec("poor", budget=10, error_target=0.01),
        ]
        with make_service(hidden) as service:
            rich, poor = service.run(specs)
            assert poor.state is JobState.PREEMPTED
            assert poor.reason == "budget-exhausted"
            assert not poor.met_target
            # The partial result is still a usable estimate.
            assert poor.samples > 0 and np.isfinite(poor.estimate)
            assert poor.query_cost <= 10
            assert rich.state is JobState.COMPLETED
            service.ledger.assert_balanced()

    def test_round_limit_completes_unmet(self, hidden):
        config = ServiceConfig(
            rows_per_epoch=30, max_rounds_per_job=2, min_partial_samples=8
        )
        with make_service(hidden, config=config) as service:
            (result,) = service.run([job_spec("alice", error_target=1e-9)])
            assert result.state is JobState.COMPLETED
            assert result.reason == "round-limit"
            assert not result.met_target
            assert result.rounds == 2

    def test_all_tenants_budget_dead_stalls_to_preemption(self, hidden):
        # Nobody can pay for the first crawl row: no topology ever exists.
        with make_service(hidden) as service:
            (result,) = service.run([job_spec("alice", budget=0)])
            assert result.state is JobState.FAILED
            assert result.reason == "no-topology"
            assert service.api.query_cost == 0

    def test_global_budget_exhaustion_is_flagged(self, hidden):
        from repro.osn import QueryBudget

        api = SocialNetworkAPI(hidden, budget=QueryBudget(25))
        service = SamplingService(
            api,
            0,
            config=ServiceConfig(rows_per_epoch=30, max_rounds_per_job=3),
            latency=LATENCY,
            seed=5,
        )
        with service:
            (result,) = service.run([job_spec("alice", budget=None)])
            assert service.budget_exhausted
            assert api.query_cost <= 25
            assert result.samples > 0  # still estimated over what settled


class TestMonitor:
    def test_monitor_samples_on_schedule(self, hidden):
        config = ServiceConfig(rows_per_epoch=30, monitor_interval=2.0)
        with make_service(hidden, config=config) as service:
            service.run([job_spec("alice")])
            times = [s.clock_seconds for s in service.metrics.samples]
            assert times  # the run spans several simulated seconds
            assert times == [2.0 * (i + 1) for i in range(len(times))]

    def test_monitor_disabled(self, hidden):
        config = ServiceConfig(rows_per_epoch=30, monitor_interval=None)
        with make_service(hidden, config=config) as service:
            service.run([job_spec("alice")])
            assert service.metrics.samples == []


class TestShardedBackend:
    def test_sharded_jobs_share_one_engine(self, hidden):
        with make_service(hidden) as service:
            results = service.run(
                [
                    job_spec("alice", backend="sharded", samples=20),
                    job_spec("bob", backend="sharded", samples=20),
                ]
            )
            assert all(r.state is JobState.COMPLETED for r in results)
            engine = service._engine
            assert engine is not None and engine.rounds_dispatched > 0
        assert engine.closed


class TestLifecycle:
    def test_serve_reentrancy_refused(self, hidden):
        with make_service(hidden) as service:

            async def main():
                service.submit_nowait(job_spec("alice"))
                serving = asyncio.ensure_future(service.serve())
                await asyncio.sleep(0)
                with pytest.raises(ConfigurationError, match="already running"):
                    await service.serve()
                await serving

            drive(service.clock, main())

    def test_close_is_idempotent(self, hidden):
        service = make_service(hidden)
        service.run([job_spec("alice")])
        service.close()
        service.close()

    def test_serve_drains_and_can_serve_again(self, hidden):
        with make_service(hidden) as service:
            (first,) = service.run([job_spec("alice")])
            (second,) = service.run([job_spec("bob")])
            assert first.state is JobState.COMPLETED
            assert second.state is JobState.COMPLETED
            # Bob reused Alice's rows: strictly cheaper.
            assert second.query_cost < first.query_cost


class TestConfigValidation:
    @pytest.mark.parametrize(
        ("field", "value"),
        [
            ("max_pending", 0),
            ("max_running", 0),
            ("rows_per_epoch", 0),
            ("grace_rounds", -1),
            ("monitor_interval", 0.0),
        ],
    )
    def test_bad_values(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            ServiceConfig(**{field: value})


class TestHttpAdapter:
    def test_create_app_requires_fastapi(self, hidden):
        try:
            import fastapi  # noqa: F401

            has_fastapi = True
        except ImportError:
            has_fastapi = False
        with make_service(hidden) as service:
            if has_fastapi:  # pragma: no cover - env-dependent
                assert create_app(service) is not None
            else:
                with pytest.raises(ConfigurationError, match="fastapi"):
                    create_app(service)
