"""Theorem 1 closed forms: consistency with the numeric optimum."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.theory.theorem1 import (
    cost_model,
    cost_ratio_bound,
    input_walk_cost_bound,
    optimal_walk_length_closed_form,
)


def test_cost_model_infinite_until_denominator_positive():
    # Until (1-lambda)^t * d_max < Gamma the model can't certify acceptance.
    assert cost_model(1, 0.1, d_max=50, gamma=1.0, delta=0.5) == float("inf")
    assert np.isfinite(cost_model(60, 0.1, d_max=50, gamma=1.0, delta=0.5))


def test_cost_model_validates_inputs():
    with pytest.raises(ConfigurationError):
        cost_model(1, 0.0, 10, 1.0, 0.5)
    with pytest.raises(ConfigurationError):
        cost_model(1, 0.5, 0, 1.0, 0.5)
    with pytest.raises(ConfigurationError):
        cost_model(1, 0.5, 10, 1.0, 2.0)  # delta >= gamma
    with pytest.raises(ConfigurationError):
        cost_model(0, 0.5, 10, 1.0, 0.5)


@pytest.mark.parametrize("spectral_gap", [0.05, 0.2, 0.5])
@pytest.mark.parametrize("d_max", [5, 50, 500])
def test_closed_form_matches_numeric_minimum(spectral_gap, d_max):
    gamma = 1.0
    delta = 0.5
    t_opt = optimal_walk_length_closed_form(spectral_gap, d_max, gamma)
    t_grid = np.linspace(max(0.01, t_opt / 10), t_opt * 10, 4000)
    costs = [cost_model(t, spectral_gap, d_max, gamma, delta) for t in t_grid]
    numeric_best = t_grid[int(np.argmin(costs))]
    assert t_opt == pytest.approx(numeric_best, rel=0.05)
    # The closed-form point is no worse than any grid point.
    assert cost_model(t_opt, spectral_gap, d_max, gamma, delta) <= min(costs) * 1.001


def test_t_opt_independent_of_delta():
    # The theorem's punchline: t_opt has no delta in it at all (the API
    # reflects that by not taking delta); check the cost model agrees —
    # the same t minimizes for very different delta values.
    spectral_gap, d_max, gamma = 0.2, 40, 1.0
    t_opt = optimal_walk_length_closed_form(spectral_gap, d_max, gamma)
    for delta in (0.9, 0.1, 0.001):
        grid = np.linspace(t_opt / 4, t_opt * 4, 2000)
        costs = [cost_model(t, spectral_gap, d_max, gamma, delta) for t in grid]
        assert grid[int(np.argmin(costs))] == pytest.approx(t_opt, rel=0.05)


def test_input_walk_cost_bound_monotonicity():
    # Tighter delta or smaller gap -> longer burn-in.
    assert input_walk_cost_bound(0.2, 50, 0.001) > input_walk_cost_bound(
        0.2, 50, 0.1
    )
    assert input_walk_cost_bound(0.05, 50, 0.01) > input_walk_cost_bound(
        0.4, 50, 0.01
    )
    # Trivially satisfied bound costs nothing.
    assert input_walk_cost_bound(0.2, 5, 10.0) == 0.0
    with pytest.raises(ConfigurationError):
        input_walk_cost_bound(0.2, 50, 0.0)


def test_cost_ratio_bound_below_one_in_theorem_regime():
    # Theorem 1: IDEAL-WALK beats the input walk whenever 0 < delta < Gamma;
    # the advantage grows as delta tightens.
    ratio_loose = cost_ratio_bound(0.2, 50, gamma=1.0, delta=0.5)
    ratio_tight = cost_ratio_bound(0.2, 50, gamma=1.0, delta=1e-4)
    assert ratio_tight < ratio_loose
    assert ratio_tight < 1.0


def test_closed_form_rejects_out_of_regime():
    with pytest.raises(ConfigurationError):
        # gamma >= e * d_max pushes the Lambert argument past -1/e.
        optimal_walk_length_closed_form(0.2, d_max=1, gamma=5.0)
