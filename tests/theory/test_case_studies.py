"""§4.2 case studies: model registry, cost and savings curves."""

import pytest

from repro.errors import ConfigurationError
from repro.theory.case_studies import (
    CASE_STUDY_MODELS,
    build_case_study_graph,
    cost_curve,
    savings_curve,
)


def test_registry_has_all_five_paper_models():
    assert set(CASE_STUDY_MODELS) == {
        "barbell",
        "cycle",
        "hypercube",
        "tree",
        "barabasi",
    }


def test_unknown_model_rejected():
    with pytest.raises(ConfigurationError):
        build_case_study_graph("torus", 31)


def test_sizes_snap_to_feasible_values():
    assert build_case_study_graph("hypercube", 31).number_of_nodes() == 32
    assert build_case_study_graph("barbell", 30).number_of_nodes() == 31
    assert build_case_study_graph("tree", 31).number_of_nodes() == 31
    assert build_case_study_graph("cycle", 31).number_of_nodes() == 31
    assert build_case_study_graph("barabasi", 31).number_of_nodes() == 31


def test_cost_curve_infinite_below_diameter_then_finite():
    curve = cost_curve("cycle", n=15, walk_lengths=[2, 4, 16, 64])
    assert curve[2] == float("inf")  # below the 7-hop diameter
    assert curve[64] != float("inf")


def test_cost_curve_has_interior_minimum_on_tree():
    lengths = [4, 8, 16, 32, 64, 128]
    curve = cost_curve("tree", n=31, walk_lengths=lengths)
    finite = {t: c for t, c in curve.items() if c != float("inf")}
    best_t = min(finite, key=finite.get)
    assert best_t not in (lengths[0], lengths[-1])


def test_savings_curve_barbell_increases_with_size():
    curve = savings_curve("barbell", sizes=[9, 17, 33], relative_delta=0.1)
    values = list(curve.values())
    assert values == sorted(values)
    assert values[-1] > 0.5


def test_savings_curve_all_models_positive_at_moderate_size():
    for model in CASE_STUDY_MODELS:
        curve = savings_curve(model, sizes=[16], relative_delta=0.1)
        (saving,) = curve.values()
        assert saving > 0.0, model
