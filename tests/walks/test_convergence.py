"""Geweke convergence monitor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.walks.convergence import GewekeMonitor


def test_requires_minimum_samples():
    monitor = GewekeMonitor(min_samples=20)
    monitor.observe_many(range(10))
    assert not monitor.is_converged()
    with pytest.raises(ConvergenceError):
        monitor.evaluate()


def test_stationary_series_z_is_standard_normal_scale(rng):
    # For an i.i.d. series the Geweke Z is approximately standard normal;
    # it is *not* guaranteed below a tight threshold on any single check
    # (that is why monitored walks keep walking until a check passes).
    monitor = GewekeMonitor(threshold=4.0)
    monitor.observe_many(rng.normal(10.0, 1.0, size=500))
    result = monitor.evaluate()
    assert result.converged
    assert result.z_score <= 4.0
    assert result.samples_used == 500


def test_stationary_z_small_on_average(rng):
    z_scores = []
    for _ in range(50):
        monitor = GewekeMonitor()
        monitor.observe_many(rng.normal(0.0, 1.0, size=400))
        z_scores.append(monitor.evaluate().z_score)
    # Mean |Z| of a standard normal is ~0.8; a trending series is >> that.
    assert np.mean(z_scores) < 2.0


def test_trending_series_does_not_converge():
    monitor = GewekeMonitor(threshold=0.1)
    monitor.observe_many(np.linspace(0.0, 100.0, 400))
    result = monitor.evaluate()
    assert not result.converged
    assert result.z_score > 0.1
    assert result.window_a_mean < result.window_b_mean


def test_constant_series_is_trivially_converged():
    # The blind spot figure5 leans on: a constant monitored attribute
    # (cycle graph degrees) makes Z = 0 immediately.
    monitor = GewekeMonitor()
    monitor.observe_many([2.0] * 50)
    result = monitor.evaluate()
    assert result.z_score == 0.0
    assert result.converged


def test_reset_clears_series(rng):
    monitor = GewekeMonitor()
    monitor.observe_many(rng.normal(size=100))
    monitor.reset()
    assert monitor.count == 0
    assert not monitor.is_converged()


def test_threshold_ordering(rng):
    # A tighter threshold can only be harder to satisfy.
    series = rng.normal(5.0, 2.0, size=300)
    loose = GewekeMonitor(threshold=1.0)
    tight = GewekeMonitor(threshold=0.0001)
    loose.observe_many(series)
    tight.observe_many(series)
    assert loose.evaluate().z_score == tight.evaluate().z_score
    assert loose.is_converged() or not tight.is_converged()


def test_window_fractions_used():
    monitor = GewekeMonitor(first_fraction=0.1, last_fraction=0.5, threshold=0.1)
    # First 10% very different from last 50%: must not converge.
    monitor.observe_many([100.0] * 10 + [0.0] * 90)
    assert not monitor.evaluate().converged


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        GewekeMonitor(threshold=0.0)
    with pytest.raises(ConfigurationError):
        GewekeMonitor(first_fraction=0.0)
    with pytest.raises(ConfigurationError):
        GewekeMonitor(first_fraction=0.6, last_fraction=0.6)
    with pytest.raises(ConfigurationError):
        GewekeMonitor(min_samples=2)
