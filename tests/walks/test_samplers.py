"""Burn-in (many short runs) and one-long-run samplers."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.samplers import BurnInSampler, LongRunSampler, SampleBatch
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture
def api(small_ba):
    return SocialNetworkAPI(small_ba)


def test_burnin_collects_requested_count(api):
    sampler = BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=300)
    batch = sampler.sample(api, start=0, count=5, seed=1)
    assert len(batch) == 5
    assert len(batch.target_weights) == 5
    assert batch.walk_steps >= 5 * 30
    assert batch.query_cost == api.query_cost
    assert batch.sampler == "burnin-srw"


def test_burnin_respects_min_steps(api):
    sampler = BurnInSampler(SimpleRandomWalk(), min_steps=50, max_steps=200)
    _, steps = sampler.sample_once(api, start=0, seed=2)
    assert 50 <= steps <= 200


def test_burnin_records_target_weights(api, small_ba):
    sampler = BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=200)
    batch = sampler.sample(api, start=0, count=3, seed=3)
    for node, weight in zip(batch.nodes, batch.target_weights):
        assert weight == small_ba.degree(node)


def test_burnin_mhrw_weights_uniform(api):
    sampler = BurnInSampler(MetropolisHastingsWalk(), min_steps=30, max_steps=200)
    batch = sampler.sample(api, start=0, count=3, seed=4)
    assert all(w == 1.0 for w in batch.target_weights)


def test_burnin_stops_on_budget(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(10))
    sampler = BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=500)
    batch = sampler.sample(api, start=0, count=50, seed=5)
    assert len(batch) < 50
    assert api.query_cost <= 10


def test_burnin_validation():
    with pytest.raises(ConfigurationError):
        BurnInSampler(SimpleRandomWalk(), check_every=0)
    with pytest.raises(ConfigurationError):
        BurnInSampler(SimpleRandomWalk(), min_steps=10, max_steps=5)
    sampler = BurnInSampler(SimpleRandomWalk())
    with pytest.raises(ConfigurationError):
        sampler.sample(SocialNetworkAPI(barabasi_albert_graph(10, 2, seed=1)), 0, 0)


def test_long_run_collects_count(api):
    sampler = LongRunSampler(SimpleRandomWalk(), burn_in_steps=20, thin=1)
    batch = sampler.sample(api, start=0, count=40, seed=6)
    assert len(batch) == 40
    assert batch.walk_steps == 20 + 40
    assert batch.sampler == "longrun-srw"


def test_long_run_thinning(api):
    sampler = LongRunSampler(SimpleRandomWalk(), burn_in_steps=10, thin=3)
    batch = sampler.sample(api, start=0, count=10, seed=7)
    assert len(batch) == 10
    assert batch.walk_steps == 10 + 30


def test_long_run_cheaper_per_sample_than_burnin(small_ba):
    # The §6.1 trade-off: amortized burn-in makes long runs cheaper in
    # steps per sample (at the price of correlated samples).
    api_short = SocialNetworkAPI(small_ba)
    short = BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=300)
    short_batch = short.sample(api_short, 0, count=10, seed=8)

    api_long = SocialNetworkAPI(small_ba)
    long_sampler = LongRunSampler(SimpleRandomWalk(), burn_in_steps=50)
    long_batch = long_sampler.sample(api_long, 0, count=10, seed=8)

    assert long_batch.walk_steps < short_batch.walk_steps


def test_long_run_validation():
    with pytest.raises(ConfigurationError):
        LongRunSampler(SimpleRandomWalk(), burn_in_steps=-1)
    with pytest.raises(ConfigurationError):
        LongRunSampler(SimpleRandomWalk(), thin=0)


def test_sample_batch_extend():
    a = SampleBatch(nodes=[1], target_weights=[1.0], query_cost=5, walk_steps=10)
    b = SampleBatch(nodes=[2], target_weights=[2.0], query_cost=8, walk_steps=7)
    a.extend(b)
    assert a.nodes == [1, 2]
    assert a.query_cost == 8
    assert a.walk_steps == 17
