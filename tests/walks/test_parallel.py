"""ShardedWalkEngine: parity, determinism, sharding, and segment hygiene.

The engine's contract mirrors the batch engine's parity story one level
up: a one-worker engine reproduces :func:`run_walk_batch` trajectory for
trajectory, any worker count is deterministic for a fixed ``(seed,
n_workers)``, and wide sharded batches stay distribution-correct.  The
pool-spawn cost is amortized by module-scoped engines.
"""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimators.metrics import empirical_distribution, l_infinity_bias
from repro.graphs.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.graphs.shm import _LIVE_SEGMENTS, SharedCSR
from repro.walks import kernels
from repro.walks.batch import (
    run_nbrw_walk_batch,
    run_walk_batch,
    target_weights_batch,
)
from repro.walks.parallel import ShardedWalkEngine, default_worker_count
from repro.walks.transitions import (
    BidirectionalWalk,
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

DESIGN_FACTORIES = {
    "srw": lambda g: SimpleRandomWalk(),
    "mhrw": lambda g: MetropolisHastingsWalk(),
    "lazy-srw": lambda g: LazyWalk(SimpleRandomWalk(), 0.3),
    "maxdeg": lambda g: MaxDegreeWalk(g.max_degree()),
}


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(300, 4, seed=17).relabeled()


@pytest.fixture(scope="module")
def csr(graph):
    return graph.compile()


@pytest.fixture(scope="module")
def engine1(csr):
    with ShardedWalkEngine(csr, n_workers=1) as engine:
        yield engine


@pytest.fixture(scope="module")
def engine2(csr):
    with ShardedWalkEngine(csr, n_workers=2) as engine:
        yield engine


class TestSingleWorkerParity:
    """One shard uses the caller's stream: exact batch-engine parity."""

    @pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
    def test_trajectories_match_batch_engine(self, design_name, graph, csr, engine1):
        design = DESIGN_FACTORIES[design_name](graph)
        starts = np.arange(24, dtype=np.int64)
        sharded = engine1.run_walk_batch(design, starts, 40, seed=101)
        batch = run_walk_batch(csr, design, starts, 40, seed=101)
        assert np.array_equal(sharded.paths, batch.paths)

    def test_nbrw_matches_batch_engine(self, csr, engine1):
        starts = np.arange(16, dtype=np.int64)
        sharded = engine1.run_nbrw_walk_batch(starts, 30, seed=55)
        batch = run_nbrw_walk_batch(csr, starts, 30, seed=55)
        assert np.array_equal(sharded.paths, batch.paths)


class TestKernelBackendPlumbing:
    """Backend names travel to workers; JIT dispatchers persist across rounds."""

    ALT_BACKENDS = [name for name in kernels.backend_names() if name != "numpy"]

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_sharded_backend_matches_default_engine(
        self, graph, csr, engine2, backend
    ):
        if not kernels.get_backend(backend).available:
            pytest.skip(f"kernel backend {backend!r} unavailable")
        design = LazyWalk(MaxDegreeWalk(graph.max_degree()), 0.3)
        starts = np.arange(24, dtype=np.int64)
        routed = engine2.run_walk_batch(
            design, starts, 40, seed=101, kernel_backend=backend
        )
        reference = engine2.run_walk_batch(design, starts, 40, seed=101)
        assert np.array_equal(routed.paths, reference.paths)

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_sharded_nbrw_backend_matches_batch_engine(self, csr, engine1, backend):
        if not kernels.get_backend(backend).available:
            pytest.skip(f"kernel backend {backend!r} unavailable")
        starts = np.arange(16, dtype=np.int64)
        sharded = engine1.run_nbrw_walk_batch(
            starts, 30, seed=55, kernel_backend=backend
        )
        batch = run_nbrw_walk_batch(csr, starts, 30, seed=55)
        assert np.array_equal(sharded.paths, batch.paths)

    def test_unknown_backend_rejected_before_fanout(self, engine2):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            engine2.run_walk_batch(
                SimpleRandomWalk(),
                np.zeros(4, dtype=np.int64),
                5,
                seed=1,
                kernel_backend="cuda",
            )

    def test_unavailable_backend_rejected_before_fanout(self, engine2):
        if kernels.get_backend("native").available:
            pytest.skip("numba installed: native is available on this host")
        with pytest.raises(ConfigurationError, match="not available"):
            engine2.run_nbrw_walk_batch(
                np.zeros(4, dtype=np.int64), 5, seed=1, kernel_backend="native"
            )

    def test_persistent_pool_pays_compilation_once(self, engine1):
        # Round 2+ of a persistent pool must reuse the worker's memoized
        # dispatcher: the compilation-event counter inside the (single,
        # deterministic) worker process may not grow after the first
        # round that used a trajectory-loop backend.
        backend = "native" if kernels.get_backend("native").available else "python"
        design = SimpleRandomWalk()
        starts = np.arange(8, dtype=np.int64)
        engine1.run_walk_batch(design, starts, 20, seed=1, kernel_backend=backend)
        engine1.run_nbrw_walk_batch(starts, 20, seed=1, kernel_backend=backend)
        [after_round_one] = engine1.map_shards(kernels._shard_compilation_events, [()])
        assert after_round_one >= 1
        for seed in (2, 3):
            engine1.run_walk_batch(
                design, starts, 20, seed=seed, kernel_backend=backend
            )
            engine1.run_nbrw_walk_batch(starts, 20, seed=seed, kernel_backend=backend)
        [after_round_three] = engine1.map_shards(
            kernels._shard_compilation_events, [()]
        )
        assert after_round_three == after_round_one


class TestDeterminismAndMerge:
    def test_same_seed_same_workers_same_result(self, engine2):
        design = SimpleRandomWalk()
        starts = np.zeros(50, dtype=np.int64)
        a = engine2.run_walk_batch(design, starts, 30, seed=7)
        b = engine2.run_walk_batch(design, starts, 30, seed=7)
        assert np.array_equal(a.paths, b.paths)

    def test_merged_walks_keep_original_order(self, engine2):
        starts = np.arange(31, dtype=np.int64)  # odd count: uneven shards
        result = engine2.run_walk_batch(SimpleRandomWalk(), starts, 10, seed=3)
        assert np.array_equal(result.starts, starts)
        assert result.k == 31 and result.steps == 10

    def test_sharded_trajectories_are_valid_walks(self, graph, engine2):
        result = engine2.run_walk_batch(
            SimpleRandomWalk(), np.zeros(8, dtype=np.int64), 25, seed=13
        )
        for walk in result.paths:
            for u, v in zip(walk[:-1], walk[1:]):
                assert graph.has_edge(int(u), int(v))

    def test_empty_batch(self, engine2):
        result = engine2.run_walk_batch(
            SimpleRandomWalk(), np.empty(0, dtype=np.int64), 5, seed=1
        )
        assert result.paths.shape == (0, 6)


class TestStationarity:
    """K=1024 sharded batches stay distribution-correct (acceptance gate)."""

    STEPS = 60
    BURN_IN = 30
    K = 1024

    def test_visits_match_target_srw(self):
        graph = watts_strogatz_graph(40, 4, 0.3, seed=11).relabeled()
        csr = graph.compile()
        design = SimpleRandomWalk()
        weights = target_weights_batch(csr, design, np.arange(len(csr)))
        target = weights / weights.sum()
        starts = np.zeros(self.K, dtype=np.int64)
        with ShardedWalkEngine(csr, n_workers=2) as engine:
            result = engine.run_walk_batch(design, starts, self.STEPS, seed=29)
        tail = result.paths[:, self.BURN_IN :].ravel()
        pdf = empirical_distribution([int(v) for v in tail], len(csr))
        samples = self.K * (self.STEPS - self.BURN_IN + 1)
        noise = np.sqrt(target.max() * samples / self.K) / np.sqrt(samples)
        assert l_infinity_bias(pdf, target) < 8 * max(noise, 1e-3)


class TestSharding:
    def test_shard_slices_cover_contiguously(self, engine2):
        for k in (1, 2, 3, 31, 64):
            slices = engine2.shard_slices(k)
            assert len(slices) == min(2, k)
            assert slices[0].start == 0 and slices[-1].stop == k
            sizes = [s.stop - s.start for s in slices]
            assert max(sizes) - min(sizes) <= 1
            for before, after in zip(slices[:-1], slices[1:]):
                assert before.stop == after.start

    def test_shard_rngs_deterministic(self, engine2):
        a = engine2.shard_rngs(2, seed=5)
        b = engine2.shard_rngs(2, seed=5)
        for x, y in zip(a, b):
            assert x.integers(0, 1 << 30) == y.integers(0, 1 << 30)

    def test_single_shard_uses_callers_stream(self, engine2):
        (rng,) = engine2.shard_rngs(1, seed=5)
        reference = np.random.default_rng(5)
        assert rng.integers(0, 1 << 30) == reference.integers(0, 1 << 30)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestErrors:
    def test_rejects_design_without_batch_kernel(self, engine2):
        with pytest.raises(ConfigurationError, match="batch kernel"):
            engine2.run_walk_batch(
                BidirectionalWalk(), np.zeros(4, dtype=np.int64), 5, seed=1
            )

    def test_rejects_bad_worker_count(self, csr):
        with pytest.raises(ConfigurationError, match="n_workers"):
            ShardedWalkEngine(csr, n_workers=0)

    def test_rejects_negative_steps(self, engine2):
        with pytest.raises(ValueError, match="steps"):
            engine2.run_walk_batch(
                SimpleRandomWalk(), np.zeros(4, dtype=np.int64), -1, seed=1
            )

    def test_unknown_start_raises_parent_side(self, engine2):
        from repro.errors import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            engine2.run_walk_batch(SimpleRandomWalk(), np.array([10**6]), 5, seed=1)

    def test_closed_engine_refuses_work(self, csr):
        engine = ShardedWalkEngine(csr, n_workers=1)
        engine.close()
        assert engine.closed
        with pytest.raises(ConfigurationError, match="closed"):
            engine.run_walk_batch(
                SimpleRandomWalk(), np.zeros(2, dtype=np.int64), 3, seed=1
            )


class TestSegmentHygiene:
    """Engine close must leave no /dev/shm entry behind (CI acceptance)."""

    def test_close_unlinks_segment(self, csr):
        engine = ShardedWalkEngine(csr, n_workers=1)
        segment = engine.segment_name
        assert os.path.exists(os.path.join("/dev/shm", segment))
        engine.run_walk_batch(
            SimpleRandomWalk(), np.zeros(4, dtype=np.int64), 5, seed=1
        )
        engine.close()
        assert not os.path.exists(os.path.join("/dev/shm", segment))
        engine.close()  # idempotent

    def test_no_live_segments_besides_open_fixtures(self, engine1, engine2):
        # The module fixtures hold exactly two segments; nothing else may
        # have leaked from any earlier test in the session.
        assert _LIVE_SEGMENTS == {engine1.segment_name, engine2.segment_name}


class TestBorrowedSlabsAndSwap:
    """from_shared / update_topology: one pool, a topology that moves."""

    def test_from_shared_matches_owned_engine(self, csr):
        from repro.graphs.shm import SharedCSR

        starts = np.zeros(16, dtype=np.int64)
        shared = SharedCSR.create(csr)
        try:
            with ShardedWalkEngine.from_shared(shared, n_workers=1) as engine:
                borrowed = engine.run_walk_batch(
                    SimpleRandomWalk(), starts, 20, seed=3
                )
            reference = run_walk_batch(csr, SimpleRandomWalk(), starts, 20, seed=3)
            assert np.array_equal(borrowed.paths, reference.paths)
            # Engine close left the borrowed slab alone.
            assert not shared.closed
            assert os.path.exists(os.path.join("/dev/shm", shared.spec.segment))
        finally:
            shared.close()
        assert not os.path.exists(os.path.join("/dev/shm", shared.spec.segment))

    def test_update_topology_moves_subsequent_rounds(self, csr):
        from repro.graphs.shm import SharedCSR

        other = watts_strogatz_graph(120, 4, 0.1, seed=5).relabeled().compile()
        first, second = SharedCSR.create(csr), SharedCSR.create(other)
        try:
            with ShardedWalkEngine.from_shared(first, n_workers=2) as engine:
                starts = np.zeros(8, dtype=np.int64)
                engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=1)
                assert engine.graph.number_of_nodes() == csr.number_of_nodes()
                engine.update_topology(second)
                moved = engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=1)
                assert engine.graph.number_of_nodes() == other.number_of_nodes()
                reference = run_walk_batch(
                    other, SimpleRandomWalk(), starts, 5, seed=1
                )
                # n_workers=2 still deterministic per (seed, workers):
                with ShardedWalkEngine.from_shared(second, n_workers=2) as twin:
                    twin_result = twin.run_walk_batch(
                        SimpleRandomWalk(), starts, 5, seed=1
                    )
                assert np.array_equal(moved.paths, twin_result.paths)
                assert moved.paths.shape == reference.paths.shape
        finally:
            first.close()
            second.close()

    def test_constructor_and_swap_validation(self, csr):
        from repro.graphs.shm import SharedCSR

        with pytest.raises(ConfigurationError, match="exactly one"):
            ShardedWalkEngine()
        shared = SharedCSR.create(csr)
        with pytest.raises(ConfigurationError, match="exactly one"):
            ShardedWalkEngine(csr, shared=shared)
        with ShardedWalkEngine(csr, n_workers=1) as owned:
            with pytest.raises(ConfigurationError, match="from_shared"):
                owned.update_topology(shared)
        shared.close()
        with pytest.raises(ConfigurationError, match="closed slab"):
            ShardedWalkEngine.from_shared(shared)

    def test_swap_to_closed_slab_rejected(self, csr):
        from repro.graphs.shm import SharedCSR

        live, dead = SharedCSR.create(csr), SharedCSR.create(csr)
        dead.close()
        with ShardedWalkEngine.from_shared(live, n_workers=1) as engine:
            with pytest.raises(ConfigurationError, match="closed slab"):
                engine.update_topology(dead)
        live.close()


class TestFileSlabParity:
    """Walks over an mmap-file slab are bit-identical to /dev/shm walks."""

    def test_file_and_shm_trajectories_are_bit_identical(self, csr, tmp_path):
        design = SimpleRandomWalk()
        starts = np.arange(24, dtype=np.int64)
        results = {}
        for storage in ("shm", "file"):
            shared = SharedCSR.create(
                csr,
                storage=storage,
                slab_dir=tmp_path if storage == "file" else None,
            )
            with shared:
                with ShardedWalkEngine.from_shared(shared, n_workers=2) as engine:
                    results[storage] = engine.run_walk_batch(
                        design, starts, 50, seed=404
                    )
        assert np.array_equal(results["shm"].paths, results["file"].paths)

    def test_engine_owned_file_slab_cleans_up(self, csr, tmp_path):
        slab_dir = tmp_path / "slabs"
        engine = ShardedWalkEngine(
            csr, n_workers=1, slab_storage="file", slab_dir=slab_dir
        )
        segment = engine.segment_name
        assert segment.endswith(".slab")
        assert os.path.exists(segment)
        starts = np.arange(8, dtype=np.int64)
        sharded = engine.run_walk_batch(SimpleRandomWalk(), starts, 20, seed=7)
        batch = run_walk_batch(csr, SimpleRandomWalk(), starts, 20, seed=7)
        assert np.array_equal(sharded.paths, batch.paths)
        engine.close()
        assert not os.path.exists(segment)
        assert segment not in _LIVE_SEGMENTS
        assert list(slab_dir.iterdir()) == []
