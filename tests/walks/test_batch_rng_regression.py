"""RNG-stream regression: golden trajectories pin each kernel's draw order.

The batch kernels promise to consume the seeded generator stream *exactly*
as their scalar twins — that contract is what every parity test and every
"reproducible experiment" claim rests on.  A refactor that keeps the step
law but reorders, batches, or conditions the draws differently would pass
statistical tests and silently change every seeded result in the repo.

These tests freeze the contract: the fixture file commits the exact
trajectories each kernel produces on a fixed graph, seed, and batch
width.  The graph's edge list is stored literally in the fixture (not
re-generated), so generator changes cannot disturb the pin.  If a change
is *supposed* to alter sampling behavior, regenerate deliberately:

    PYTHONPATH=src python tests/walks/test_batch_rng_regression.py

and review the fixture diff like any other behavioral change.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.walks.batch import run_nbrw_walk_batch, run_walk_batch
from repro.walks.kernels import backend_names, get_backend
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

FIXTURE = Path(__file__).parent / "fixtures" / "batch_golden_trajectories.json"

SEED = 20240716
K = 4
STEPS = 12

#: Every registered kernel backend must reproduce the committed stream
#: bit for bit (unavailable ones — native without numba — auto-skip).
BACKENDS = backend_names()


def _require_backend_or_skip(backend: str) -> None:
    if not get_backend(backend).available:
        pytest.skip(f"kernel backend {backend!r} unavailable (numba not installed)")


def _designs(graph):
    return {
        "srw": SimpleRandomWalk(),
        "mhrw": MetropolisHastingsWalk(),
        "lazy-srw": LazyWalk(SimpleRandomWalk(), 0.3),
        "lazy-mhrw": LazyWalk(MetropolisHastingsWalk(), 0.25),
        "maxdeg": MaxDegreeWalk(graph.max_degree()),
        "lazy-maxdeg": LazyWalk(MaxDegreeWalk(graph.max_degree()), 0.4),
    }


def _build_graph(edges) -> Graph:
    graph = Graph(name="golden")
    graph.add_edges_from([(int(u), int(v)) for u, v in edges])
    return graph


def _compute_trajectories(graph, backend=None):
    csr = graph.compile()
    starts = np.array([0, 3, 7, 11], dtype=np.int64)
    paths = {
        name: run_walk_batch(
            csr, design, starts, STEPS, seed=SEED, backend=backend
        ).paths.tolist()
        for name, design in _designs(graph).items()
    }
    paths["nbrw"] = run_nbrw_walk_batch(
        csr, starts, STEPS, seed=SEED, backend=backend
    ).paths.tolist()
    return paths


#: Per-backend trajectory cache: each backend computes all kernels once.
_COMPUTED = {}


def _computed(graph, backend):
    if backend not in _COMPUTED:
        _COMPUTED[backend] = _compute_trajectories(graph, backend=backend)
    return _COMPUTED[backend]


@pytest.fixture(scope="module")
def fixture_data():
    with open(FIXTURE) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def golden_graph(fixture_data):
    return _build_graph(fixture_data["edges"])


def test_fixture_metadata_matches_test_setup(fixture_data):
    assert fixture_data["seed"] == SEED
    assert fixture_data["k"] == K
    assert fixture_data["steps"] == STEPS


def test_fixture_covers_every_kernel(fixture_data, golden_graph):
    expected = set(_designs(golden_graph)) | {"nbrw"}
    assert set(fixture_data["trajectories"]) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "kernel",
    ["srw", "mhrw", "nbrw", "lazy-srw", "lazy-mhrw", "maxdeg", "lazy-maxdeg"],
)
def test_kernel_reproduces_golden_trajectory(
    fixture_data, golden_graph, kernel, backend
):
    _require_backend_or_skip(backend)
    computed = _computed(golden_graph, backend)[kernel]
    golden = fixture_data["trajectories"][kernel]
    assert computed == golden, (
        f"kernel {kernel!r} on backend {backend!r} no longer consumes the "
        "RNG stream as committed; if this change is intentional, regenerate "
        "the fixture (see module docstring) and flag the behavioral break "
        "in review"
    )


def test_trajectories_have_committed_shape(fixture_data):
    for kernel, paths in fixture_data["trajectories"].items():
        assert len(paths) == K, kernel
        assert all(len(row) == STEPS + 1 for row in paths), kernel


def _regenerate() -> None:
    from repro.graphs.generators import barabasi_albert_graph

    graph = barabasi_albert_graph(30, 3, seed=5).relabeled()
    edges = sorted(
        (u, v) for u in graph.nodes() for v in graph.neighbors(u) if u < v
    )
    record = {
        "comment": (
            "Golden RNG-stream trajectories for the batch kernels; "
            "regenerate ONLY for intentional sampling-behavior changes "
            "(python tests/walks/test_batch_rng_regression.py)"
        ),
        "seed": SEED,
        "k": K,
        "steps": STEPS,
        "edges": [[u, v] for u, v in edges],
        "trajectories": _compute_trajectories(_build_graph(edges)),
    }
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    # One edge / one trajectory row per line: reviewable diffs without the
    # vertical blow-up of a fully indented dump.
    lines = [
        "{",
        f' "comment": {json.dumps(record["comment"])},',
        f' "seed": {SEED}, "k": {K}, "steps": {STEPS},',
        ' "edges": [',
        *(
            f"  {json.dumps(edge)}{',' if i + 1 < len(edges) else ''}"
            for i, edge in enumerate(record["edges"])
        ),
        " ],",
        ' "trajectories": {',
    ]
    kernels = list(record["trajectories"])
    for j, kernel in enumerate(kernels):
        lines.append(f"  {json.dumps(kernel)}: [")
        rows = record["trajectories"][kernel]
        for i, row in enumerate(rows):
            comma = "," if i + 1 < len(rows) else ""
            lines.append(f"   {json.dumps(row)}{comma}")
        lines.append("  ]" + ("," if j + 1 < len(kernels) else ""))
    lines += [" }", "}"]
    FIXTURE.write_text("\n".join(lines) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    _regenerate()
