"""Autocorrelation and effective sample size (paper Eq. 25)."""

import numpy as np
import pytest

from repro.walks.autocorr import (
    autocorrelation,
    effective_sample_size,
    integrated_autocorrelation_time,
)


def test_lag_zero_is_one():
    rng = np.random.default_rng(1)
    series = rng.normal(size=200)
    assert autocorrelation(series, 0) == pytest.approx(1.0)


def test_iid_series_has_near_zero_autocorrelation():
    rng = np.random.default_rng(2)
    series = rng.normal(size=5000)
    assert abs(autocorrelation(series, 1)) < 0.05
    assert abs(autocorrelation(series, 5)) < 0.05


def test_persistent_series_has_positive_autocorrelation():
    rng = np.random.default_rng(3)
    # AR(1) with strong persistence.
    series = [0.0]
    for _ in range(3000):
        series.append(0.9 * series[-1] + rng.normal())
    assert autocorrelation(series, 1) > 0.8


def test_alternating_series_negative_lag1():
    series = [1.0, -1.0] * 100
    assert autocorrelation(series, 1) == pytest.approx(-1.0, abs=0.02)


def test_constant_series_zero_by_convention():
    assert autocorrelation([5.0] * 50, 1) == 0.0
    assert integrated_autocorrelation_time([5.0] * 50) == 1.0


def test_degenerate_inputs():
    assert autocorrelation([], 1) == 0.0
    assert autocorrelation([1.0], 1) == 0.0
    assert autocorrelation([1.0, 2.0], 5) == 0.0
    with pytest.raises(ValueError):
        autocorrelation([1.0, 2.0], -1)
    assert effective_sample_size([]) == 0.0


def test_ess_iid_close_to_n():
    rng = np.random.default_rng(4)
    series = rng.normal(size=2000)
    ess = effective_sample_size(series)
    assert 0.8 * 2000 <= ess <= 1.2 * 2000


def test_ess_correlated_much_smaller_than_n():
    # This is the paper's §6.1 argument: one long run's h samples are worth
    # far fewer effective samples when autocorrelation is strong.
    rng = np.random.default_rng(5)
    series = [0.0]
    for _ in range(2000):
        series.append(0.95 * series[-1] + rng.normal())
    ess = effective_sample_size(series)
    assert ess < len(series) / 5


def test_integrated_time_at_least_one():
    rng = np.random.default_rng(6)
    for _ in range(5):
        series = rng.normal(size=300)
        assert integrated_autocorrelation_time(series) >= 0.9
