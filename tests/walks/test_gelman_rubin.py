"""Gelman–Rubin diagnostic and the parallel-chain sampler."""

import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.osn.api import SocialNetworkAPI
from repro.walks.gelman_rubin import GelmanRubinMonitor, ParallelBurnInSampler
from repro.walks.transitions import SimpleRandomWalk


def test_needs_two_chains():
    monitor = GelmanRubinMonitor()
    monitor.observe(0, 1.0)
    with pytest.raises(ConvergenceError):
        monitor.psrf()


def test_needs_minimum_length(rng):
    monitor = GelmanRubinMonitor(min_samples_per_chain=10)
    for value in rng.normal(size=5):
        monitor.observe(0, value)
        monitor.observe(1, value + 0.1)
    with pytest.raises(ConvergenceError):
        monitor.psrf()
    assert not monitor.is_converged()


def test_agreeing_chains_have_psrf_near_one(rng):
    monitor = GelmanRubinMonitor(threshold=1.1)
    for _ in range(500):
        monitor.observe(0, rng.normal(5.0, 1.0))
        monitor.observe(1, rng.normal(5.0, 1.0))
        monitor.observe(2, rng.normal(5.0, 1.0))
    assert monitor.psrf() == pytest.approx(1.0, abs=0.05)
    assert monitor.is_converged()


def test_disagreeing_chains_have_large_psrf(rng):
    monitor = GelmanRubinMonitor()
    for _ in range(300):
        monitor.observe(0, rng.normal(0.0, 1.0))
        monitor.observe(1, rng.normal(50.0, 1.0))
    assert monitor.psrf() > 5.0
    assert not monitor.is_converged()


def test_constant_chains():
    monitor = GelmanRubinMonitor()
    for _ in range(20):
        monitor.observe(0, 3.0)
        monitor.observe(1, 3.0)
    assert monitor.psrf() == 1.0
    monitor.reset()
    for _ in range(20):
        monitor.observe(0, 3.0)
        monitor.observe(1, 4.0)
    assert monitor.psrf() == float("inf")


def test_monitor_validates_configuration():
    with pytest.raises(ConfigurationError):
        GelmanRubinMonitor(threshold=1.0)
    with pytest.raises(ConfigurationError):
        GelmanRubinMonitor(min_samples_per_chain=1)


def test_parallel_sampler_yields_chain_count_per_round(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = ParallelBurnInSampler(
        SimpleRandomWalk(), chain_count=3, min_steps=20, max_steps=300
    )
    batch = sampler.sample(api, starts=[0, 7, 15], count=6, seed=4)
    assert len(batch) == 6
    assert all(
        w == small_ba.degree(n) for n, w in zip(batch.nodes, batch.target_weights)
    )


def test_parallel_sampler_validates(small_ba):
    sampler = ParallelBurnInSampler(SimpleRandomWalk(), chain_count=3)
    api = SocialNetworkAPI(small_ba)
    with pytest.raises(ConfigurationError):
        sampler.sample(api, starts=[0, 1], count=3)  # wrong start count
    with pytest.raises(ConfigurationError):
        sampler.sample(api, starts=[0, 1, 2], count=0)
    with pytest.raises(ConfigurationError):
        ParallelBurnInSampler(SimpleRandomWalk(), chain_count=1)


def test_parallel_sampler_walk_steps_counted(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = ParallelBurnInSampler(
        SimpleRandomWalk(), chain_count=2, min_steps=20, max_steps=100
    )
    batch = sampler.sample(api, starts=[0, 9], count=2, seed=5)
    assert batch.walk_steps >= 2 * 20  # both chains advanced min_steps
