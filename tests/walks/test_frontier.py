"""Frontier sampling (m-dimensional random walk)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.frontier import FrontierSampler


def test_collects_requested_count(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = FrontierSampler(dimension=4, burn_in_steps=20)
    batch = sampler.sample(api, start=0, count=50, seed=1)
    assert len(batch) == 50
    assert batch.walk_steps == 20 + 50
    for node, weight in zip(batch.nodes, batch.target_weights):
        assert weight == small_ba.degree(node)


def test_validates_configuration(small_ba):
    with pytest.raises(ConfigurationError):
        FrontierSampler(dimension=0)
    with pytest.raises(ConfigurationError):
        FrontierSampler(burn_in_steps=-1)
    api = SocialNetworkAPI(small_ba)
    with pytest.raises(ConfigurationError):
        FrontierSampler().sample(api, 0, 0)


def test_respects_budget(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(6))
    batch = FrontierSampler(dimension=2, burn_in_steps=5).sample(
        api, start=0, count=100, seed=2
    )
    assert api.query_cost <= 6
    assert len(batch) < 100


def test_sample_from_seeds_validates(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = FrontierSampler(dimension=3, burn_in_steps=5)
    with pytest.raises(ConfigurationError):
        sampler.sample_from_seeds(api, seeds=[0, 1], count=5)
    batch = sampler.sample_from_seeds(api, seeds=[0, 5, 9], count=10, seed=3)
    assert len(batch) == 10


def test_samples_degree_proportional(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = FrontierSampler(dimension=6, burn_in_steps=100)
    batch = sampler.sample(api, start=0, count=30000, seed=4)
    counts = np.bincount(batch.nodes, minlength=30).astype(float)
    empirical = counts / counts.sum()
    degrees = np.array([small_ba.degree(v) for v in small_ba.nodes()], float)
    expected = degrees / degrees.sum()
    assert np.max(np.abs(empirical - expected)) < 0.02


def test_covers_disconnected_components_with_spread_seeds():
    # The frontier's advantage: seeded in both components, it samples both
    # (a single SRW could never cross).
    g = Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 0)])     # component A
    g.add_edges_from([(10, 11), (11, 12), (12, 10)])  # component B
    api = SocialNetworkAPI(g)
    sampler = FrontierSampler(dimension=2, burn_in_steps=10)
    batch = sampler.sample_from_seeds(api, seeds=[0, 10], count=200, seed=5)
    sampled = set(batch.nodes)
    assert sampled & {0, 1, 2}
    assert sampled & {10, 11, 12}
