"""Batch walk engine: seed parity with the scalar walker, and edge cases."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graphs.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.graphs.graph import Graph
from repro.walks.batch import (
    has_batch_kernel,
    run_nbrw_walk_batch,
    run_walk_batch,
    target_weights_batch,
    walk_attribute_matrix,
)
from repro.walks.nonbacktracking import run_nbrw_walk
from repro.walks.transitions import (
    BidirectionalWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk


@pytest.fixture(scope="module")
def ba_graph():
    return barabasi_albert_graph(200, 4, seed=13).relabeled()


@pytest.fixture(scope="module")
def ba_csr(ba_graph):
    return ba_graph.compile()


class TestSeedParity:
    """Same repro.rng seed, K=1 → node-for-node identical trajectories.

    This is the load-bearing property: it certifies the batch kernels
    consume the generator stream exactly as their scalar twins, making the
    engines interchangeable rather than statistically similar.
    """

    @pytest.mark.parametrize("design", [SimpleRandomWalk(), MetropolisHastingsWalk()])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_k1_matches_scalar(self, ba_graph, ba_csr, design, seed):
        scalar = run_walk(ba_graph, design, 3, 120, seed=seed)
        batch = run_walk_batch(ba_csr, design, [3], 120, seed=seed)
        assert scalar.path == tuple(batch.paths[0])

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_nbrw_k1_matches_scalar(self, ba_graph, ba_csr, seed):
        scalar = run_nbrw_walk(ba_graph, 3, 120, seed=seed)
        batch = run_nbrw_walk_batch(ba_csr, [3], 120, seed=seed)
        assert scalar.path == tuple(batch.paths[0])

    def test_k1_parity_on_ring_lattice(self):
        # Low-degree regular-ish graph: MHRW rejections are frequent, so
        # the conditional acceptance draw is exercised heavily.
        g = watts_strogatz_graph(60, 4, 0.1, seed=3).relabeled()
        scalar = run_walk(g, MetropolisHastingsWalk(), 0, 200, seed=99)
        batch = run_walk_batch(g.compile(), MetropolisHastingsWalk(), [0], 200, seed=99)
        assert scalar.path == tuple(batch.paths[0])

    def test_scalar_walker_runs_directly_on_csr(self, ba_graph, ba_csr):
        # CSRGraph satisfies NeighborView, so the scalar walker itself
        # must produce the same trajectory over either backend.
        on_graph = run_walk(ba_graph, SimpleRandomWalk(), 5, 50, seed=21)
        on_csr = run_walk(ba_csr, SimpleRandomWalk(), 5, 50, seed=21)
        assert on_graph.path == on_csr.path


class TestBatchShape:
    def test_result_dimensions(self, ba_csr):
        result = run_walk_batch(ba_csr, SimpleRandomWalk(), np.zeros(32), 17, seed=1)
        assert result.paths.shape == (32, 18)
        assert result.k == 32
        assert result.steps == 17
        assert np.all(result.starts == 0)
        assert np.array_equal(result.positions_at(17), result.ends)

    def test_mixed_starts(self, ba_csr):
        starts = np.array([0, 5, 9, 14])
        result = run_walk_batch(ba_csr, SimpleRandomWalk(), starts, 10, seed=2)
        assert np.array_equal(result.starts, starts)

    def test_every_transition_is_an_edge(self, ba_graph, ba_csr):
        result = run_walk_batch(ba_csr, SimpleRandomWalk(), np.zeros(16), 40, seed=3)
        for walk in result.paths:
            for u, v in zip(walk[:-1], walk[1:]):
                assert ba_graph.has_edge(int(u), int(v))

    def test_mhrw_transitions_are_edges_or_stays(self, ba_graph, ba_csr):
        result = run_walk_batch(
            ba_csr, MetropolisHastingsWalk(), np.zeros(16), 40, seed=4
        )
        for walk in result.paths:
            for u, v in zip(walk[:-1], walk[1:]):
                assert u == v or ba_graph.has_edge(int(u), int(v))

    def test_nbrw_never_backtracks_off_degree1(self, ba_csr):
        result = run_nbrw_walk_batch(ba_csr, np.zeros(16), 60, seed=5)
        degrees = {n: ba_csr.degree(n) for n in ba_csr.nodes()}
        for walk in result.paths:
            for a, b, c in zip(walk[:-2], walk[1:-1], walk[2:]):
                if degrees[int(b)] > 1:
                    assert c != a


class TestEdgeCases:
    def test_walk_length_zero(self, ba_csr):
        result = run_walk_batch(ba_csr, SimpleRandomWalk(), [4, 8], 0, seed=6)
        assert result.paths.tolist() == [[4], [8]]
        assert result.steps == 0

    def test_nbrw_walk_length_zero(self, ba_csr):
        result = run_nbrw_walk_batch(ba_csr, [4], 0, seed=6)
        assert result.paths.tolist() == [[4]]

    def test_negative_steps_rejected(self, ba_csr):
        with pytest.raises(ValueError):
            run_walk_batch(ba_csr, SimpleRandomWalk(), [0], -1)
        with pytest.raises(ValueError):
            run_nbrw_walk_batch(ba_csr, [0], -1)

    def test_non_1d_starts_rejected(self, ba_csr):
        with pytest.raises(ConfigurationError, match="must be 1-d"):
            run_walk_batch(ba_csr, SimpleRandomWalk(), [[0, 1]], 5)
        with pytest.raises(ConfigurationError, match="must be 1-d"):
            run_nbrw_walk_batch(ba_csr, [[0, 1]], 5)

    def test_isolated_start_raises(self):
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        with pytest.raises(GraphError, match="no neighbors"):
            run_walk_batch(g, SimpleRandomWalk(), [0, 2], 5, seed=7)
        with pytest.raises(GraphError, match="no neighbors"):
            run_nbrw_walk_batch(g, [2], 5, seed=7)

    def test_isolated_node_elsewhere_is_fine(self):
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        result = run_walk_batch(g, SimpleRandomWalk(), [0, 1], 5, seed=7)
        assert result.paths.shape == (2, 6)

    def test_unsupported_design_raises(self, ba_csr):
        with pytest.raises(ConfigurationError, match="no batch kernel"):
            run_walk_batch(ba_csr, BidirectionalWalk(), [0], 5)

    def test_has_batch_kernel(self):
        assert has_batch_kernel(SimpleRandomWalk())
        assert has_batch_kernel(MetropolisHastingsWalk())
        assert not has_batch_kernel(BidirectionalWalk())

    def test_gappy_node_ids_round_trip_through_paths(self):
        g = Graph()
        g.add_edges_from([(10, 20), (20, 40), (40, 10)])
        result = run_walk_batch(g, SimpleRandomWalk(), [20, 40], 30, seed=8)
        visited = set(int(v) for v in result.paths.ravel())
        assert visited <= {10, 20, 40}


class TestBatchHelpers:
    def test_target_weights_srw_are_degrees(self, ba_graph, ba_csr):
        nodes = np.array([0, 3, 11])
        weights = target_weights_batch(ba_csr, SimpleRandomWalk(), nodes)
        expected = [float(ba_graph.degree(int(n))) for n in nodes]
        assert weights.tolist() == expected

    def test_target_weights_mhrw_are_uniform(self, ba_csr):
        weights = target_weights_batch(ba_csr, MetropolisHastingsWalk(), [0, 1, 2])
        assert weights.tolist() == [1.0, 1.0, 1.0]

    def test_walk_attribute_matrix_degrees(self, ba_graph, ba_csr):
        result = run_walk_batch(ba_csr, SimpleRandomWalk(), [0, 1], 5, seed=9)
        matrix = walk_attribute_matrix(ba_csr, result)
        assert matrix.shape == (2, 6)
        assert matrix[0, 0] == float(ba_graph.degree(int(result.paths[0, 0])))

    def test_walk_attribute_matrix_named(self, ba_graph):
        ba_graph_copy = ba_graph.copy()
        ba_graph_copy.set_attribute("x", {n: float(n) for n in ba_graph_copy.nodes()})
        csr = ba_graph_copy.compile()
        result = run_walk_batch(csr, SimpleRandomWalk(), [0, 1], 4, seed=10)
        matrix = walk_attribute_matrix(csr, result, "x")
        assert np.array_equal(matrix, result.paths.astype(float))


class TestStatisticalSanity:
    def test_srw_visits_follow_degree_bias(self, ba_csr):
        # Long batch walks: visit frequency should correlate with degree.
        result = run_walk_batch(
            ba_csr, SimpleRandomWalk(), np.zeros(64, dtype=np.int64), 400, seed=11
        )
        visits = np.bincount(
            result.paths[:, 200:].ravel(), minlength=len(ba_csr)
        ).astype(float)
        degrees = ba_csr.degrees.astype(float)
        correlation = np.corrcoef(visits, degrees)[0, 1]
        assert correlation > 0.9

    def test_batches_with_different_seeds_differ(self, ba_csr):
        a = run_walk_batch(ba_csr, SimpleRandomWalk(), np.zeros(8), 50, seed=1)
        b = run_walk_batch(ba_csr, SimpleRandomWalk(), np.zeros(8), 50, seed=2)
        assert not np.array_equal(a.paths, b.paths)

    def test_same_seed_reproduces(self, ba_csr):
        a = run_walk_batch(ba_csr, MetropolisHastingsWalk(), np.zeros(8), 50, seed=3)
        b = run_walk_batch(ba_csr, MetropolisHastingsWalk(), np.zeros(8), 50, seed=3)
        assert np.array_equal(a.paths, b.paths)
