"""Non-backtracking random walk."""

import numpy as np
import pytest

from repro.graphs.generators import star_graph
from repro.osn.api import SocialNetworkAPI
from repro.walks.autocorr import autocorrelation
from repro.walks.nonbacktracking import (
    NonBacktrackingSampler,
    nbrw_step,
    run_nbrw_walk,
)
from repro.walks.walker import run_walk
from repro.walks.transitions import SimpleRandomWalk


def test_never_backtracks_when_alternatives_exist(small_ba, rng):
    walk = run_nbrw_walk(small_ba, start=0, steps=200, seed=rng)
    for a, b, c in zip(walk.path, walk.path[1:], walk.path[2:]):
        if small_ba.degree(b) > 1:
            assert c != a, "backtracked despite alternatives"


def test_degree_one_node_may_backtrack(rng):
    graph = star_graph(2)  # a single edge 0-1; both endpoints degree 1
    walk = run_nbrw_walk(graph, start=0, steps=6, seed=rng)
    assert walk.path == (0, 1, 0, 1, 0, 1, 0)


def test_moves_along_edges(small_ba, rng):
    walk = run_nbrw_walk(small_ba, 0, 100, seed=rng)
    for u, v in zip(walk.path, walk.path[1:]):
        assert small_ba.has_edge(u, v)


def test_cycle_walk_is_deterministic_direction(small_cycle, rng):
    # On a cycle, no-backtracking forces the walk to keep going one way.
    walk = run_nbrw_walk(small_cycle, 0, 22, seed=rng)
    visited = walk.path[1:12]
    assert len(set(visited)) == 11  # covers the whole ring in 11 steps


def test_node_marginal_proportional_to_degree(small_ba, rng):
    # NBRW's stationary node marginal matches SRW's (∝ degree).
    counts = np.zeros(30)
    walk = run_nbrw_walk(small_ba, 0, 60000, seed=rng)
    for node in walk.path[500:]:
        counts[node] += 1
    empirical = counts / counts.sum()
    degrees = np.array([small_ba.degree(v) for v in small_ba.nodes()], float)
    expected = degrees / degrees.sum()
    assert np.max(np.abs(empirical - expected)) < 0.02


def test_mixes_faster_than_srw_on_cycle(small_cycle, rng):
    # The [24] selling point: on cycles SRW diffuses, NBRW ballistically
    # covers ground, so its position series decorrelates much faster.
    srw_positions = [
        float(v)
        for v in run_walk(small_cycle, SimpleRandomWalk(), 0, 3000, seed=rng).path
    ]
    nbrw_positions = [
        float(v) for v in run_nbrw_walk(small_cycle, 0, 3000, seed=rng).path
    ]
    assert autocorrelation(nbrw_positions, 5) < autocorrelation(srw_positions, 5)


def test_sampler_batch_interface(small_ba):
    api = SocialNetworkAPI(small_ba)
    sampler = NonBacktrackingSampler(min_steps=30, max_steps=300)
    batch = sampler.sample(api, start=0, count=5, seed=7)
    assert len(batch) == 5
    for node, weight in zip(batch.nodes, batch.target_weights):
        assert weight == small_ba.degree(node)


def test_rejects_negative_steps(small_ba, rng):
    with pytest.raises(ValueError):
        run_nbrw_walk(small_ba, 0, -1, seed=rng)


def test_step_excludes_previous(small_ba, rng):
    node = max(small_ba.nodes(), key=small_ba.degree)
    previous = small_ba.neighbors(node)[0]
    for _ in range(50):
        assert nbrw_step(small_ba, node, previous, rng) != previous
