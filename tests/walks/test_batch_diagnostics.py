"""Vectorized convergence diagnostics vs. the per-walk scalar paths.

The array-native Geweke / Gelman-Rubin / autocorrelation-ESS functions
promise row-for-row agreement with the existing scalar implementations on
shared inputs — that equivalence (tolerance-pinned here) is what lets the
batch engine swap its ``(K, n)`` attribute matrices into the diagnosis
layer without changing any verdict.  A shape/NaN sweep pins the edge
cases: constant rows, single-walk batches, undersized series, and NaN
propagation.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.graphs.generators import barabasi_albert_graph
from repro.walks.autocorr import (
    autocorrelation,
    autocorrelation_matrix,
    effective_sample_size,
    effective_sample_size_matrix,
    integrated_autocorrelation_time,
    integrated_autocorrelation_time_matrix,
)
from repro.walks.batch import run_walk_batch, walk_attribute_matrix
from repro.walks.convergence import (
    GewekeMonitor,
    diagnose_walk_batch,
    geweke_batch,
)
from repro.walks.gelman_rubin import GelmanRubinMonitor, psrf_matrix
from repro.walks.transitions import SimpleRandomWalk


@pytest.fixture(scope="module")
def attribute_matrix():
    """A real batch-engine attribute matrix: 8 SRW degree series."""
    graph = barabasi_albert_graph(200, 4, seed=13).relabeled()
    csr = graph.compile()
    result = run_walk_batch(
        csr, SimpleRandomWalk(), np.zeros(8, dtype=np.int64), 120, seed=2
    )
    return walk_attribute_matrix(csr, result)


@pytest.fixture(scope="module")
def mixed_matrix():
    """Synthetic rows exercising trends, noise, and a constant chain."""
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(7, 150)).cumsum(axis=1) * 0.1
    matrix += rng.normal(size=(7, 150))
    matrix[3] = 42.0  # constant row
    return matrix


class TestAutocorrelationAgreement:
    @pytest.mark.parametrize("lag", [0, 1, 2, 5, 50, 149, 200])
    def test_autocorrelation_rows_match_scalar(self, mixed_matrix, lag):
        vectorized = autocorrelation_matrix(mixed_matrix, lag)
        scalar = np.array([autocorrelation(row, lag) for row in mixed_matrix])
        assert np.allclose(vectorized, scalar, atol=1e-12)

    @pytest.mark.parametrize("max_lag", [None, 1, 5, 40])
    def test_iat_rows_match_scalar(self, mixed_matrix, max_lag):
        vectorized = integrated_autocorrelation_time_matrix(mixed_matrix, max_lag)
        scalar = np.array(
            [integrated_autocorrelation_time(row, max_lag) for row in mixed_matrix]
        )
        assert np.allclose(vectorized, scalar, atol=1e-10)

    def test_ess_rows_match_scalar(self, attribute_matrix):
        vectorized = effective_sample_size_matrix(attribute_matrix)
        scalar = np.array([effective_sample_size(row) for row in attribute_matrix])
        assert np.allclose(vectorized, scalar, atol=1e-9)

    def test_constant_row_is_one_tau_full_ess(self):
        matrix = np.full((3, 50), 7.0)
        assert np.array_equal(integrated_autocorrelation_time_matrix(matrix), [1, 1, 1])
        assert np.array_equal(effective_sample_size_matrix(matrix), [50, 50, 50])

    def test_negative_lag_rejected(self, mixed_matrix):
        with pytest.raises(ValueError, match="lag"):
            autocorrelation_matrix(mixed_matrix, -1)

    def test_non_matrix_input_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            autocorrelation_matrix(np.arange(10.0), 1)


class TestGewekeAgreement:
    def test_rows_match_monitor(self, attribute_matrix):
        batch = geweke_batch(attribute_matrix)
        for i, row in enumerate(attribute_matrix):
            monitor = GewekeMonitor()
            monitor.observe_many(row)
            result = monitor.evaluate()
            assert np.isclose(batch.z_scores[i], result.z_score, atol=1e-12)
            assert bool(batch.converged[i]) == result.converged
            assert np.isclose(batch.window_a_means[i], result.window_a_mean)
            assert np.isclose(batch.window_b_means[i], result.window_b_mean)
            assert batch.samples_used == result.samples_used

    def test_constant_rows_follow_monitor_convention(self):
        matrix = np.full((2, 40), 3.0)
        matrix[1, :4] = 9.0  # windows constant but irreconcilable means
        batch = geweke_batch(matrix)
        assert batch.z_scores[0] == 0.0 and batch.converged[0]
        assert batch.z_scores[1] == np.inf and not batch.converged[1]

    def test_undersized_series_raises(self):
        with pytest.raises(ConvergenceError, match="observations"):
            geweke_batch(np.zeros((3, 10)))

    def test_parameter_validation_matches_monitor(self):
        matrix = np.zeros((2, 40))
        for kwargs in (
            {"threshold": 0.0},
            {"first_fraction": 0.0},
            {"first_fraction": 0.7, "last_fraction": 0.5},
            {"min_samples": 3},
        ):
            with pytest.raises(ConfigurationError):
                geweke_batch(matrix, **kwargs)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="matrix"):
            geweke_batch(np.zeros(40))


class TestGelmanRubinAgreement:
    def test_matrix_matches_monitor(self, attribute_matrix):
        monitor = GelmanRubinMonitor(min_samples_per_chain=2)
        monitor.observe_matrix(attribute_matrix)
        assert np.isclose(psrf_matrix(attribute_matrix), monitor.psrf(), atol=1e-12)

    def test_identical_chains_give_sub_unity_floor(self):
        # Zero between-chain variance leaves R-hat at its sqrt((n-1)/n)
        # floor — the same value the scalar monitor reports.
        row = np.sin(np.arange(30.0))
        matrix = np.vstack([row, row, row])
        assert psrf_matrix(matrix) == pytest.approx(np.sqrt(29 / 30))
        monitor = GelmanRubinMonitor(min_samples_per_chain=2)
        monitor.observe_matrix(matrix)
        assert psrf_matrix(matrix) == pytest.approx(monitor.psrf())

    def test_constant_disagreeing_chains_diverge(self):
        matrix = np.vstack([np.zeros(20), np.ones(20)])
        assert psrf_matrix(matrix) == np.inf

    def test_single_chain_raises(self):
        with pytest.raises(ConvergenceError, match="two chains"):
            psrf_matrix(np.zeros((1, 30)))

    def test_short_chains_raise(self):
        with pytest.raises(ConvergenceError, match="samples"):
            psrf_matrix(np.zeros((3, 1)))

    def test_observe_matrix_validates_shape(self):
        with pytest.raises(ConfigurationError, match="matrix"):
            GelmanRubinMonitor().observe_matrix(np.zeros(5))


class TestShapeAndNaNSweep:
    def test_nan_propagates_not_masks(self, mixed_matrix):
        # A NaN observation must poison its own row's statistics — the
        # scalar implementations return NaN, and silently dropping the row
        # would report convergence evidence that does not exist.
        poisoned = mixed_matrix.copy()
        poisoned[2, 10] = np.nan
        assert np.isnan(integrated_autocorrelation_time_matrix(poisoned)[2])
        assert np.isnan(effective_sample_size_matrix(poisoned)[2])
        batch = geweke_batch(poisoned)
        assert np.isnan(batch.z_scores[2]) and not batch.converged[2]
        # NaN row matches the scalar paths exactly.
        assert np.isnan(integrated_autocorrelation_time(poisoned[2]))
        # Clean rows are untouched.
        clean = integrated_autocorrelation_time_matrix(mixed_matrix)
        assert np.allclose(
            integrated_autocorrelation_time_matrix(poisoned)[[0, 1, 3]],
            clean[[0, 1, 3]],
        )

    def test_empty_and_tiny_matrices(self):
        assert autocorrelation_matrix(np.zeros((0, 10)), 1).shape == (0,)
        assert effective_sample_size_matrix(np.zeros((4, 0))).tolist() == [0] * 4
        assert integrated_autocorrelation_time_matrix(np.zeros((2, 1))).tolist() == [
            1,
            1,
        ]

    def test_single_walk_batch_diagnosis(self, attribute_matrix):
        report = diagnose_walk_batch(attribute_matrix[:1])
        assert report.geweke.k == 1
        assert report.ess.shape == (1,)
        assert np.isnan(report.psrf)
        assert not report.is_converged()  # one chain can never attest mixing

    def test_full_batch_diagnosis_shapes(self, attribute_matrix):
        report = diagnose_walk_batch(attribute_matrix)
        k = attribute_matrix.shape[0]
        assert report.geweke.z_scores.shape == (k,)
        assert report.ess.shape == (k,)
        assert np.isfinite(report.psrf)
        assert report.total_ess == pytest.approx(report.ess.sum())
        assert 0.0 <= report.geweke.converged_fraction <= 1.0
