"""Transit designs: rows, single entries, steps, and target weights."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graphs.graph import Graph
from repro.markov.matrix import TransitionMatrix
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

ALL_DESIGNS = [
    SimpleRandomWalk(),
    MetropolisHastingsWalk(),
    LazyWalk(SimpleRandomWalk(), 0.3),
    LazyWalk(MetropolisHastingsWalk(), 0.2),
]


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.name)
def test_rows_sum_to_one(design, small_ba):
    for node in small_ba.nodes():
        row = design.transition_row(small_ba, node)
        assert sum(row.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in row.values())


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.name)
def test_transition_probability_matches_row(design, small_ba):
    for node in (0, 5, 17):
        row = design.transition_row(small_ba, node)
        candidates = set(row) | {node, (node + 11) % 30}
        for dest in candidates:
            assert design.transition_probability(
                small_ba, node, dest
            ) == pytest.approx(row.get(dest, 0.0))


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.name)
def test_step_distribution_matches_row(design, small_ba, rng):
    matrix = TransitionMatrix(small_ba, design)
    node = 4
    counts = np.zeros(30)
    trials = 30000
    for _ in range(trials):
        counts[design.step(small_ba, node, rng)] += 1
    assert np.max(np.abs(counts / trials - matrix.matrix[node])) < 0.015


def test_srw_target_is_degree(small_ba):
    design = SimpleRandomWalk()
    for node in small_ba.nodes():
        assert design.target_weight(small_ba, node) == small_ba.degree(node)
    assert not design.uniform_target()


def test_mhrw_target_is_uniform(small_ba):
    design = MetropolisHastingsWalk()
    assert design.uniform_target()
    assert design.target_weight(small_ba, 0) == design.target_weight(small_ba, 7)


def test_mhrw_detailed_balance(small_ba):
    # Uniform target: T(u, v) must equal T(v, u) for all u != v.
    design = MetropolisHastingsWalk()
    matrix = TransitionMatrix(small_ba, design).matrix
    assert np.allclose(matrix, matrix.T)


def test_mhrw_self_loops_flag():
    assert MetropolisHastingsWalk.may_self_loop
    assert not SimpleRandomWalk.may_self_loop


def test_lazy_walk_mixes_self_loop(small_ba):
    lazy = LazyWalk(SimpleRandomWalk(), 0.4)
    row = lazy.transition_row(small_ba, 0)
    assert row[0] >= 0.4
    assert lazy.target_weight(small_ba, 0) == small_ba.degree(0)
    assert lazy.may_self_loop


def test_lazy_walk_validates_laziness():
    with pytest.raises(ConfigurationError):
        LazyWalk(SimpleRandomWalk(), 0.0)
    with pytest.raises(ConfigurationError):
        LazyWalk(SimpleRandomWalk(), 1.0)


def test_max_degree_walk_uniform_target(small_ba, rng):
    design = MaxDegreeWalk(small_ba.max_degree())
    assert design.uniform_target()
    matrix = TransitionMatrix(small_ba, design)
    assert np.allclose(
        matrix.stationary_distribution(), 1.0 / small_ba.number_of_nodes()
    )


def test_max_degree_walk_rejects_undeclared_degree(small_ba):
    design = MaxDegreeWalk(2)  # the BA graph has nodes of degree > 2
    hub = max(small_ba.nodes(), key=small_ba.degree)
    with pytest.raises(ConfigurationError):
        design.transition_row(small_ba, hub)


def test_isolated_node_raises():
    g = Graph()
    g.add_node(0)
    g.add_edge(1, 2)
    with pytest.raises(GraphError):
        SimpleRandomWalk().transition_row(g, 0)
    with pytest.raises(GraphError):
        MetropolisHastingsWalk().step(g, 0, np.random.default_rng(0))
