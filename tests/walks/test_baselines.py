"""Crawl-order baselines: BFS, DFS, snowball."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.properties import bfs_distances
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.baselines import BFSSampler, DFSSampler, SnowballSampler


@pytest.fixture
def api(small_ba):
    return SocialNetworkAPI(small_ba)


def test_bfs_visits_in_distance_order(small_ba, api):
    batch = BFSSampler().sample(api, start=0, count=20, seed=1)
    distances = bfs_distances(small_ba, 0)
    order = [distances[node] for node in batch.nodes]
    assert order == sorted(order)
    assert batch.nodes[0] == 0
    assert len(set(batch.nodes)) == 20  # no repeats


def test_dfs_goes_deep(small_cycle):
    api = SocialNetworkAPI(small_cycle)
    batch = DFSSampler().sample(api, start=0, count=8, seed=1)
    # On a cycle, DFS walks one direction around the ring.
    assert batch.nodes[:4] == [0, 1, 2, 3]


def test_snowball_fanout_limits_wave_growth(small_ba, api):
    batch = SnowballSampler(fanout=1).sample(api, start=0, count=10, seed=2)
    assert len(batch) <= 10
    assert batch.nodes[0] == 0
    with pytest.raises(ConfigurationError):
        SnowballSampler(fanout=0)


def test_all_baselines_respect_budget(small_ba):
    for sampler in (BFSSampler(), DFSSampler(), SnowballSampler()):
        api = SocialNetworkAPI(small_ba, budget=QueryBudget(5))
        batch = sampler.sample(api, start=0, count=30, seed=3)
        assert api.query_cost <= 5
        assert len(batch) <= 30


def test_all_baselines_validate_count(api):
    for sampler in (BFSSampler(), DFSSampler(), SnowballSampler()):
        with pytest.raises(ConfigurationError):
            sampler.sample(api, 0, 0)


def test_baseline_samples_concentrate_near_start():
    # The known pathology these samplers exist to demonstrate.
    graph = barabasi_albert_graph(500, 3, seed=4).relabeled()
    api = SocialNetworkAPI(graph)
    batch = BFSSampler().sample(api, start=0, count=60, seed=5)
    distances = bfs_distances(graph, 0)
    assert max(distances[node] for node in batch.nodes) <= 2
