"""BidirectionalWalk: SRW over mutual edges (paper §6.3.1)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.osn.restrictions import FixedRandomKRestriction, TruncatedKRestriction
from repro.walks.samplers import BurnInSampler
from repro.walks.transitions import BidirectionalWalk, SimpleRandomWalk


def test_unrestricted_equals_srw(small_ba):
    bidir = BidirectionalWalk()
    srw = SimpleRandomWalk()
    for node in (0, 5, 17):
        assert bidir.transition_row(small_ba, node) == srw.transition_row(
            small_ba, node
        )
        assert bidir.target_weight(small_ba, node) == srw.target_weight(
            small_ba, node
        )


def test_restricted_rows_are_distributions(small_ba):
    api = SocialNetworkAPI(small_ba, restriction=TruncatedKRestriction(3))
    bidir = BidirectionalWalk()
    hub = max(small_ba.nodes(), key=small_ba.degree)
    row = bidir.transition_row(api, hub)
    assert sum(row.values()) == pytest.approx(1.0)
    # Every transition target reciprocates visibility.
    for target in row:
        assert hub in api.neighbors(target)


def test_restricted_walk_only_uses_mutual_edges(rng):
    graph = barabasi_albert_graph(100, 4, seed=7).relabeled()
    api = SocialNetworkAPI(graph, restriction=FixedRandomKRestriction(4, seed=1))
    bidir = BidirectionalWalk()
    current = 0
    for _ in range(40):
        nxt = bidir.step(api, current, rng)
        assert nxt in api.neighbors(current)
        assert current in api.neighbors(nxt)
        current = nxt


def test_transition_probability_matches_row(small_ba):
    api = SocialNetworkAPI(small_ba, restriction=TruncatedKRestriction(3))
    bidir = BidirectionalWalk()
    node = 4
    row = bidir.transition_row(api, node)
    for dest in list(row) + [99 % 30]:
        assert bidir.transition_probability(api, node, dest) == pytest.approx(
            row.get(dest, 0.0)
        )


def test_stationary_proportional_to_mutual_degree(small_ba):
    # On an unrestricted graph the mutual graph is the graph itself.
    matrix = TransitionMatrix(small_ba, BidirectionalWalk())
    pi = matrix.stationary_distribution()
    degrees = np.array([small_ba.degree(v) for v in small_ba.nodes()], float)
    assert np.allclose(pi, degrees / degrees.sum())


def test_node_without_mutual_edges_raises():
    # Star hub truncated to 1 neighbor: leaf 2 sees hub, hub only sees
    # leaf 1 -> leaf 2 has no mutual edge.
    from repro.graphs.generators import star_graph

    graph = star_graph(5)
    api = SocialNetworkAPI(graph, restriction=TruncatedKRestriction(1))
    bidir = BidirectionalWalk()
    with pytest.raises(GraphError):
        bidir.transition_row(api, 3)


def test_samples_under_restriction_debias_degree_estimate():
    # The §6.3.1 claim end-to-end, in miniature.
    from repro.estimators.aggregates import average_estimate
    from repro.estimators.metrics import relative_error

    graph = barabasi_albert_graph(400, 5, seed=11).relabeled()
    graph.set_attribute("degree", {n: float(graph.degree(n)) for n in graph.nodes()})
    truth = graph.attribute_mean("degree")
    api = SocialNetworkAPI(graph, restriction=FixedRandomKRestriction(8, seed=3))
    sampler = BurnInSampler(BidirectionalWalk(), min_steps=30, max_steps=400)
    batch = sampler.sample(api, start=0, count=80, seed=5)
    values = [graph.get_attribute("degree", n) for n in batch.nodes]
    error = relative_error(average_estimate(batch, values), truth)
    assert error < 0.5  # naive SRW under the same restriction exceeds 1.0
