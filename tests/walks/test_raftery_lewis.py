"""Raftery–Lewis diagnostic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.graphs.generators import barabasi_albert_graph
from repro.rng import ensure_rng
from repro.walks.raftery_lewis import raftery_lewis
from repro.walks.transitions import SimpleRandomWalk
from repro.walks.walker import run_walk


def test_iid_series_prescription_close_to_minimum(rng):
    result = raftery_lewis(rng.normal(size=20000))
    # Independent draws: no thinning needed, tiny burn-in, total close to
    # the binomial minimum.
    assert result.thinning <= 2
    assert result.burn_in < 50
    assert result.dependence_factor < 3.0
    assert result.minimum_iid_samples > 0
    assert result.total == result.burn_in + result.further_samples


def test_correlated_series_costs_more(rng):
    iid = rng.normal(size=15000)
    ar = [0.0]
    for _ in range(14999):
        ar.append(0.97 * ar[-1] + rng.normal())
    cheap = raftery_lewis(iid)
    costly = raftery_lewis(np.asarray(ar))
    assert costly.total > 3 * cheap.total
    assert costly.dependence_factor > cheap.dependence_factor


def test_tighter_precision_needs_more_samples(rng):
    series = rng.normal(size=20000)
    loose = raftery_lewis(series, precision=0.1)
    tight = raftery_lewis(series, precision=0.02)
    assert tight.further_samples > loose.further_samples
    assert tight.minimum_iid_samples > loose.minimum_iid_samples


def test_validations(rng):
    series = rng.normal(size=1000)
    with pytest.raises(ConfigurationError):
        raftery_lewis(series, quantile=0.0)
    with pytest.raises(ConfigurationError):
        raftery_lewis(series, precision=0.9)
    with pytest.raises(ConfigurationError):
        raftery_lewis(series, probability=1.5)
    with pytest.raises(ConvergenceError):
        raftery_lewis(series[:20])
    with pytest.raises(ConvergenceError):
        raftery_lewis([1.0] * 100)


def test_on_real_walk_degree_series():
    graph = barabasi_albert_graph(400, 4, seed=9).relabeled()
    rng = ensure_rng(4)
    walk = run_walk(graph, SimpleRandomWalk(), 0, 8000, seed=rng)
    degrees = [float(graph.degree(v)) for v in walk.path]
    result = raftery_lewis(degrees, quantile=0.5, precision=0.05)
    # Prescriptions must be positive, finite, and self-consistent.
    assert result.thinning >= 1
    assert result.burn_in >= 0
    assert result.further_samples > 0
    assert np.isfinite(result.dependence_factor)
