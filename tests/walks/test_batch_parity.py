"""Cross-engine parity suite: every batch kernel vs. its scalar twin.

Two properties pin the batch engine to the scalar one for **every**
TransitionDesign with a vectorized kernel:

* **K=1 stream parity** — with the same seed, a one-walk batch reproduces
  the scalar trajectory node for node, across random graph models and
  seeds.  This is what licenses swapping engines mid-experiment.
* **K=1024 stationarity** — wide batches converge to the design's
  theoretical stationary distribution (degree-proportional for SRW-target
  designs, uniform for MHRW/MaxDegreeWalk targets), so the vectorized
  step law is not just seed-compatible but distribution-correct.

A degenerate-topology section exercises the shapes that historically
break vectorized engines: isolated nodes, star graphs, dangling
degree-1 nodes, and MaxDegreeWalk's virtual-degree padding.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.estimators.metrics import empirical_distribution, l_infinity_bias
from repro.graphs import largest_connected_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.walks.batch import (
    has_batch_kernel,
    run_walk_batch,
    target_weights_batch,
)
from repro.walks.kernels import backend_names, get_backend
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk

# Every design with a batch kernel, as factories taking the graph (the
# max-degree designs need its degree bound).
DESIGN_FACTORIES = {
    "srw": lambda g: SimpleRandomWalk(),
    "mhrw": lambda g: MetropolisHastingsWalk(),
    "lazy-srw": lambda g: LazyWalk(SimpleRandomWalk(), 0.3),
    "lazy-mhrw": lambda g: LazyWalk(MetropolisHastingsWalk(), 0.25),
    "maxdeg": lambda g: MaxDegreeWalk(g.max_degree()),
    "lazy-maxdeg": lambda g: LazyWalk(MaxDegreeWalk(g.max_degree()), 0.4),
    "lazy-lazy-srw": lambda g: LazyWalk(LazyWalk(SimpleRandomWalk(), 0.2), 0.5),
}

GRAPH_FACTORIES = {
    "ba": lambda: barabasi_albert_graph(150, 4, seed=13).relabeled(),
    "ws": lambda: watts_strogatz_graph(80, 4, 0.15, seed=3).relabeled(),
    "er": lambda: largest_connected_component(
        erdos_renyi_graph(90, 0.08, seed=7)
    ).relabeled(),
}


@pytest.fixture(scope="module", params=sorted(GRAPH_FACTORIES))
def graph_pair(request):
    graph = GRAPH_FACTORIES[request.param]()
    return graph, graph.compile()


class TestK1StreamParity:
    """Same seed, K=1 -> node-for-node identical to the scalar walker.

    Parametrized over every registered kernel backend: the scalar pin is
    the ground truth all executors — vectorized NumPy, the compiled
    trajectory loop, and its no-JIT twin — must hit on the same stream.
    """

    @pytest.mark.parametrize("backend", backend_names())
    @pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_k1_matches_scalar(self, graph_pair, design_name, seed, backend):
        if not get_backend(backend).available:
            pytest.skip(f"kernel backend {backend!r} unavailable")
        graph, csr = graph_pair
        design = DESIGN_FACTORIES[design_name](graph)
        scalar = run_walk(graph, design, 3, 150, seed=seed)
        batch = run_walk_batch(csr, design, [3], 150, seed=seed, backend=backend)
        assert scalar.path == tuple(batch.paths[0])

    @pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
    def test_every_kernel_is_registered(self, graph_pair, design_name):
        graph, _ = graph_pair
        assert has_batch_kernel(DESIGN_FACTORIES[design_name](graph))

    def test_lazy_over_unsupported_inner_stays_scalar(self, graph_pair):
        from repro.walks.transitions import BidirectionalWalk

        _, csr = graph_pair
        design = LazyWalk(BidirectionalWalk(), 0.5)
        assert not has_batch_kernel(design)
        with pytest.raises(ConfigurationError, match="no batch kernel"):
            run_walk_batch(csr, design, [0], 5, seed=1)

    def test_k1_rows_of_wide_batch_are_independent_walks(self, graph_pair):
        # Widening the batch must not change any single walk's law: each
        # row remains a valid trajectory over graph edges / self-stays.
        graph, csr = graph_pair
        design = LazyWalk(MaxDegreeWalk(graph.max_degree()), 0.4)
        result = run_walk_batch(csr, design, np.zeros(16, dtype=np.int64), 60, seed=5)
        for walk in result.paths:
            for u, v in zip(walk[:-1], walk[1:]):
                assert u == v or graph.has_edge(int(u), int(v))


class TestStationaryFrequencies:
    """K=1024 visit frequencies match the theoretical stationary law."""

    STEPS = 80
    BURN_IN = 40
    K = 1024

    def _tail_pdf(self, csr, design, seed):
        starts = np.zeros(self.K, dtype=np.int64)
        result = run_walk_batch(csr, design, starts, self.STEPS, seed=seed)
        tail = result.paths[:, self.BURN_IN :].ravel()
        return empirical_distribution([int(v) for v in tail], len(csr))

    @pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
    def test_visits_match_target(self, design_name):
        graph = watts_strogatz_graph(40, 4, 0.3, seed=11).relabeled()
        csr = graph.compile()
        design = DESIGN_FACTORIES[design_name](graph)
        weights = target_weights_batch(csr, design, np.arange(len(csr)))
        target = weights / weights.sum()
        pdf = self._tail_pdf(csr, design, seed=29)
        samples = self.K * (self.STEPS - self.BURN_IN + 1)
        # Tail positions are heavily correlated within a walk; budget the
        # tolerance on the number of independent walks, not raw visits.
        noise = np.sqrt(target.max() * samples / self.K) / np.sqrt(samples)
        assert l_infinity_bias(pdf, target) < 8 * max(noise, 1e-3)

    def test_lazy_fixes_periodicity_on_bipartite_graph(self):
        # A cycle of even length is bipartite: plain SRW started from one
        # node alternates sides forever — after any even number of steps
        # every walk sits on an even node — while the lazy wrap mixes to
        # the uniform stationary law.  The batch kernels must reproduce
        # both the pathology and its fix.
        from repro.graphs.generators import cycle_graph

        graph = cycle_graph(20)
        csr = graph.compile()
        starts = np.zeros(1024, dtype=np.int64)
        plain = run_walk_batch(csr, SimpleRandomWalk(), starts, 200, seed=17)
        assert np.all(plain.positions_at(200) % 2 == 0)
        lazy = run_walk_batch(
            csr, LazyWalk(SimpleRandomWalk(), 0.5), starts, 200, seed=17
        )
        pdf = empirical_distribution([int(v) for v in lazy.positions_at(200)], 20)
        uniform = np.full(20, 1 / 20)
        plain_pdf = empirical_distribution(
            [int(v) for v in plain.positions_at(200)], 20
        )
        assert l_infinity_bias(plain_pdf, uniform) >= 1 / 20  # odd side empty
        assert l_infinity_bias(pdf, uniform) < 0.02


class TestDegenerateTopologies:
    """Shapes that historically break vectorized engines."""

    def test_isolated_start_raises_for_movers(self):
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        for design in (SimpleRandomWalk(), MaxDegreeWalk(1)):
            with pytest.raises(GraphError, match="no neighbors"):
                run_walk_batch(g, design, [2], 5, seed=0)

    def test_lazy_walk_on_isolated_node_fails_only_on_a_move(self):
        # The laziness coin is drawn before the neighbor row is touched, so
        # a parked walk survives until it first tries to move — the scalar
        # semantics, step for step.
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        design = LazyWalk(SimpleRandomWalk(), 0.3)
        with pytest.raises(GraphError, match="no neighbors"):
            run_walk_batch(g, design, [2], 50, seed=0)
        scalar_raised = batch_raised = None
        try:
            run_walk(g, design, 2, 50, seed=0)
        except GraphError:
            scalar_raised = True
        try:
            run_walk_batch(g.compile(), design, [2], 50, seed=0)
        except GraphError:
            batch_raised = True
        assert scalar_raised and batch_raised

    @pytest.mark.parametrize(
        "design_name", ["srw", "mhrw", "maxdeg", "lazy-srw", "lazy-maxdeg"]
    )
    def test_star_graph_parity_and_center_pivot(self, design_name):
        # Star: one hub, n-1 leaves of degree 1 — the extreme degree skew.
        graph = star_graph(33)
        csr = graph.compile()
        design = DESIGN_FACTORIES[design_name](graph)
        for seed in (0, 5):
            scalar = run_walk(graph, design, 1, 100, seed=seed)
            batch = run_walk_batch(csr, design, [1], 100, seed=seed)
            assert scalar.path == tuple(batch.paths[0])

    def test_maxdeg_virtual_degree_padding_parks_leaves(self):
        # A leaf under MaxDegreeWalk moves with probability 1/d_max: its
        # virtual self-loops dominate, so a dangling node mostly idles.
        graph = star_graph(65)  # d_max = 64
        csr = graph.compile()
        design = MaxDegreeWalk(graph.max_degree())
        result = run_walk_batch(
            csr, design, np.full(512, 1, dtype=np.int64), 40, seed=3
        )
        stays = (result.paths[:, :-1] == result.paths[:, 1:]).mean()
        # Walks spend most steps parked on leaves; the expected stay rate
        # is far above 0.9 and far below the all-stays degenerate 1.0.
        assert 0.9 < stays < 1.0

    def test_maxdeg_rejects_underdeclared_bound_like_scalar(self):
        graph = barabasi_albert_graph(60, 3, seed=2).relabeled()
        design = MaxDegreeWalk(2)
        with pytest.raises(ConfigurationError, match="max_degree"):
            run_walk(graph, design, 0, 20, seed=1)
        with pytest.raises(ConfigurationError, match="max_degree"):
            run_walk_batch(graph.compile(), design, [0], 20, seed=1)

    def test_dangling_chain_parity(self):
        # A clique with a 3-node dangling path: low-degree tail nodes force
        # frequent MHRW rejections and maxdeg self-stays.
        g = Graph()
        g.add_edges_from(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        csr = g.compile()
        for design in (
            MetropolisHastingsWalk(),
            MaxDegreeWalk(g.max_degree()),
            LazyWalk(MaxDegreeWalk(g.max_degree()), 0.35),
        ):
            for seed in (0, 9):
                scalar = run_walk(g, design, 6, 120, seed=seed)
                batch = run_walk_batch(csr, design, [6], 120, seed=seed)
                assert scalar.path == tuple(batch.paths[0])

    def test_gappy_ids_round_trip_for_new_kernels(self):
        g = Graph()
        g.add_edges_from([(10, 20), (20, 40), (40, 10), (40, 70)])
        design = LazyWalk(MaxDegreeWalk(g.max_degree()), 0.3)
        result = run_walk_batch(g, design, [20, 70], 30, seed=8)
        assert set(int(v) for v in result.paths.ravel()) <= {10, 20, 40, 70}
        scalar = run_walk(g, design, 20, 30, seed=8)
        k1 = run_walk_batch(g, design, [20], 30, seed=8)
        assert scalar.path == tuple(k1.paths[0])
