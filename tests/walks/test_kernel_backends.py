"""The kernel-backend registry and its cross-backend parity contract.

Three layers under test:

* **Registry semantics** — registration, lookup, availability, strict
  vs. soft resolution (the one-time fallback warning), the capability
  report, and the process default (env var / ``set_default_backend``).
* **Bit-for-bit parity** — every available backend must produce the
  NumPy reference's trajectories *and* leave the shared generator in
  the same state, for random graphs × designs × seeds (hypothesis) and
  for the error paths (stuck node, over-declared max degree), whose
  messages must match byte for byte.  The ``python`` backend runs the
  native trajectory loop without the JIT, so this parity is proven on
  numba-less hosts too; with numba installed the ``native`` backend
  runs the same cases through the compiled dispatcher.
* **Config plumbing** — ``kernel_backend`` on ``WalkEstimateConfig`` /
  ``EngineConfig`` (validation, actionable unavailability error, the
  ``walk_config()`` fold) and end-to-end equality of the batch
  WALK-ESTIMATE front ends across backends.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WalkEstimateConfig
from repro.core.dispatch import EngineConfig, EstimationJobSpec
from repro.core.walk_estimate import walk_estimate_batch
from repro.errors import ConfigurationError, GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.walks import kernels
from repro.walks.batch import run_nbrw_walk_batch, run_walk_batch
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

NUMBA_PRESENT = kernels.numba is not None

#: Backends whose trajectories must match the numpy reference; ``native``
#: auto-skips where numba is absent.
ALTERNATE_BACKENDS = [n for n in kernels.backend_names() if n != "numpy"]


def _skip_unless_available(backend: str) -> None:
    if not kernels.get_backend(backend).available:
        pytest.skip(f"kernel backend {backend!r} unavailable (numba not installed)")


def _design_for(code: int, max_degree: int):
    inner = [
        SimpleRandomWalk(),
        MetropolisHastingsWalk(),
        MaxDegreeWalk(max_degree),
    ][code % 3]
    if code >= 3:  # lazy wrap, nested once more for the top codes
        inner = LazyWalk(inner, 0.35)
    if code >= 6:
        inner = LazyWalk(inner, 0.5)
    return inner


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_reference_backends_are_registered(self):
        assert {"numpy", "native", "python"} <= set(kernels.backend_names())

    def test_numpy_and_python_are_always_available(self):
        assert "numpy" in kernels.available_backends()
        assert "python" in kernels.available_backends()

    def test_native_availability_tracks_numba(self):
        assert kernels.get_backend("native").available is NUMBA_PRESENT

    def test_unknown_backend_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            kernels.get_backend("fortran")

    def test_duplicate_registration_rejected_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            kernels.register_backend(kernels.NumpyKernelBackend())

    def test_default_backend_is_numpy(self):
        assert kernels.default_backend_name() == "numpy"

    def test_set_default_backend_is_strict(self, monkeypatch):
        monkeypatch.setattr(kernels, "_DEFAULT_BACKEND", "numpy")
        assert kernels.set_default_backend("python").name == "python"
        assert kernels.default_backend_name() == "python"
        with pytest.raises(ConfigurationError):
            kernels.set_default_backend("no-such-backend")

    def test_capability_report_shape(self):
        report = kernels.capability_report()
        assert report["default"] == kernels.default_backend_name()
        assert set(report["backends"]) == set(kernels.backend_names())
        native = report["backends"]["native"]
        assert native["jit"] is True
        assert native["available"] is NUMBA_PRESENT
        assert "pip install" in native["requires"]

    def test_backend_objects_pass_through_resolution(self):
        backend = kernels.get_backend("python")
        assert kernels.resolve_backend(backend) is backend

    def test_supports_mirrors_the_batch_kernel_closure(self):
        from repro.walks.transitions import BidirectionalWalk

        for name in kernels.backend_names():
            backend = kernels.get_backend(name)
            assert backend.supports(LazyWalk(SimpleRandomWalk(), 0.5))
            assert not backend.supports(BidirectionalWalk())
            assert not backend.supports(LazyWalk(BidirectionalWalk(), 0.5))


@pytest.mark.skipif(NUMBA_PRESENT, reason="fallback path needs numba absent")
class TestNumbaLessFallback:
    """The graceful-degradation story on hosts without numba."""

    def test_strict_native_resolution_is_actionable(self):
        with pytest.raises(ConfigurationError) as excinfo:
            kernels.require_backend("native")
        message = str(excinfo.value)
        assert "numba" in message and "pip install" in message

    def test_soft_resolution_falls_back_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(kernels, "_WARNED_FALLBACK", False)
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = kernels.resolve_backend("native", strict=False)
        assert backend.name == "numpy"
        # Second soft resolution: silent (the warning fired once).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = kernels.resolve_backend("native", strict=False)
        assert again.name == "numpy"

    def test_run_walk_batch_native_raises_actionably(self, triangle):
        with pytest.raises(ConfigurationError, match="pip install"):
            run_walk_batch(
                triangle, SimpleRandomWalk(), [0], 3, seed=0, backend="native"
            )

    def test_engine_config_native_raises_actionably(self):
        with pytest.raises(ConfigurationError) as excinfo:
            EngineConfig(kernel_backend="native")
        message = str(excinfo.value)
        assert "numba" in message and "pip install" in message


# ----------------------------------------------------------------------
# Cross-backend parity
# ----------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    @given(
        nodes=st.integers(min_value=5, max_value=40),
        attach=st.integers(min_value=1, max_value=4),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        walk_seed=st.integers(min_value=0, max_value=10_000),
        design_code=st.integers(min_value=0, max_value=8),
        steps=st.integers(min_value=0, max_value=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_identical_trajectories_on_random_graphs(
        self, backend, nodes, attach, graph_seed, walk_seed, design_code, steps
    ):
        _skip_unless_available(backend)
        attach = min(attach, nodes - 1)
        graph = barabasi_albert_graph(nodes, attach, seed=graph_seed).relabeled()
        csr = graph.compile()
        design = _design_for(design_code, graph.max_degree())
        starts = np.arange(min(8, nodes), dtype=np.int64)
        rng_ref = np.random.default_rng(walk_seed)
        rng_alt = np.random.default_rng(walk_seed)
        reference = run_walk_batch(
            csr, design, starts, steps, seed=rng_ref, backend="numpy"
        )
        candidate = run_walk_batch(
            csr, design, starts, steps, seed=rng_alt, backend=backend
        )
        assert np.array_equal(reference.paths, candidate.paths)
        # State continuity: a calibration/main-round pair sharing one
        # generator must stay reproducible across backend swaps.
        assert rng_ref.bit_generator.state == rng_alt.bit_generator.state

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 9, 4321])
    def test_nbrw_parity(self, backend, seed):
        _skip_unless_available(backend)
        graph = barabasi_albert_graph(60, 2, seed=3).relabeled()
        csr = graph.compile()
        starts = np.arange(12, dtype=np.int64)
        rng_ref = np.random.default_rng(seed)
        rng_alt = np.random.default_rng(seed)
        reference = run_nbrw_walk_batch(csr, starts, 40, seed=rng_ref, backend="numpy")
        candidate = run_nbrw_walk_batch(csr, starts, 40, seed=rng_alt, backend=backend)
        assert np.array_equal(reference.paths, candidate.paths)
        assert rng_ref.bit_generator.state == rng_alt.bit_generator.state

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_gappy_node_ids_round_trip(self, backend):
        _skip_unless_available(backend)
        g = Graph()
        g.add_edges_from([(10, 20), (20, 40), (40, 10), (40, 70)])
        design = LazyWalk(MaxDegreeWalk(g.max_degree()), 0.3)
        reference = run_walk_batch(g, design, [20, 70], 30, seed=8, backend="numpy")
        candidate = run_walk_batch(g, design, [20, 70], 30, seed=8, backend=backend)
        assert np.array_equal(reference.paths, candidate.paths)

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_stuck_walk_error_matches_reference(self, backend):
        _skip_unless_available(backend)
        g = Graph()
        g.add_nodes_from([0, 1, 7])
        g.add_edge(0, 1)
        with pytest.raises(GraphError) as reference:
            run_walk_batch(g, SimpleRandomWalk(), [7], 5, seed=0, backend="numpy")
        with pytest.raises(GraphError) as candidate:
            run_walk_batch(g, SimpleRandomWalk(), [7], 5, seed=0, backend=backend)
        assert str(candidate.value) == str(reference.value)

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_overdeclared_degree_error_matches_reference(self, backend):
        _skip_unless_available(backend)
        g = Graph()
        g.add_edges_from([(0, 1), (0, 2), (0, 3), (1, 2)])
        with pytest.raises(ConfigurationError) as reference:
            run_walk_batch(g, MaxDegreeWalk(2), [0], 5, seed=0, backend="numpy")
        with pytest.raises(ConfigurationError) as candidate:
            run_walk_batch(g, MaxDegreeWalk(2), [0], 5, seed=0, backend=backend)
        assert str(candidate.value) == str(reference.value)

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_lazily_parked_walk_survives_until_it_moves(self, backend):
        _skip_unless_available(backend)
        g = Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        design = LazyWalk(SimpleRandomWalk(), 0.3)
        with pytest.raises(GraphError, match="no neighbors"):
            run_walk_batch(g.compile(), design, [2], 50, seed=0, backend=backend)

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_zero_steps_and_empty_batch(self, backend):
        _skip_unless_available(backend)
        graph = barabasi_albert_graph(20, 2, seed=1).relabeled()
        csr = graph.compile()
        zero = run_walk_batch(
            csr, SimpleRandomWalk(), [3, 5], 0, seed=2, backend=backend
        )
        assert np.array_equal(zero.paths, np.array([[3], [5]]))
        empty = run_walk_batch(
            csr,
            SimpleRandomWalk(),
            np.empty(0, dtype=np.int64),
            4,
            seed=2,
            backend=backend,
        )
        assert empty.paths.shape == (0, 5)


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_walk_estimate_config_validates_backend_name(self):
        assert WalkEstimateConfig(kernel_backend="python").kernel_backend == "python"
        with pytest.raises(ConfigurationError, match="unknown kernel_backend"):
            WalkEstimateConfig(kernel_backend="cuda")

    def test_engine_config_accepts_available_backends(self):
        assert EngineConfig(kernel_backend="python").kernel_backend == "python"
        with pytest.raises(ConfigurationError):
            EngineConfig(kernel_backend="cuda")

    def test_engine_config_round_trips_kernel_backend(self):
        config = EngineConfig(backend="sharded", kernel_backend="python")
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_job_spec_folds_engine_backend_into_walk_config(self):
        job = EstimationJobSpec(engine=EngineConfig(kernel_backend="python"))
        assert job.walk_config().kernel_backend == "python"

    def test_walk_config_explicit_backend_survives_default_engine(self):
        job = EstimationJobSpec(walk=WalkEstimateConfig(kernel_backend="python"))
        assert job.walk_config().kernel_backend == "python"

    def test_job_spec_json_round_trip_carries_backend(self):
        job = EstimationJobSpec(engine=EngineConfig(kernel_backend="python"))
        restored = EstimationJobSpec.from_json(job.to_json())
        assert restored.engine.kernel_backend == "python"
        assert restored == job

    @pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
    def test_walk_estimate_batch_is_backend_invariant(self, backend):
        _skip_unless_available(backend)
        graph = barabasi_albert_graph(80, 3, seed=11).relabeled()
        csr = graph.compile()
        config = WalkEstimateConfig(diameter_hint=3, calibration_walks=4)
        reference = walk_estimate_batch(
            csr, SimpleRandomWalk(), 0, 16, config=config, seed=123
        )
        candidate = walk_estimate_batch(
            csr,
            SimpleRandomWalk(),
            0,
            16,
            config=config.with_overrides(kernel_backend=backend),
            seed=123,
        )
        assert np.array_equal(reference.nodes, candidate.nodes)
        assert np.array_equal(reference.weights, candidate.weights)
        assert np.array_equal(reference.accepted, candidate.accepted)
