"""Forward walk execution and trajectory bookkeeping."""

import pytest

from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk
from repro.walks.walker import continue_walk, run_walk, walk_attribute_series


def test_walk_length_and_endpoints(small_ba):
    walk = run_walk(small_ba, SimpleRandomWalk(), start=0, steps=10, seed=1)
    assert walk.steps == 10
    assert len(walk.path) == 11
    assert walk.start == 0
    assert walk.end == walk.path[-1]
    assert walk.position_at(0) == 0


def test_walk_moves_along_edges(small_ba):
    walk = run_walk(small_ba, SimpleRandomWalk(), start=0, steps=25, seed=2)
    for u, v in zip(walk.path, walk.path[1:]):
        assert small_ba.has_edge(u, v)  # SRW never self-loops


def test_mhrw_walk_may_stay(small_ba):
    walk = run_walk(small_ba, MetropolisHastingsWalk(), start=0, steps=50, seed=3)
    for u, v in zip(walk.path, walk.path[1:]):
        assert u == v or small_ba.has_edge(u, v)


def test_walk_deterministic_under_seed(small_ba):
    a = run_walk(small_ba, SimpleRandomWalk(), 0, 20, seed=42)
    b = run_walk(small_ba, SimpleRandomWalk(), 0, 20, seed=42)
    assert a.path == b.path


def test_zero_step_walk(small_ba):
    walk = run_walk(small_ba, SimpleRandomWalk(), 5, 0, seed=1)
    assert walk.path == (5,)
    with pytest.raises(ValueError):
        run_walk(small_ba, SimpleRandomWalk(), 5, -1, seed=1)


def test_continue_walk_extends(small_ba):
    walk = run_walk(small_ba, SimpleRandomWalk(), 0, 5, seed=4)
    longer = continue_walk(small_ba, SimpleRandomWalk(), walk, 5, seed=5)
    assert longer.steps == 10
    assert longer.path[:6] == walk.path
    with pytest.raises(ValueError):
        continue_walk(small_ba, SimpleRandomWalk(), walk, -1)


def test_walk_over_api_charges_queries(small_ba):
    api = SocialNetworkAPI(small_ba)
    walk = run_walk(api, SimpleRandomWalk(), 0, 15, seed=6)
    # Each step queries the current node; cost equals distinct visited
    # nodes (excluding the endpoint, whose neighbors were never needed).
    assert api.query_cost >= len(set(walk.path[:-1]))
    assert api.query_cost <= small_ba.number_of_nodes()


def test_walk_attribute_series_degree(small_ba):
    walk = run_walk(small_ba, SimpleRandomWalk(), 0, 8, seed=7)
    series = walk_attribute_series(small_ba, walk, None)
    assert series == [float(small_ba.degree(v)) for v in walk.path]


def test_walk_attribute_series_named(small_ba):
    small_ba.set_attribute("x", {n: float(n * 2) for n in small_ba.nodes()})
    api = SocialNetworkAPI(small_ba)
    walk = run_walk(api, SimpleRandomWalk(), 0, 5, seed=8)
    series = walk_attribute_series(api, walk, "x")
    assert series == [2.0 * v for v in walk.path]
