"""End-to-end integration: the paper's headline claims on small workloads."""

import numpy as np
import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.walk_estimate import we_full_sampler
from repro.datasets.registry import build_dataset
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import (
    empirical_distribution,
    l_infinity_bias,
    relative_error,
)
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.samplers import BurnInSampler
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("ba_synthetic", seed=99, nodes=1500, m=6)


def _estimate_degree(dataset, batch):
    values = [
        dataset.graph.get_attribute("degree", node) for node in batch.nodes
    ]
    return average_estimate(batch, values)


def test_we_beats_burnin_on_error_per_budget(dataset):
    """The headline: at equal query budgets WE's estimate is better.

    Averaged over several starts to keep the assertion stable; this is the
    Figure 6/7/8 phenomenon in miniature.
    """
    budget = 900
    design = SimpleRandomWalk()
    truth = dataset.aggregates["degree"]
    we_errors, burnin_errors = [], []
    for rep in range(4):
        start = int(np.random.default_rng(rep).integers(0, 1500))
        api = SocialNetworkAPI(dataset.graph, budget=QueryBudget(budget))
        burnin_batch = BurnInSampler(design).sample(api, start, 200, seed=rep)
        if len(burnin_batch):
            burnin_errors.append(
                relative_error(_estimate_degree(dataset, burnin_batch), truth)
            )
        else:
            burnin_errors.append(1.0)

        api = SocialNetworkAPI(dataset.graph, budget=QueryBudget(budget))
        config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
        we_batch = we_full_sampler(design, config).sample(api, start, 200, seed=rep)
        if len(we_batch):
            we_errors.append(
                relative_error(_estimate_degree(dataset, we_batch), truth)
            )
        else:
            we_errors.append(1.0)
    assert np.mean(we_errors) < np.mean(burnin_errors)


def test_we_mhrw_estimates_uniform_aggregate(dataset):
    # MHRW input: target uniform, arithmetic mean estimator.
    design = MetropolisHastingsWalk()
    truth = dataset.aggregates["degree"]
    api = SocialNetworkAPI(dataset.graph)
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    batch = we_full_sampler(design, config).sample(api, 0, 120, seed=5)
    assert len(batch) == 120
    estimate = _estimate_degree(dataset, batch)
    assert relative_error(estimate, truth) < 0.35


def test_we_distribution_close_to_target_small_graph():
    """Exact-bias miniature (Table 1): WE's sampling distribution lands
    near the degree-proportional target."""
    dataset = build_dataset("ba_synthetic", seed=3, nodes=200, m=4)
    graph = dataset.graph
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=float)
    target = degrees / degrees.sum()
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(
        diameter_hint=4, crawl_hops=2, scale_percentile=10.0
    )
    nodes = []
    for rep in range(40):
        api = SocialNetworkAPI(graph)
        batch = we_full_sampler(design, config).sample(api, 0, 60, seed=rep)
        nodes.extend(batch.nodes)
    pdf = empirical_distribution(nodes, n)
    # Sampling noise floor for ~2400 samples is about sqrt(p/n_samples);
    # allow a modest multiple of the largest node's floor.
    noise = np.sqrt(target.max() / len(nodes))
    assert l_infinity_bias(pdf, target) < 8 * noise


def test_full_pipeline_through_restricted_api(dataset):
    # WE keeps functioning under a type-3 truncation (smaller visible
    # graph); this guards the NeighborView plumbing end to end.
    from repro.osn.restrictions import TruncatedKRestriction

    api = SocialNetworkAPI(dataset.graph, restriction=TruncatedKRestriction(10))
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=1)
    batch = we_full_sampler(SimpleRandomWalk(), config).sample(api, 0, 30, seed=9)
    assert len(batch) == 30


def test_query_costs_accounted_once(dataset):
    api = SocialNetworkAPI(dataset.graph)
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, 0, 40, seed=10)
    # Unique cost can never exceed the graph order nor raw calls.
    assert batch.query_cost <= dataset.graph.number_of_nodes()
    assert batch.query_cost <= api.raw_calls
