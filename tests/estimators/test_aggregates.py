"""AVG estimators: arithmetic vs importance-weighted (paper §7.1)."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.aggregates import (
    attribute_average_estimate,
    average_estimate,
    importance_weighted_mean,
    plain_mean,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import ensure_rng
from repro.walks.samplers import SampleBatch


def test_plain_mean():
    assert plain_mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(EstimationError):
        plain_mean([])


def test_importance_weighted_mean_formula():
    # Two samples with weights 1 and 2: mean = (v1/1 + v2/2) / (1 + 1/2).
    result = importance_weighted_mean([10.0, 20.0], [1.0, 2.0])
    assert result == pytest.approx((10.0 + 10.0) / 1.5)


def test_importance_weighted_mean_validations():
    with pytest.raises(EstimationError):
        importance_weighted_mean([], [])
    with pytest.raises(EstimationError):
        importance_weighted_mean([1.0], [1.0, 2.0])
    with pytest.raises(EstimationError):
        importance_weighted_mean([1.0], [0.0])


def test_harmonic_mean_special_case():
    # For values == weights == degrees, the weighted mean is the harmonic
    # mean — the paper's avg-degree estimator for SRW samples.
    degrees = [2.0, 4.0, 8.0]
    expected = len(degrees) / sum(1.0 / d for d in degrees)
    assert importance_weighted_mean(degrees, degrees) == pytest.approx(expected)


def test_average_estimate_picks_estimator_by_weights():
    uniform_batch = SampleBatch(nodes=[0, 1], target_weights=[1.0, 1.0])
    assert average_estimate(uniform_batch, [2.0, 4.0]) == 3.0
    skewed_batch = SampleBatch(nodes=[0, 1], target_weights=[1.0, 3.0])
    assert average_estimate(skewed_batch, [2.0, 4.0]) != 3.0


def test_average_estimate_validations():
    batch = SampleBatch(nodes=[0], target_weights=[1.0])
    with pytest.raises(EstimationError):
        average_estimate(SampleBatch(), [])
    with pytest.raises(EstimationError):
        average_estimate(batch, [1.0, 2.0])


def test_degree_weighted_sampling_debiased_end_to_end():
    """Statistical law check for the §7.1 estimator choice.

    Draw nodes exactly degree-proportionally (the SRW target), estimate the
    average degree with the importance-weighted estimator, and compare to
    the plain mean: the weighted estimate must converge to the true mean,
    the naive mean must stay biased high.
    """
    graph = barabasi_albert_graph(300, 3, seed=2).relabeled()
    rng = ensure_rng(3)
    degrees = np.array([graph.degree(v) for v in graph.nodes()], dtype=float)
    truth = degrees.mean()
    probabilities = degrees / degrees.sum()
    sample = rng.choice(len(degrees), size=4000, p=probabilities)
    values = degrees[sample]
    weights = degrees[sample]
    weighted = importance_weighted_mean(values, weights)
    naive = plain_mean(values)
    assert abs(weighted - truth) / truth < 0.05
    assert naive > truth * 1.3  # size-biased mean is way off


def test_attribute_average_estimate_via_api():
    graph = barabasi_albert_graph(50, 3, seed=5).relabeled()
    graph.set_attribute("x", {n: float(n) for n in graph.nodes()})
    api = SocialNetworkAPI(graph)
    batch = SampleBatch(nodes=[1, 2, 3], target_weights=[1.0, 1.0, 1.0])
    assert attribute_average_estimate(api, batch, "x") == 2.0
    # Degree aggregation path (attribute=None).
    expected = np.mean([graph.degree(v) for v in (1, 2, 3)])
    assert attribute_average_estimate(api, batch, None) == pytest.approx(expected)
    with pytest.raises(EstimationError):
        attribute_average_estimate(api, SampleBatch(), "x")
