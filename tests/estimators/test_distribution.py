"""Figure 12's sampling-distribution comparison builder."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.distribution import sampling_distribution_comparison
from repro.graphs.generators import barabasi_albert_graph
from repro.rng import ensure_rng


@pytest.fixture
def setup():
    graph = barabasi_albert_graph(40, 3, seed=9).relabeled()
    degrees = np.array([graph.degree(v) for v in graph.nodes()], dtype=float)
    target = degrees / degrees.sum()
    return graph, target


def test_node_order_is_degree_descending(setup):
    graph, target = setup
    comparison = sampling_distribution_comparison(
        graph, target, {"S": [0, 1, 2, 3]}
    )
    degrees = [graph.degree(v) for v in comparison.node_order]
    assert degrees == sorted(degrees, reverse=True)
    assert len(comparison.node_order) == 40


def test_target_pdf_reordered_consistently(setup):
    graph, target = setup
    comparison = sampling_distribution_comparison(graph, target, {"S": [0]})
    for position, node in enumerate(comparison.node_order):
        assert comparison.target_pdf[position] == target[node]


def test_sampled_pdf_and_biases(setup):
    graph, target = setup
    rng = ensure_rng(4)
    nodes = list(rng.choice(40, size=20000, p=target))
    comparison = sampling_distribution_comparison(graph, target, {"good": nodes})
    assert comparison.sampled_pdfs["good"].sum() == pytest.approx(1.0)
    # A faithful sampler scores a tiny bias.
    assert comparison.biases["good"]["linf"] < 0.02
    assert comparison.biases["good"]["kl"] < 0.05


def test_cdf_monotone_and_normalized(setup):
    graph, target = setup
    comparison = sampling_distribution_comparison(graph, target, {"S": [0, 5]})
    for label in (None, "S"):
        cdf = comparison.cdf(label)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)


def test_shape_mismatch_rejected(setup):
    graph, _ = setup
    with pytest.raises(EstimationError):
        sampling_distribution_comparison(graph, np.full(10, 0.1), {"S": [0]})


def test_biased_sampler_scores_worse(setup):
    graph, target = setup
    rng = ensure_rng(5)
    faithful = list(rng.choice(40, size=5000, p=target))
    hub_only = [int(np.argmax(target))] * 5000
    comparison = sampling_distribution_comparison(
        graph, target, {"faithful": faithful, "hub": hub_only}
    )
    assert (
        comparison.biases["hub"]["kl"] > comparison.biases["faithful"]["kl"]
    )
    assert (
        comparison.biases["hub"]["linf"]
        > comparison.biases["faithful"]["linf"]
    )
