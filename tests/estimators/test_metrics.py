"""Relative error, empirical distributions, bias metrics."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.metrics import (
    bias_report,
    empirical_distribution,
    kl_bias,
    l_infinity_bias,
    relative_error,
    total_variation_bias,
)


def test_relative_error_basic():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    assert relative_error(90.0, 100.0) == pytest.approx(0.1)
    assert relative_error(-50.0, -100.0) == pytest.approx(0.5)
    with pytest.raises(EstimationError):
        relative_error(1.0, 0.0)


def test_empirical_distribution_counts():
    pdf = empirical_distribution([0, 0, 1, 2], 4)
    assert np.allclose(pdf, [0.5, 0.25, 0.25, 0.0])
    assert pdf.sum() == pytest.approx(1.0)


def test_empirical_distribution_validations():
    with pytest.raises(EstimationError):
        empirical_distribution([], 3)
    with pytest.raises(EstimationError):
        empirical_distribution([5], 3)
    with pytest.raises(EstimationError):
        empirical_distribution([-1], 3)


def test_bias_metrics_against_uniform():
    sampled = np.array([0.5, 0.5, 0.0, 0.0])
    target = np.full(4, 0.25)
    assert l_infinity_bias(sampled, target) == pytest.approx(0.25)
    assert total_variation_bias(sampled, target) == pytest.approx(0.5)
    assert kl_bias(sampled, target) == pytest.approx(np.log(2))
    report = bias_report(sampled, target)
    assert set(report) == {"linf", "kl", "tv"}
    assert report["linf"] == pytest.approx(0.25)


def test_perfect_sample_zero_bias():
    target = np.array([0.4, 0.3, 0.2, 0.1])
    report = bias_report(target.copy(), target)
    assert report["linf"] == 0.0
    assert report["tv"] == 0.0
    assert report["kl"] == pytest.approx(0.0, abs=1e-12)


def test_more_samples_reduce_empirical_bias(rng):
    target = np.array([0.4, 0.3, 0.2, 0.1])
    small = empirical_distribution(
        list(rng.choice(4, size=50, p=target)), 4
    )
    large = empirical_distribution(
        list(rng.choice(4, size=50000, p=target)), 4
    )
    assert l_infinity_bias(large, target) < l_infinity_bias(small, target)
