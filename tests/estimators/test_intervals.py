"""Bootstrap confidence intervals."""

import pytest

from repro.errors import EstimationError
from repro.estimators.intervals import bootstrap_interval
from repro.rng import ensure_rng
from repro.walks.samplers import SampleBatch


def make_batch(values, weights):
    return SampleBatch(
        nodes=list(range(len(values))), target_weights=list(weights)
    )


def test_interval_brackets_point_estimate(rng):
    values = list(rng.normal(10.0, 2.0, size=200))
    batch = make_batch(values, [1.0] * 200)
    ci = bootstrap_interval(batch, values, seed=rng)
    assert ci.lower <= ci.estimate <= ci.upper
    assert ci.contains(ci.estimate)
    assert ci.width > 0
    assert ci.confidence == 0.95
    assert ci.replicates == 1000


def test_interval_narrows_with_more_samples(rng):
    wide_values = list(rng.normal(size=30))
    narrow_values = list(rng.normal(size=3000))
    wide = bootstrap_interval(
        make_batch(wide_values, [1.0] * 30), wide_values, seed=1
    )
    narrow = bootstrap_interval(
        make_batch(narrow_values, [1.0] * 3000), narrow_values, seed=1
    )
    assert narrow.width < wide.width


def test_coverage_on_uniform_samples():
    # ~95% of 95% CIs over repeated draws should contain the true mean.
    rng = ensure_rng(7)
    true_mean = 5.0
    covered = 0
    trials = 120
    for _ in range(trials):
        values = list(rng.normal(true_mean, 1.0, size=60))
        ci = bootstrap_interval(
            make_batch(values, [1.0] * 60), values, replicates=300, seed=rng
        )
        covered += ci.contains(true_mean)
    assert covered / trials > 0.85


def test_weighted_interval_centers_on_weighted_estimate(rng):
    # Degree-proportional draws from {low: 2, high: 8}, weighted CI should
    # cover the population mean 5.0 — naive mean would sit near 6.8.
    values, weights = [], []
    for _ in range(600):
        if rng.random() < 0.8:
            values.append(8.0)
            weights.append(8.0)
        else:
            values.append(2.0)
            weights.append(2.0)
    ci = bootstrap_interval(make_batch(values, weights), values, seed=rng)
    assert ci.contains(5.0)
    assert not ci.contains(6.8)


def test_validations(rng):
    batch = make_batch([1.0, 2.0], [1.0, 1.0])
    with pytest.raises(EstimationError):
        bootstrap_interval(SampleBatch(), [], seed=rng)
    with pytest.raises(EstimationError):
        bootstrap_interval(batch, [1.0], seed=rng)
    with pytest.raises(EstimationError):
        bootstrap_interval(make_batch([1.0], [1.0]), [1.0], seed=rng)
    with pytest.raises(EstimationError):
        bootstrap_interval(batch, [1.0, 2.0], confidence=1.5, seed=rng)
    with pytest.raises(EstimationError):
        bootstrap_interval(batch, [1.0, 2.0], replicates=5, seed=rng)
