"""Text/CSV rendering of experiment results."""

import csv
import io

from repro.experiments.reporting import render_result, render_table, result_to_csv
from repro.experiments.runner import ExperimentResult, Series, TableData


def make_result():
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        x_label="budget",
        y_label="error",
        notes=["a note"],
    )
    a = Series(label="SRW")
    a.add(100, 0.5)
    a.add(200, 0.25)
    b = Series(label="WE")
    b.add(100, 0.3)
    result.panel("panel one").extend([a, b])
    table = TableData(columns=["k", "v"], rows=[["x", 1.5], ["y", float("inf")]])
    result.tables["numbers"] = table
    return result


def test_render_contains_everything():
    text = render_result(make_result())
    assert "demo: Demo experiment" in text
    assert "a note" in text
    assert "panel one" in text
    assert "SRW" in text and "WE" in text
    assert "budget" in text and "error" in text
    assert "numbers" in text


def test_render_marks_missing_points():
    # WE has no point at x=200; the grid shows '-' there.
    text = render_result(make_result())
    row_200 = next(line for line in text.splitlines() if line.strip().startswith("200"))
    assert "-" in row_200


def test_render_table_formats_special_floats():
    table = TableData(
        columns=["name", "value"],
        rows=[["inf", float("inf")], ["nan", float("nan")], ["tiny", 1e-7]],
    )
    text = render_table(table)
    assert "inf" in text
    assert "nan" in text
    assert "e-07" in text


def test_csv_roundtrip():
    csv_text = result_to_csv(make_result())
    rows = list(csv.reader(io.StringIO(csv_text)))
    header = rows[0]
    assert header == ["experiment", "panel", "series", "budget", "error"]
    data_rows = [
        r for r in rows[1:] if len(r) == 5 and r[0] == "demo" and r[1] == "panel one"
    ]
    assert len(data_rows) == 3  # 2 SRW points + 1 WE point
    # Table rows come after a blank separator.
    assert any(r[:2] == ["demo", "numbers"] for r in rows if len(r) >= 2)
