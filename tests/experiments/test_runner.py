"""Experiment harness: curve builders, result records."""

import pytest

from repro.datasets.synthetic import ba_synthetic
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentResult,
    SamplerSpec,
    Series,
    collect_samples,
    error_vs_cost,
    error_vs_samples,
    pick_starts,
)
from repro.walks.samplers import BurnInSampler
from repro.walks.transitions import SimpleRandomWalk


@pytest.fixture(scope="module")
def dataset():
    return ba_synthetic(nodes=250, m=4, seed=20)


@pytest.fixture
def spec():
    return SamplerSpec(
        "SRW",
        lambda: BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=120),
    )


def test_series_add():
    series = Series(label="x")
    series.add(1, 0.5)
    series.add(2, 0.25)
    assert series.x == [1.0, 2.0]
    assert series.y == [0.5, 0.25]


def test_experiment_result_panel_creation():
    result = ExperimentResult("id", "title", "x", "y")
    panel = result.panel("p")
    panel.append(Series(label="s"))
    assert result.panels["p"][0].label == "s"
    assert result.panel("p") is panel


def test_pick_starts_deterministic(dataset):
    a = pick_starts(dataset, 5, seed=1)
    b = pick_starts(dataset, 5, seed=1)
    assert a == b
    assert all(dataset.graph.has_node(s) for s in a)


def test_error_vs_cost_shape(dataset, spec):
    series = error_vs_cost(
        dataset, [spec], "degree", budgets=[60, 120], repetitions=2, seed=3
    )
    assert len(series) == 1
    assert series[0].x == [60.0, 120.0]
    assert all(e >= 0 for e in series[0].y)


def test_error_vs_cost_unknown_attribute(dataset, spec):
    with pytest.raises(ExperimentError):
        error_vs_cost(dataset, [spec], "nope", [50], 1, seed=1)
    with pytest.raises(ExperimentError):
        error_vs_cost(dataset, [spec], "degree", [50], 0, seed=1)


def test_error_vs_samples_checkpoints(dataset, spec):
    series = error_vs_samples(
        dataset, [spec], "degree", checkpoints=[5, 10], repetitions=2, seed=4
    )
    assert series[0].x == [5.0, 10.0]
    with pytest.raises(ExperimentError):
        error_vs_samples(dataset, [spec], "degree", [], 1, seed=1)


def test_collect_samples_gathers_total(dataset, spec):
    nodes = collect_samples(dataset, spec, total=25, per_run=10, seed=5, start=0)
    assert len(nodes) == 25
    assert all(dataset.graph.has_node(n) for n in nodes)
    with pytest.raises(ExperimentError):
        collect_samples(dataset, spec, total=0, per_run=10, seed=5)


def test_tiny_budget_counts_as_worst_case_error(dataset, spec):
    # Budget too small for even one sample -> error pinned at 1.0.
    series = error_vs_cost(
        dataset, [spec], "degree", budgets=[2], repetitions=2, seed=6
    )
    assert series[0].y[0] == 1.0
