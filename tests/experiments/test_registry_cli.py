"""Experiment registry and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment


def test_registry_covers_every_paper_artifact():
    figures = {f"figure{i}" for i in (1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12)}
    assert figures <= set(EXPERIMENTS)
    assert "table1" in EXPERIMENTS
    extras = {"backward_variance", "restrictions", "long_run", "scale_factor"}
    assert extras <= set(EXPERIMENTS)


def test_get_experiment_unknown_id():
    with pytest.raises(ExperimentError):
        get_experiment("figure99")


def test_run_experiment_cheap_figure():
    result = run_experiment("figure1", scale="quick", seed=11)
    assert result.experiment_id == "figure1"
    (series_list,) = result.panels.values()
    assert {s.label for s in series_list} == {"Max Prob", "Min Prob"}
    max_series = next(s for s in series_list if s.label == "Max Prob")
    # The motivating observation: max probability collapses early.
    assert max_series.y[0] > max_series.y[-1]


def test_run_experiment_rejects_bad_scale():
    with pytest.raises(ExperimentError):
        run_experiment("figure1", scale="huge")


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure6" in out
    assert "table1" in out


def test_cli_run_writes_csv(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    code = main(["run", "figure1", "--seed", "5", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "figure1" in out
    content = csv_path.read_text(encoding="utf-8")
    assert "Max Prob" in content


def test_cli_datasets_command(capsys):
    assert main(["datasets", "--name", "exact_bias", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "exact_bias" in out
    assert "power-law alpha" in out
    assert "AVG degree" in out


def test_cli_version_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["run", "figure2"])
    assert args.scale == "quick"
    assert args.seed is None
    assert args.csv is None
