"""Smoke runs of every experiment (the heavy ones via the "smoke" scale).

These assert structural invariants of each experiment's output — the right
panels, series labels, and basic sanity of the numbers — on workloads small
enough for the unit-test suite.  The cheap experiments run at their normal
"quick" scale; the surrogate campaigns (Figures 6–12, Table 1) run at the
dedicated unit-test tier ``scale="smoke"``, which drives every phase of
the real code path on tiny datasets.  Full-size quick/full runs live in
``benchmarks/``.
"""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.tables import table1
from repro.experiments.extras import backward_variance, long_run


def test_figure2_panels_and_models():
    result = figure2(scale="quick", seed=1)
    (series_list,) = result.panels.values()
    labels = {s.label for s in series_list}
    assert labels == {"barbell", "cycle", "hypercube", "tree", "barabasi"}
    barabasi = next(s for s in series_list if s.label == "barabasi")
    finite = [y for y in barabasi.y if y != float("inf")]
    assert finite, "BA curve must have finite cost points"


def test_figure3_savings_in_percent():
    result = figure3(scale="quick", seed=1)
    (series_list,) = result.panels.values()
    for series in series_list:
        assert all(y <= 100.0 for y in series.y)
    barbell = next(s for s in series_list if s.label == "barbell")
    assert barbell.y == sorted(barbell.y)  # rises with size


def test_figure5_we_cost_grows_with_diameter():
    result = figure5(scale="quick", seed=2)
    (series_list,) = result.panels.values()
    we = next(s for s in series_list if s.label == "WE")
    srw = next(s for s in series_list if s.label == "SRW")
    # WE's cost at the largest diameter dwarfs its smallest-diameter cost;
    # the monitored SRW stays flat (the convergence-monitor blind spot).
    assert we.y[-1] > 2 * we.y[0]
    assert max(srw.y) < 2 * min(srw.y) + 1e-9


def test_figure1_minimum_positive_after_diameter():
    result = figure1(scale="quick", seed=31)
    (series_list,) = result.panels.values()
    min_series = next(s for s in series_list if s.label == "Min Prob")
    # Early walk: zero minimum (unreached nodes); later: positive.
    assert min_series.y[0] == 0.0
    assert min_series.y[-1] > 0.0


def test_backward_variance_table_rows():
    result = backward_variance(scale="quick", seed=3)
    (table,) = result.tables.values()
    assert len(table.rows) == 4
    by_name = {row[0]: row for row in table.rows}
    plain_std = by_name["UNBIASED-ESTIMATE"][2]
    crawl_std = by_name["crawl-assisted"][2]
    # Heuristic #1 must visibly shrink the spread.
    assert crawl_std < plain_std


def test_long_run_table_shows_ess_collapse():
    result = long_run(scale="quick", seed=4)
    (table,) = result.tables.values()
    by_name = {row[0]: row for row in table.rows}
    short_ess = by_name["many short runs"][2]
    long_ess = by_name["one long run"][2]
    assert long_ess < short_ess  # correlated samples are worth less
    # One long run amortizes burn-in: far cheaper in queries.
    assert by_name["one long run"][4] < by_name["many short runs"][4]


def test_crawl_baselines_walks_beat_crawls():
    from repro.experiments.extras import crawl_baselines

    result = crawl_baselines(scale="quick", seed=5)
    (table,) = result.tables.values()
    errors = {row[0]: row[1] for row in table.rows}
    crawl_best = min(errors["BFS"], errors["DFS"], errors["snowball(3)"])
    walk_best = min(errors["SRW burn-in"], errors["WE"])
    assert walk_best < crawl_best


def test_scale_validation_rejects_unknown():
    with pytest.raises(ExperimentError, match="scale"):
        figure6(scale="gigantic")


def _assert_error_series(result, panel_count, labels):
    assert len(result.panels) == panel_count
    for series_list in result.panels.values():
        assert {s.label for s in series_list} == labels
        for series in series_list:
            assert series.y, "series must carry at least one point"
            for y in series.y:
                assert math.isfinite(y) and y >= 0.0


def test_figure6_smoke_panels():
    result = figure6(scale="smoke", seed=6)
    assert len(result.panels) == 4
    for panel, series_list in result.panels.items():
        design = "SRW" if "(SRW)" in panel else "MHRW"
        assert {s.label for s in series_list} == {design, "WE"}


def test_figure7_smoke_panels():
    result = figure7(scale="smoke", seed=7)
    _assert_error_series(result, 4, {"SRW", "WE"})


def test_figure8_smoke_panels():
    result = figure8(scale="smoke", seed=8)
    _assert_error_series(result, 4, {"SRW", "WE"})


def test_figure9_smoke_has_all_four_variants():
    result = figure9(scale="smoke", seed=9)
    _assert_error_series(result, 1, {"WE-None", "WE-Crawl", "WE-Weighted", "WE"})


def test_figure10_smoke_checkpoints():
    result = figure10(scale="smoke", seed=10)
    assert len(result.panels) == 4
    for series_list in result.panels.values():
        for series in series_list:
            assert set(series.x) <= {5, 10}


def test_figure11_smoke_two_views_per_size():
    result = figure11(scale="smoke", seed=11)
    assert set(result.panels) == {
        "(a) relative error vs query cost",
        "(b) relative error vs number of samples",
    }
    cost_labels = {s.label for s in result.panels["(a) relative error vs query cost"]}
    assert cost_labels == {"SRW-300", "WE-300", "SRW-500", "WE-500"}


def test_figure12_smoke_distributions_and_table():
    result = figure12(scale="smoke", seed=12)
    pdf_panel = result.panels["PDF (binned)"]
    labels = {s.label for s in pdf_panel}
    assert labels == {"Theo", "SRW", "WE"}
    for series in pdf_panel:
        assert sum(series.y) == pytest.approx(1.0, abs=1e-6)
    cdf_panel = result.panels["CDF (at bin right edges)"]
    for series in cdf_panel:
        assert series.y[-1] == pytest.approx(1.0, abs=1e-6)
        assert series.y == sorted(series.y)
    (table,) = result.tables.values()
    assert [row[0] for row in table.rows] == ["l_inf", "KL"]
    for row in table.rows:
        assert row[1] >= 0.0 and row[2] >= 0.0


def test_table1_carries_table_only():
    result = table1(scale="smoke", seed=12)
    assert not result.panels
    (table,) = result.tables.values()
    assert table.columns == [
        "distance_measure",
        "Dist(Theo, SRW)",
        "Dist(Theo, WE)",
    ]
    assert [row[0] for row in table.rows] == ["l_inf", "KL"]


def test_we_long_run_matches_target_law():
    from repro.experiments.extras import we_long_run

    result = we_long_run(scale="quick", seed=6)
    (table,) = result.tables.values()
    rows = {row[0]: row for row in table.rows}
    # All three schemes stay in the small-bias regime; the corrected long
    # run is not worse than the classical one.
    for label, row in rows.items():
        assert row[1] < 0.05, label  # l_inf
    assert (
        rows["WE one long run"][1] <= rows["one long run (classical)"][1] + 0.01
    )
