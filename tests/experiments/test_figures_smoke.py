"""Smoke runs of the cheap experiments (the heavy ones run as benchmarks).

These assert structural invariants of each experiment's output — the right
panels, series labels, and basic sanity of the numbers — on workloads small
enough for the unit-test suite.  Full-size quick/full runs live in
``benchmarks/``.
"""

from repro.experiments.figures import figure1, figure2, figure3, figure5
from repro.experiments.extras import backward_variance, long_run


def test_figure2_panels_and_models():
    result = figure2(scale="quick", seed=1)
    (series_list,) = result.panels.values()
    labels = {s.label for s in series_list}
    assert labels == {"barbell", "cycle", "hypercube", "tree", "barabasi"}
    barabasi = next(s for s in series_list if s.label == "barabasi")
    finite = [y for y in barabasi.y if y != float("inf")]
    assert finite, "BA curve must have finite cost points"


def test_figure3_savings_in_percent():
    result = figure3(scale="quick", seed=1)
    (series_list,) = result.panels.values()
    for series in series_list:
        assert all(y <= 100.0 for y in series.y)
    barbell = next(s for s in series_list if s.label == "barbell")
    assert barbell.y == sorted(barbell.y)  # rises with size


def test_figure5_we_cost_grows_with_diameter():
    result = figure5(scale="quick", seed=2)
    (series_list,) = result.panels.values()
    we = next(s for s in series_list if s.label == "WE")
    srw = next(s for s in series_list if s.label == "SRW")
    # WE's cost at the largest diameter dwarfs its smallest-diameter cost;
    # the monitored SRW stays flat (the convergence-monitor blind spot).
    assert we.y[-1] > 2 * we.y[0]
    assert max(srw.y) < 2 * min(srw.y) + 1e-9


def test_figure1_minimum_positive_after_diameter():
    result = figure1(scale="quick", seed=31)
    (series_list,) = result.panels.values()
    min_series = next(s for s in series_list if s.label == "Min Prob")
    # Early walk: zero minimum (unreached nodes); later: positive.
    assert min_series.y[0] == 0.0
    assert min_series.y[-1] > 0.0


def test_backward_variance_table_rows():
    result = backward_variance(scale="quick", seed=3)
    (table,) = result.tables.values()
    assert len(table.rows) == 4
    by_name = {row[0]: row for row in table.rows}
    plain_std = by_name["UNBIASED-ESTIMATE"][2]
    crawl_std = by_name["crawl-assisted"][2]
    # Heuristic #1 must visibly shrink the spread.
    assert crawl_std < plain_std


def test_long_run_table_shows_ess_collapse():
    result = long_run(scale="quick", seed=4)
    (table,) = result.tables.values()
    by_name = {row[0]: row for row in table.rows}
    short_ess = by_name["many short runs"][2]
    long_ess = by_name["one long run"][2]
    assert long_ess < short_ess  # correlated samples are worth less
    # One long run amortizes burn-in: far cheaper in queries.
    assert by_name["one long run"][4] < by_name["many short runs"][4]


def test_crawl_baselines_walks_beat_crawls():
    from repro.experiments.extras import crawl_baselines

    result = crawl_baselines(scale="quick", seed=5)
    (table,) = result.tables.values()
    errors = {row[0]: row[1] for row in table.rows}
    crawl_best = min(errors["BFS"], errors["DFS"], errors["snowball(3)"])
    walk_best = min(errors["SRW burn-in"], errors["WE"])
    assert walk_best < crawl_best


def test_we_long_run_matches_target_law():
    from repro.experiments.extras import we_long_run

    result = we_long_run(scale="quick", seed=6)
    (table,) = result.tables.values()
    rows = {row[0]: row for row in table.rows}
    # All three schemes stay in the small-bias regime; the corrected long
    # run is not worse than the classical one.
    for label, row in rows.items():
        assert row[1] < 0.05, label  # l_inf
    assert (
        rows["WE one long run"][1] <= rows["one long run (classical)"][1] + 0.01
    )
