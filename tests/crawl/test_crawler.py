"""AsyncCrawler: serial parity, determinism, backpressure, and budget raises."""

import numpy as np
import pytest

from repro.core.crawl import InitialCrawl
from repro.crawl import AsyncCrawler, FakeClock
from repro.errors import (
    ConfigurationError,
    NodeNotFoundError,
    QueryBudgetExceededError,
)
from repro.graphs.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.osn.ratelimit import TokenBucketRateLimiter
from repro.walks.transitions import SimpleRandomWalk


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(90, 3, seed=23).relabeled()


def serial_crawl_api(graph, hops, budget=None, limiter=None):
    """The reference: InitialCrawl's layered batch BFS on a fresh API."""
    api = SocialNetworkAPI(graph, budget=budget, rate_limiter=limiter)
    InitialCrawl(api, SimpleRandomWalk(), 0, hops=hops)
    return api


class TestSerialParity:
    """Satellite pin: concurrency=1, zero latency == the serial batch BFS."""

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 64])
    def test_counter_state_and_row_order_match_serial(self, hidden, batch_size):
        serial = serial_crawl_api(hidden, hops=2)
        api = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(
            api, 0, concurrency=1, batch_size=batch_size, max_depth=2
        )
        crawler.crawl()
        assert api.counter.state() == serial.counter.state()
        assert list(api.discovered._rows) == list(serial.discovered._rows)
        assert api.discovered.fetched_count == serial.discovered.fetched_count
        assert api.discovered.membership_size == serial.discovered.membership_size

    def test_crawled_set_matches_initial_crawl_hops(self, hidden):
        serial_api = SocialNetworkAPI(hidden)
        crawl = InitialCrawl(serial_api, SimpleRandomWalk(), 0, hops=1)
        api = SocialNetworkAPI(hidden)
        AsyncCrawler(api, 0, concurrency=1, batch_size=16, max_depth=1).crawl()
        assert set(api.discovered._rows) == set(crawl.crawled_nodes)

    def test_budget_raise_parity(self, hidden):
        with pytest.raises(QueryBudgetExceededError):
            serial = SocialNetworkAPI(hidden, budget=QueryBudget(17))
            InitialCrawl(serial, SimpleRandomWalk(), 0, hops=3)
        api = SocialNetworkAPI(hidden, budget=QueryBudget(17))
        crawler = AsyncCrawler(api, 0, concurrency=1, batch_size=5, max_depth=3)
        with pytest.raises(QueryBudgetExceededError):
            crawler.crawl()
        # Identical charged set, raw calls, and discovered row order at
        # the moment of exhaustion.
        assert api.counter.state() == serial.counter.state()
        assert list(api.discovered._rows) == list(serial.discovered._rows)
        assert crawler.failed and crawler.finished

    def test_rate_limiter_accounting_parity(self, hidden):
        serial_limiter = TokenBucketRateLimiter(10, 100.0)
        serial = serial_crawl_api(hidden, hops=2, limiter=serial_limiter)
        limiter = TokenBucketRateLimiter(10, 100.0)
        api = SocialNetworkAPI(hidden, rate_limiter=limiter)
        AsyncCrawler(api, 0, concurrency=1, batch_size=9, max_depth=2).crawl()
        assert api.counter.state() == serial.counter.state()
        # Same invocations through the same bucket: same simulated time.
        assert limiter.clock.now == pytest.approx(serial_limiter.clock.now)

    def test_rate_wait_is_mirrored_onto_the_crawl_clock(self, hidden):
        # Serially (one slot) the crawl clock tracks the bucket's
        # simulated waits exactly.
        limiter = TokenBucketRateLimiter(5, 50.0)
        api = SocialNetworkAPI(hidden, rate_limiter=limiter)
        clock = FakeClock()
        AsyncCrawler(
            api, 0, concurrency=1, batch_size=4, max_depth=2, clock=clock
        ).crawl()
        assert limiter.clock.now > 0.0
        assert clock.now == pytest.approx(limiter.clock.now)

    def test_rate_wait_mirror_overlaps_under_concurrency(self, hidden):
        # With more slots the mirrored waits overlap: the crawl clock
        # still moves (backpressure is real) but never past the bucket's
        # serially accumulated wait.
        limiter = TokenBucketRateLimiter(5, 50.0)
        api = SocialNetworkAPI(hidden, rate_limiter=limiter)
        clock = FakeClock()
        AsyncCrawler(
            api, 0, concurrency=2, batch_size=4, max_depth=2, clock=clock
        ).crawl()
        assert 0.0 < clock.now <= limiter.clock.now


class TestFullCrawl:
    def test_unbounded_crawl_discovers_the_component(self, hidden):
        api = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(api, 0, concurrency=4, batch_size=16)
        stats = crawler.crawl()
        assert crawler.finished and not crawler.failed
        assert api.discovered.fetched_count == hidden.number_of_nodes()
        assert stats.new_rows == hidden.number_of_nodes()
        # Every row matches the hidden graph's neighbor lists.
        for node in hidden.nodes():
            assert api.discovered.neighbors(node) == hidden.neighbors(node)

    def test_concurrency_does_not_change_what_is_paid(self, hidden):
        states = []
        for concurrency in (1, 2, 5):
            api = SocialNetworkAPI(hidden)
            AsyncCrawler(
                api, 0, concurrency=concurrency, batch_size=8, latency=[1.0, 3.0, 0.5]
            ).crawl()
            states.append(api.counter.state())
        assert states[0] == states[1] == states[2]

    def test_resumable_chunks_equal_one_shot(self, hidden):
        one_shot = SocialNetworkAPI(hidden)
        AsyncCrawler(one_shot, 0, concurrency=1, batch_size=8).crawl()
        chunked = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(chunked, 0, concurrency=1, batch_size=8)
        chunks = 0
        while not crawler.finished:
            stats = crawler.crawl(max_new_rows=13)
            assert stats.new_rows <= 13
            chunks += 1
        assert chunks > 1
        assert chunked.counter.state() == one_shot.counter.state()
        assert list(chunked.discovered._rows) == list(one_shot.discovered._rows)


class TestConcurrencyAndTime:
    def test_overlap_beats_serial_on_simulated_time(self, hidden):
        def simulated(concurrency):
            api = SocialNetworkAPI(hidden)
            clock = FakeClock()
            AsyncCrawler(
                api, 0, concurrency=concurrency, batch_size=8, clock=clock, latency=1.0
            ).crawl()
            return clock.now

        serial, wide = simulated(1), simulated(4)
        assert wide < serial
        # With constant latency the speedup approaches the concurrency.
        assert wide <= serial / 2

    def test_bounded_inflight_backpressure(self, hidden):
        # With concurrency c and constant latency, batches complete in
        # waves of ≤ c: simulated duration is at least ceil(batches/c).
        api = SocialNetworkAPI(hidden)
        clock = FakeClock()
        crawler = AsyncCrawler(
            api, 0, concurrency=3, batch_size=8, clock=clock, latency=1.0
        )
        crawler.crawl()
        assert clock.now >= np.ceil(crawler.batches_issued / 3)

    def test_deterministic_interleaving_per_script(self, hidden):
        def trace(run):
            api = SocialNetworkAPI(hidden, log_queries=True)
            clock = FakeClock()
            AsyncCrawler(
                api,
                0,
                concurrency=3,
                batch_size=5,
                clock=clock,
                latency=[2.0, 0.5, 1.5, 3.0],
            ).crawl()
            return api.log.entries, clock.now, api.counter.state()

        assert trace(0) == trace(1)

    def test_different_scripts_may_reorder_but_not_recharge(self, hidden):
        def run(latency):
            api = SocialNetworkAPI(hidden, log_queries=True)
            AsyncCrawler(api, 0, concurrency=3, batch_size=5, latency=latency).crawl()
            return api.log.entries, api.counter.state()

        log_a, state_a = run([5.0, 0.1, 0.1])
        log_b, state_b = run(0.0)
        assert state_a == state_b
        assert sorted(log_a) == sorted(log_b)


class TestValidationAndFailure:
    def test_bad_parameters_rejected(self, hidden):
        api = SocialNetworkAPI(hidden)
        with pytest.raises(ConfigurationError):
            AsyncCrawler(api, 0, concurrency=0)
        with pytest.raises(ConfigurationError):
            AsyncCrawler(api, 0, batch_size=0)
        with pytest.raises(ConfigurationError):
            AsyncCrawler(api, 0, max_depth=-1)
        with pytest.raises(NodeNotFoundError):
            AsyncCrawler(api, 10_000)

    def test_bad_chunk_quota_rejected(self, hidden):
        crawler = AsyncCrawler(SocialNetworkAPI(hidden), 0)
        with pytest.raises(ConfigurationError):
            crawler.crawl(max_new_rows=0)

    def test_failed_crawler_refuses_more_chunks(self, hidden):
        api = SocialNetworkAPI(hidden, budget=QueryBudget(5))
        crawler = AsyncCrawler(api, 0, concurrency=2, batch_size=4)
        with pytest.raises(QueryBudgetExceededError):
            crawler.crawl()
        with pytest.raises(ConfigurationError, match="failed"):
            crawler.crawl()

    def test_budget_exhaustion_under_concurrency_charges_at_most_budget(self, hidden):
        api = SocialNetworkAPI(hidden, budget=QueryBudget(23))
        crawler = AsyncCrawler(
            api, 0, concurrency=4, batch_size=6, latency=[1.0, 2.0, 0.5]
        )
        with pytest.raises(QueryBudgetExceededError):
            crawler.crawl()
        assert api.query_cost <= 23
        # Everything that settled is genuinely cached.
        assert api.discovered.fetched_count <= 23

    def test_disconnected_start_finishes_small(self):
        ws = watts_strogatz_graph(30, 4, 0.0, seed=3).relabeled()
        ws.add_node(999)
        api = SocialNetworkAPI(ws)
        crawler = AsyncCrawler(api, 999, concurrency=2)
        stats = crawler.crawl()
        assert stats.new_rows == 1
        assert crawler.finished


class TestExternalCancellation:
    def test_cancellation_does_not_poison_and_resumes_completely(self, hidden):
        import asyncio

        from repro.crawl.clock import drive

        api = SocialNetworkAPI(hidden)
        clock = FakeClock()
        crawler = AsyncCrawler(
            api, 0, concurrency=2, batch_size=4, clock=clock, latency=1.0
        )

        async def interrupt():
            chunk = asyncio.ensure_future(crawler.crawl_chunk())
            # Let a couple of waves land, then cancel mid-flight.
            await clock.sleep(2.5)
            chunk.cancel()
            await asyncio.gather(chunk, return_exceptions=True)
            assert chunk.cancelled()

        drive(clock, interrupt())
        assert not crawler.failed and not crawler.finished
        assert 0 < api.discovered.fetched_count < hidden.number_of_nodes()
        # The interrupted campaign resumes and completes: in-flight
        # batches went back onto the frontier, nothing was lost.
        crawler.crawl()
        assert crawler.finished
        assert api.discovered.fetched_count == hidden.number_of_nodes()
