"""FakeClock and the deterministic event-loop driver."""

import asyncio

import pytest

from repro.crawl.clock import FakeClock, drive, resolve_latency
from repro.errors import ConfigurationError


class TestFakeClock:
    def test_time_starts_where_told(self):
        assert FakeClock().now == 0.0
        assert FakeClock(start=7.5).now == 7.5

    def test_sleep_wakes_at_deadline(self):
        clock = FakeClock()

        async def nap():
            await clock.sleep(3.0)
            return clock.now

        assert drive(clock, nap()) == 3.0

    def test_negative_sleep_rejected(self):
        clock = FakeClock()
        with pytest.raises(ConfigurationError, match="negative"):
            drive(clock, clock.sleep(-1.0))

    def test_zero_sleep_yields_without_advancing(self):
        clock = FakeClock()

        async def nap():
            await clock.sleep(0)
            return clock.now

        assert drive(clock, nap()) == 0.0

    def test_sequential_sleeps_accumulate(self):
        clock = FakeClock()

        async def naps():
            for _ in range(4):
                await clock.sleep(0.5)
            return clock.now

        assert drive(clock, naps()) == pytest.approx(2.0)

    def test_concurrent_sleepers_wake_in_deadline_order(self):
        clock = FakeClock()
        wake_order = []

        async def sleeper(name, delay):
            await clock.sleep(delay)
            wake_order.append((name, clock.now))

        async def main():
            await asyncio.gather(
                sleeper("slow", 5.0), sleeper("fast", 1.0), sleeper("mid", 3.0)
            )

        drive(clock, main())
        assert wake_order == [("fast", 1.0), ("mid", 3.0), ("slow", 5.0)]
        assert clock.now == 5.0

    def test_simultaneous_deadlines_wake_in_registration_order(self):
        clock = FakeClock()
        wake_order = []

        async def sleeper(name):
            await clock.sleep(2.0)
            wake_order.append(name)

        async def main():
            await asyncio.gather(*(sleeper(i) for i in range(5)))

        drive(clock, main())
        assert wake_order == list(range(5))

    def test_overlapping_sleeps_share_elapsed_time(self):
        # Two 10-second sleeps in parallel cost 10 seconds, not 20 — the
        # whole point of overlapping fetches.
        clock = FakeClock()

        async def main():
            await asyncio.gather(clock.sleep(10.0), clock.sleep(10.0))
            return clock.now

        assert drive(clock, main()) == 10.0

    def test_pending_timers_counts_live_sleepers(self):
        clock = FakeClock()
        seen = []

        async def main():
            task = asyncio.ensure_future(clock.sleep(1.0))
            await asyncio.sleep(0)
            seen.append(clock.pending_timers)
            await task
            seen.append(clock.pending_timers)

        drive(clock, main())
        assert seen == [1, 0]

    def test_advance_without_timers_returns_false(self):
        clock = FakeClock()
        assert not clock.advance()
        assert clock.now == 0.0


class TestDrive:
    def test_returns_coroutine_result(self):
        async def forty_two():
            return 42

        assert drive(FakeClock(), forty_two()) == 42

    def test_propagates_exceptions(self):
        async def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            drive(FakeClock(), boom())

    def test_deadlock_detected(self):
        # A task awaiting a future nobody will resolve, with no pending
        # timer: the driver must refuse to spin forever.
        async def stuck():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(ConfigurationError, match="deadlock"):
            drive(FakeClock(), stuck())

    def test_queue_handoff_between_tasks(self):
        # Producer/consumer through an asyncio.Queue with scripted
        # latency: the exact machinery the crawler is built on.
        clock = FakeClock()

        async def main():
            queue = asyncio.Queue()

            async def producer():
                for i in range(3):
                    await clock.sleep(1.0)
                    await queue.put(i)

            async def consumer():
                got = []
                for _ in range(3):
                    got.append(await queue.get())
                return got

            _, got = await asyncio.gather(producer(), consumer())
            return got

        assert drive(clock, main()) == [0, 1, 2]
        assert clock.now == 3.0

    def test_replays_identically(self):
        def once():
            clock = FakeClock()
            trace = []

            async def worker(name, delays):
                for d in delays:
                    await clock.sleep(d)
                    trace.append((name, clock.now))

            async def main():
                await asyncio.gather(
                    worker("a", [1.0, 2.0]), worker("b", [1.5, 1.5]), worker("c", [3.0])
                )

            drive(clock, main())
            return trace

        assert once() == once()


class TestResolveLatency:
    def test_none_is_zero(self):
        assert resolve_latency(None)(0, [1, 2]) == 0.0

    def test_constant(self):
        fn = resolve_latency(2.5)
        assert fn(0, []) == 2.5
        assert fn(99, [1]) == 2.5

    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_latency(-1.0)

    def test_script_cycles_by_batch_index(self):
        fn = resolve_latency([1.0, 2.0, 3.0])
        assert [fn(i, []) for i in range(5)] == [1.0, 2.0, 3.0, 1.0, 2.0]

    def test_empty_script_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            resolve_latency([])

    def test_negative_script_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_latency([1.0, -0.5])

    def test_callable_passed_through(self):
        fn = resolve_latency(lambda index, nodes: index * 0.1)
        assert fn(3, []) == pytest.approx(0.3)
