"""CrawlWalkPipeline end-to-end: epochs, convergence, determinism, hygiene."""

import numpy as np
import pytest

from repro.core.config import CrawlPipelineConfig
from repro.crawl import CrawlWalkPipeline, FakeClock
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.shm import _LIVE_SEGMENTS
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import MetropolisHastingsWalk

LATENCY_SCRIPT = [1.0, 0.25, 0.5, 2.0, 0.75]


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(150, 3, seed=31).relabeled()


def build(hidden, concurrency, seed=42, budget=None, **overrides):
    config = CrawlPipelineConfig(
        concurrency=concurrency,
        batch_size=8,
        rows_per_epoch=40,
        walks_per_epoch=64,
        steps_per_walk=40,
        **overrides,
    )
    api = SocialNetworkAPI(hidden, budget=budget)
    return CrawlWalkPipeline(
        api,
        0,
        config=config,
        n_workers=1,
        mp_context="fork",
        latency=LATENCY_SCRIPT,
        seed=seed,
    )


class TestEndToEnd:
    def test_three_plus_epochs_converging_to_full_graph_value(self, hidden):
        true_value = 2 * hidden.number_of_edges() / hidden.number_of_nodes()
        with build(hidden, concurrency=4) as pipeline:
            result = pipeline.run()
        # The acceptance pin: at least 3 crawl→compact→walk epochs...
        assert len(result.epochs) >= 3
        assert not result.budget_exhausted
        # ...covering the whole graph by the end...
        assert result.epochs[-1].fetched_nodes == hidden.number_of_nodes()
        assert result.epochs[-1].walk_nodes == hidden.number_of_nodes()
        # ...with the estimate refining toward the full-graph value.
        errors = np.abs(result.estimates - true_value)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.12 * true_value
        # Coverage and query cost are monotone across epochs.
        fetched = [r.fetched_nodes for r in result.epochs]
        assert fetched == sorted(fetched)
        costs = [r.query_cost for r in result.epochs]
        assert costs == sorted(costs)
        # Walks were free: the campaign paid exactly the crawled rows.
        assert result.query_cost == hidden.number_of_nodes()

    def test_deterministic_per_seed(self, hidden):
        def once():
            with build(hidden, concurrency=4, seed=7) as pipeline:
                result = pipeline.run()
            return (
                [r.estimate for r in result.epochs],
                [r.clock_seconds for r in result.epochs],
                [r.fetched_nodes for r in result.epochs],
            )

        assert once() == once()

    def test_seed_changes_walks_not_coverage(self, hidden):
        with build(hidden, concurrency=4, seed=1) as pipeline:
            a = pipeline.run()
        with build(hidden, concurrency=4, seed=2) as pipeline:
            b = pipeline.run()
        assert [r.fetched_nodes for r in a.epochs] == [
            r.fetched_nodes for r in b.epochs
        ]
        assert a.estimates.tolist() != b.estimates.tolist()

    def test_concurrency_beats_serial_wall_clock(self, hidden):
        # The paper's point, measured on the simulated clock: the same
        # crawl at concurrency 4 finishes in less simulated time than the
        # serial (concurrency 1) crawl-then-walk, with identical coverage
        # and identical query cost.
        with build(hidden, concurrency=1) as serial:
            serial_result = serial.run()
        with build(hidden, concurrency=4) as wide:
            wide_result = wide.run()
        assert wide_result.simulated_seconds < serial_result.simulated_seconds
        assert (
            wide_result.epochs[-1].fetched_nodes
            == serial_result.epochs[-1].fetched_nodes
        )
        assert wide_result.query_cost == serial_result.query_cost

    def test_mhrw_design_round_trips(self, hidden):
        true_value = 2 * hidden.number_of_edges() / hidden.number_of_nodes()
        api = SocialNetworkAPI(hidden)
        config = CrawlPipelineConfig(
            concurrency=4,
            batch_size=8,
            rows_per_epoch=60,
            walks_per_epoch=64,
            steps_per_walk=40,
        )
        with CrawlWalkPipeline(
            api,
            0,
            design=MetropolisHastingsWalk(),
            config=config,
            n_workers=1,
            mp_context="fork",
            seed=5,
        ) as pipeline:
            result = pipeline.run()
        # MHRW targets uniform, and f is the true degree: the estimate is
        # a plain mean over visits — still a consistent average-degree
        # estimator on the full graph.
        assert np.isfinite(result.final_estimate)
        assert abs(result.final_estimate - true_value) < 0.35 * true_value


class TestBudgetAndEdges:
    def test_budget_exhaustion_ends_cleanly_with_partial_estimates(self, hidden):
        with build(hidden, concurrency=4, budget=QueryBudget(60)) as pipeline:
            result = pipeline.run()
            # Nothing new after exhaustion: the run is over.
            assert pipeline.run_epoch() is None
        assert result.budget_exhausted
        assert len(result.epochs) >= 1
        assert result.query_cost <= 60
        assert result.epochs[-1].fetched_nodes <= 60
        assert np.isfinite(result.final_estimate)

    def test_max_epochs_caps_the_run(self, hidden):
        with build(hidden, concurrency=4) as pipeline:
            result = pipeline.run(max_epochs=2)
        assert len(result.epochs) == 2
        assert result.epochs[-1].fetched_nodes < hidden.number_of_nodes()

    def test_epochs_resume_after_cap(self, hidden):
        with build(hidden, concurrency=4) as pipeline:
            pipeline.run(max_epochs=1)
            result = pipeline.run()
        assert result.epochs[-1].fetched_nodes == hidden.number_of_nodes()

    def test_closed_pipeline_refuses(self, hidden):
        pipeline = build(hidden, concurrency=2)
        pipeline.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pipeline.run_epoch()
        pipeline.close()  # idempotent

    def test_bad_max_epochs_rejected(self, hidden):
        with build(hidden, concurrency=2) as pipeline:
            with pytest.raises(ConfigurationError):
                pipeline.run(max_epochs=0)

    def test_custom_attribute_estimand(self, hidden):
        # Estimate the mean of (node id mod 5) — any per-node function of
        # discovered data plugs in.
        values = {n: float(n % 5) for n in hidden.nodes()}
        truth = float(np.mean([v for v in values.values()]))
        api = SocialNetworkAPI(hidden)
        config = CrawlPipelineConfig(
            concurrency=4,
            batch_size=8,
            rows_per_epoch=80,
            walks_per_epoch=96,
            steps_per_walk=50,
        )
        with CrawlWalkPipeline(
            api,
            0,
            config=config,
            n_workers=1,
            mp_context="fork",
            attribute=lambda nodes: np.array([values[int(n)] for n in nodes]),
            seed=3,
        ) as pipeline:
            result = pipeline.run()
        assert abs(result.final_estimate - truth) < 0.35 * truth

    def test_empty_result_properties(self):
        from repro.crawl import PipelineResult

        empty = PipelineResult(epochs=[], budget_exhausted=False)
        assert np.isnan(empty.final_estimate)
        assert empty.query_cost == 0
        assert empty.simulated_seconds == 0.0

    def test_shared_clock_reads_total_campaign_time(self, hidden):
        clock = FakeClock()
        api = SocialNetworkAPI(hidden)
        config = CrawlPipelineConfig(
            concurrency=4,
            batch_size=8,
            rows_per_epoch=50,
            walks_per_epoch=8,
            steps_per_walk=5,
        )
        with CrawlWalkPipeline(
            api,
            0,
            config=config,
            n_workers=1,
            mp_context="fork",
            clock=clock,
            latency=1.0,
            seed=1,
        ) as pipeline:
            result = pipeline.run()
        assert clock.now == result.simulated_seconds > 0.0


class TestHygiene:
    def test_no_dev_shm_segments_leak(self, hidden):
        live_before = set(_LIVE_SEGMENTS)
        with build(hidden, concurrency=4) as pipeline:
            pipeline.run()
            # Mid-run there is exactly one live published segment.
            assert len(set(_LIVE_SEGMENTS) - live_before) == 1
        assert set(_LIVE_SEGMENTS) == live_before

    def test_no_segments_leak_on_budget_exhaustion(self, hidden):
        live_before = set(_LIVE_SEGMENTS)
        with build(hidden, concurrency=4, budget=QueryBudget(45)) as pipeline:
            pipeline.run()
        assert set(_LIVE_SEGMENTS) == live_before


class TestSmallSurfaces:
    def test_unwalkable_first_epoch_yields_nan_then_recovers(self, hidden):
        # rows_per_epoch=1: epoch 1 publishes only the start node (its
        # neighbors are frontier, not fetched), so the induced graph has
        # no edges and the round is skipped with a NaN estimate; later
        # epochs walk normally.
        api = SocialNetworkAPI(hidden)
        config = CrawlPipelineConfig(
            concurrency=1,
            batch_size=1,
            rows_per_epoch=1,
            walks_per_epoch=8,
            steps_per_walk=5,
        )
        with CrawlWalkPipeline(
            api, 0, config=config, n_workers=1, mp_context="fork", seed=4
        ) as pipeline:
            first = pipeline.run_epoch()
            assert np.isnan(first.estimate)
            assert first.walk_nodes == 1 and first.walk_edges == 0
            for _ in range(30):
                record = pipeline.run_epoch()
            assert np.isfinite(record.estimate)

    def test_reprs_and_properties(self, hidden):
        from repro.crawl import AsyncCrawler, TopologyPublisher

        api = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(api, 0, concurrency=2)
        assert crawler.discovered is api.discovered
        assert crawler.frontier_size == 1
        assert "AsyncCrawler" in repr(crawler)
        publisher = TopologyPublisher(api.discovered)
        assert "TopologyPublisher" in repr(publisher)
        crawler.crawl(max_new_rows=5)
        topology = publisher.publish()
        assert "PublishedTopology" in repr(topology)
        assert topology.leases == 0
        with publisher.acquire() as lease:
            assert "epoch=1" in repr(lease)
            assert lease.epoch == publisher.current_epoch == 1
        assert "released" in repr(lease)
        publisher.close()
        assert publisher.closed
        assert "closed" in repr(publisher)
        pipeline = build(hidden, concurrency=2)
        assert pipeline.engine is None
        assert "CrawlWalkPipeline" in repr(pipeline)
        pipeline.close()

    def test_clock_repr(self):
        assert "FakeClock" in repr(FakeClock())


class TestBudgetEpochAccounting:
    def test_exhausted_epoch_reports_settled_rows_and_time(self, hidden):
        # The epoch that hits the budget must report what actually
        # settled before the raise — rows and simulated seconds — not an
        # empty crawl (fetched_nodes and new_rows stay consistent).
        with build(hidden, concurrency=4, budget=QueryBudget(60)) as pipeline:
            result = pipeline.run()
        assert result.budget_exhausted
        total_new = sum(r.new_rows for r in result.epochs)
        assert total_new == result.epochs[-1].fetched_nodes
        last = result.epochs[-1]
        if last.new_rows:
            assert last.crawl_seconds > 0.0
