"""TopologyPublisher: epoch swaps, lease retirement, and segment hygiene."""

import os
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.crawl import AsyncCrawler, TopologyPublisher
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.shm import _LIVE_SEGMENTS
from repro.osn.api import SocialNetworkAPI
from repro.walks.batch import run_walk_batch
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import SimpleRandomWalk


def _dev_shm(segment: str) -> str:
    return os.path.join("/dev/shm", segment)


@pytest.fixture()
def hidden():
    return barabasi_albert_graph(70, 3, seed=9).relabeled()


@pytest.fixture()
def api(hidden):
    return SocialNetworkAPI(hidden)


def crawl_rows(api, rows):
    crawler = AsyncCrawler(api, 0, concurrency=1, batch_size=8)
    crawler.crawl(max_new_rows=rows)
    return crawler


class TestPublish:
    def test_publishes_fetched_induced_graph(self, api):
        crawl_rows(api, 20)
        with TopologyPublisher(api.discovered) as publisher:
            topology = publisher.publish()
            slab = api.discovered.compact()
            reference = slab.fetched_csr()
            assert np.array_equal(topology.graph.indptr, reference.indptr)
            assert np.array_equal(topology.graph.indices, reference.indices)
            assert np.array_equal(topology.graph.node_ids, reference.node_ids)
            assert topology.epoch == 1

    def test_fetched_only_false_publishes_member_slab(self, api):
        crawl_rows(api, 10)
        with TopologyPublisher(api.discovered, fetched_only=False) as publisher:
            topology = publisher.publish()
            assert topology.graph.number_of_nodes() == api.discovered.membership_size

    def test_growth_gate(self, api):
        crawl_rows(api, 10)
        with TopologyPublisher(api.discovered, min_new_rows=5) as publisher:
            assert publisher.publish() is not None
            # No growth since: gated.
            assert publisher.publish() is None
            # force overrides the gate.
            assert publisher.publish(force=True) is not None

    def test_acquire_before_publish_raises(self, api):
        with TopologyPublisher(api.discovered) as publisher:
            with pytest.raises(ConfigurationError, match="publish"):
                publisher.acquire()

    def test_closed_publisher_refuses(self, api):
        publisher = TopologyPublisher(api.discovered)
        publisher.close()
        with pytest.raises(ConfigurationError, match="closed"):
            publisher.publish()


class TestEpochRetirement:
    def test_unleased_epoch_retires_on_swap(self, api):
        crawler = crawl_rows(api, 15)
        publisher = TopologyPublisher(api.discovered)
        first = publisher.publish()
        segment_one = first.spec.segment
        assert os.path.exists(_dev_shm(segment_one))
        crawler.crawl(max_new_rows=15)
        second = publisher.publish()
        # Nobody held epoch 1: its segment is gone the moment 2 lands.
        assert first.retired
        assert not os.path.exists(_dev_shm(segment_one))
        assert os.path.exists(_dev_shm(second.spec.segment))
        publisher.close()
        assert not os.path.exists(_dev_shm(second.spec.segment))

    def test_leased_epoch_survives_swap_until_release(self, api):
        crawler = crawl_rows(api, 15)
        publisher = TopologyPublisher(api.discovered)
        first = publisher.publish()
        lease = publisher.acquire()
        crawler.crawl(max_new_rows=15)
        publisher.publish()
        # Epoch 1 is superseded but pinned by the lease.
        assert not first.retired
        assert os.path.exists(_dev_shm(first.spec.segment))
        lease.release()
        assert first.retired
        assert not os.path.exists(_dev_shm(first.spec.segment))
        publisher.close()

    def test_release_is_idempotent(self, api):
        crawl_rows(api, 10)
        publisher = TopologyPublisher(api.discovered)
        publisher.publish()
        lease = publisher.acquire()
        lease.release()
        lease.release()
        with pytest.raises(ConfigurationError, match="released"):
            lease.graph
        publisher.close()

    def test_close_with_open_lease_defers_unlink(self, api):
        crawl_rows(api, 10)
        publisher = TopologyPublisher(api.discovered)
        topology = publisher.publish()
        lease = publisher.acquire()
        publisher.close()
        assert os.path.exists(_dev_shm(topology.spec.segment))
        lease.release()
        assert not os.path.exists(_dev_shm(topology.spec.segment))

    def test_failed_swap_leaks_nothing_and_keeps_current(self, api, monkeypatch):
        crawler = crawl_rows(api, 15)
        publisher = TopologyPublisher(api.discovered)
        first = publisher.publish()
        live_before = set(_LIVE_SEGMENTS)
        crawler.crawl(max_new_rows=15)
        monkeypatch.setattr(
            TopologyPublisher,
            "_install",
            lambda self, topology: (_ for _ in ()).throw(RuntimeError("torn swap")),
        )
        with pytest.raises(RuntimeError, match="torn swap"):
            publisher.publish()
        monkeypatch.undo()
        # The failed epoch's slab was closed before the error escaped.
        assert set(_LIVE_SEGMENTS) == live_before
        assert publisher.current is first
        assert os.path.exists(_dev_shm(first.spec.segment))
        # The publisher still works after the failure.
        second = publisher.publish()
        assert second is not None and second.epoch == 2
        publisher.close()
        assert not os.path.exists(_dev_shm(second.spec.segment))


class TestSwapUnderRunningEngine:
    def test_pinned_round_sees_the_leased_epoch_exactly(self, api):
        crawler = crawl_rows(api, 20)
        publisher = TopologyPublisher(api.discovered)
        publisher.publish()
        lease = publisher.acquire()
        frozen = lease.graph
        # Reference trajectories over a frozen snapshot of epoch 1.
        starts = np.zeros(16, dtype=np.int64)
        reference = run_walk_batch(frozen, SimpleRandomWalk(), starts, 40, seed=7)
        with ShardedWalkEngine.from_shared(
            lease.topology.shared, n_workers=1, mp_context="fork"
        ) as engine:
            # Swap epochs *while the engine is pinned to epoch 1*.
            crawler.crawl(max_new_rows=20)
            publisher.publish()
            result = engine.run_walk_batch(SimpleRandomWalk(), starts, 40, seed=7)
            assert np.array_equal(result.paths, reference.paths)
            # Moving to the new epoch changes the topology under the
            # same pool.
            lease.release()
            with publisher.acquire() as fresh:
                engine.update_topology(fresh.topology.shared)
                grown = engine.run_walk_batch(SimpleRandomWalk(), starts, 40, seed=7)
                assert engine.graph.number_of_nodes() > frozen.number_of_nodes()
                assert grown.k == 16
        publisher.close()

    def test_concurrent_publish_during_round_is_never_torn(self, api):
        # A publisher thread swaps epochs as fast as it can while the
        # engine walks rounds pinned to one lease: every round must match
        # the single-process reference over that lease's slab.
        crawler = AsyncCrawler(api, 0, concurrency=2, batch_size=8)
        crawler.crawl(max_new_rows=25)
        publisher = TopologyPublisher(api.discovered)
        publisher.publish()
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                crawler_done = crawler.finished
                if not crawler_done:
                    crawler.crawl(max_new_rows=5)
                publisher.publish(force=True)
                if crawler_done:
                    break

        lease = publisher.acquire()
        starts = np.zeros(32, dtype=np.int64)
        thread = threading.Thread(target=churn)
        try:
            with ShardedWalkEngine.from_shared(
                lease.topology.shared, n_workers=2, mp_context="fork"
            ) as engine:
                # Reference round over the pinned epoch, before any churn.
                reference = engine.run_walk_batch(
                    SimpleRandomWalk(), starts, 30, seed=11
                )
                thread.start()
                for _ in range(5):
                    result = engine.run_walk_batch(
                        SimpleRandomWalk(), starts, 30, seed=11
                    )
                    # Deterministic per (seed, n_workers) over one slab:
                    # any divergence would mean a torn/overwritten slab.
                    assert np.array_equal(result.paths, reference.paths)
        finally:
            stop.set()
            if thread.ident is not None:
                thread.join()
        lease.release()
        publisher.close()

    def test_no_segments_leak_across_swaps(self, api):
        live_before = set(_LIVE_SEGMENTS)
        crawler = crawl_rows(api, 10)
        publisher = TopologyPublisher(api.discovered)
        publisher.publish()
        while not crawler.finished:
            crawler.crawl(max_new_rows=10)
            publisher.publish()
        publisher.close()
        assert set(_LIVE_SEGMENTS) == live_before


class TestFileSlabHygiene:
    """File-backed epochs follow the exact shm retirement discipline."""

    def _slab_files(self, slab_dir):
        return sorted(p.name for p in Path(slab_dir).iterdir())

    def test_publishes_file_epoch_and_retires_it(self, api, tmp_path):
        crawl_rows(api, 20)
        slab_dir = tmp_path / "slabs"
        publisher = TopologyPublisher(
            api.discovered, storage="file", slab_dir=slab_dir
        )
        topology = publisher.publish()
        assert topology.spec.storage == "file"
        assert os.path.exists(topology.spec.segment)
        slab = api.discovered.compact()
        assert np.array_equal(topology.graph.indices, slab.fetched_csr().indices)
        publisher.close()
        assert self._slab_files(slab_dir) == []

    def test_superseded_file_slab_unlinks_on_last_lease_release(self, api, tmp_path):
        crawler = crawl_rows(api, 15)
        slab_dir = tmp_path / "slabs"
        publisher = TopologyPublisher(
            api.discovered, storage="file", slab_dir=slab_dir
        )
        first = publisher.publish()
        lease = publisher.acquire()
        crawler.crawl(max_new_rows=15)
        second = publisher.publish()
        # Epoch 1 is superseded but pinned by the open lease.
        assert not first.retired
        assert os.path.exists(first.spec.segment)
        lease.release()
        assert first.retired
        assert not os.path.exists(first.spec.segment)
        assert os.path.exists(second.spec.segment)
        publisher.close()
        assert self._slab_files(slab_dir) == []

    def test_crash_mid_publish_leaves_no_orphan_files(self, api, tmp_path, monkeypatch):
        crawler = crawl_rows(api, 15)
        slab_dir = tmp_path / "slabs"
        publisher = TopologyPublisher(
            api.discovered, storage="file", slab_dir=slab_dir
        )
        first = publisher.publish()
        live_before = set(_LIVE_SEGMENTS)
        crawler.crawl(max_new_rows=15)
        monkeypatch.setattr(
            TopologyPublisher,
            "_install",
            lambda self, topology: (_ for _ in ()).throw(RuntimeError("torn swap")),
        )
        with pytest.raises(RuntimeError, match="torn swap"):
            publisher.publish()
        monkeypatch.undo()
        # The torn epoch's slab file is gone; no .tmp orphans either —
        # only epoch 1's slab remains in the directory.
        assert set(_LIVE_SEGMENTS) == live_before
        assert self._slab_files(slab_dir) == [Path(first.spec.segment).name]
        second = publisher.publish()
        assert second is not None and second.epoch == 2
        publisher.close()
        assert self._slab_files(slab_dir) == []

    def test_file_storage_requires_slab_dir(self, api):
        with pytest.raises(ConfigurationError, match="slab_dir"):
            TopologyPublisher(api.discovered, storage="file")
        with pytest.raises(ConfigurationError, match="storage"):
            TopologyPublisher(api.discovered, storage="tape")
