"""Regression: the service's standing lease must not leak /dev/shm segments.

:class:`~repro.service.server.SamplingService` pins the current topology
epoch with a *standing lease* between rounds (the persistent engine walks
that slab).  ``TopologyPublisher.close()`` defers the unlink of any epoch
with outstanding leases to the last release — correct for ordinary
clients, fatal for the service if it closed the publisher while still
holding its own pin: the deferred unlink would wait on a lease nobody
will ever release again, and the segment would outlive the process.

``SamplingService.close()`` therefore releases the standing lease
*before* ``publisher.close()``.  These tests pin that ordering from the
outside: after any service shutdown path, nothing the service created is
left in ``/dev/shm``.
"""

import os

import pytest

from repro.core import EngineConfig, EstimationJobSpec, WalkEstimateConfig
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.shm import _LIVE_SEGMENTS
from repro.osn.api import SocialNetworkAPI
from repro.service import SamplingService, ServiceConfig


def _dev_shm(segment: str) -> str:
    return os.path.join("/dev/shm", segment)


WALK = WalkEstimateConfig(
    walk_length=5,
    crawl_hops=0,
    backward_repetitions=3,
    refine_repetitions=0,
    calibration_walks=4,
)


@pytest.fixture()
def service():
    hidden = barabasi_albert_graph(120, 3, seed=9).relabeled()
    return SamplingService(
        SocialNetworkAPI(hidden),
        0,
        config=ServiceConfig(rows_per_epoch=25),
        latency=[0.5, 1.0, 0.25],
        seed=7,
    )


def spec(backend="batch"):
    return EstimationJobSpec(
        design="srw",
        samples=20,
        error_target=0.8,
        tenant="alice",
        walk=WALK,
        engine=EngineConfig(backend=backend),
    )


class TestStandingLeaseHygiene:
    def test_close_after_run_unlinks_everything(self, service):
        before = set(_LIVE_SEGMENTS)
        service.run([spec()])
        # Mid-flight the service still pins the live epoch with its
        # standing lease, and that epoch's segment is on disk.
        assert service._lease is not None
        created = set(_LIVE_SEGMENTS) - before
        assert created
        for segment in created:
            assert os.path.exists(_dev_shm(segment))
        service.close()
        for segment in created:
            assert not os.path.exists(_dev_shm(segment))
        assert set(_LIVE_SEGMENTS) == before

    def test_close_with_sharded_engine_attached(self, service):
        before = set(_LIVE_SEGMENTS)
        with service:
            service.run([spec(backend="sharded")])
            created = set(_LIVE_SEGMENTS) - before
            assert created
        # Engine detached, lease released, publisher closed — in order.
        assert service._engine is None
        assert service._lease is None
        for segment in created:
            assert not os.path.exists(_dev_shm(segment))
        assert set(_LIVE_SEGMENTS) == before

    def test_close_before_any_epoch_is_clean(self, service):
        before = set(_LIVE_SEGMENTS)
        service.close()
        assert set(_LIVE_SEGMENTS) == before

    def test_double_close_does_not_double_release(self, service):
        before = set(_LIVE_SEGMENTS)
        service.run([spec()])
        service.close()
        service.close()  # second close must not touch the released lease
        assert set(_LIVE_SEGMENTS) == before
