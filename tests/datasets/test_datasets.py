"""Dataset surrogates: structure, attributes, ground truth, registry."""

import pytest

from repro.datasets.attributes import (
    attach_description_lengths,
    attach_stars,
    attach_topological_attributes,
)
from repro.datasets.registry import DATASET_BUILDERS, build_dataset
from repro.datasets.surrogates import (
    google_plus_surrogate,
    twitter_surrogate,
    yelp_surrogate,
)
from repro.datasets.synthetic import ba_synthetic, exact_bias_graph
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.properties import is_connected


def test_registry_contains_all_builders():
    assert set(DATASET_BUILDERS) == {
        "google_plus",
        "yelp",
        "twitter",
        "ba_synthetic",
        "exact_bias",
    }
    with pytest.raises(ConfigurationError):
        build_dataset("facebook")


def test_google_plus_surrogate_shape():
    dataset = google_plus_surrogate(nodes=400, m=10, seed=1)
    graph = dataset.graph
    assert dataset.name == "google_plus"
    assert graph.number_of_nodes() == 400
    assert is_connected(graph)
    assert set(dataset.aggregates) == {"degree", "description_length"}
    assert dataset.aggregates["degree"] == pytest.approx(
        2 * graph.number_of_edges() / 400
    )


def test_yelp_surrogate_attributes_and_lcc():
    dataset = yelp_surrogate(nodes=300, m=4, seed=2)
    graph = dataset.graph
    assert is_connected(graph)
    assert set(dataset.aggregates) == {"degree", "stars", "avg_path", "clustering"}
    stars = graph.attribute_values("stars")
    assert all(1.0 <= v <= 5.0 for v in stars.values())
    # Yelp-style closure gives clustering well above a plain BA graph.
    assert dataset.aggregates["clustering"] > 0.02


def test_twitter_surrogate_mutual_reduction():
    dataset = twitter_surrogate(nodes=300, m=6, seed=3)
    graph = dataset.graph
    assert is_connected(graph)
    assert set(dataset.aggregates) == {
        "in_degree",
        "out_degree",
        "avg_path",
        "clustering",
    }
    # Mutual reduction only keeps reciprocated follows: the undirected
    # degree cannot exceed the out-degree + in-degree of the profile.
    for node in list(graph.nodes())[:50]:
        in_d = graph.get_attribute("in_degree", node)
        out_d = graph.get_attribute("out_degree", node)
        assert graph.degree(node) <= in_d + out_d


def test_exact_bias_graph_matches_paper_size():
    dataset = exact_bias_graph(seed=4)
    assert dataset.graph.number_of_nodes() == 1000
    assert dataset.graph.number_of_edges() == 6951  # paper's exact figure


def test_ba_synthetic_scaling():
    dataset = ba_synthetic(nodes=500, m=5, seed=5)
    assert dataset.graph.number_of_nodes() == 500
    assert "degree" in dataset.aggregates


def test_determinism_per_seed():
    a = ba_synthetic(nodes=200, m=3, seed=7)
    b = ba_synthetic(nodes=200, m=3, seed=7)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.aggregates == b.aggregates


def test_description_lengths_degree_correlated():
    graph = barabasi_albert_graph(500, 4, seed=8).relabeled()
    attach_description_lengths(graph, seed=9)
    values = graph.attribute_values("description_length")
    assert all(v >= 0 for v in values.values())
    hubs = sorted(graph.nodes(), key=graph.degree, reverse=True)[:50]
    leaves = sorted(graph.nodes(), key=graph.degree)[:50]
    hub_mean = sum(values[n] for n in hubs) / 50
    leaf_mean = sum(values[n] for n in leaves) / 50
    assert hub_mean > leaf_mean


def test_stars_rounded_to_halves():
    graph = barabasi_albert_graph(200, 3, seed=10).relabeled()
    attach_stars(graph, seed=11)
    for value in graph.attribute_values("stars").values():
        assert (value * 2) == int(value * 2)


def test_topological_attributes_match_structure():
    graph = barabasi_albert_graph(120, 3, seed=12).relabeled()
    attach_topological_attributes(graph, seed=13, with_paths=True)
    for node in list(graph.nodes())[:30]:
        assert graph.get_attribute("degree", node) == graph.degree(node)
    assert graph.attribute_mean("avg_path") > 1.0
