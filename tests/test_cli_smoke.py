"""Smoke tests for the module entry point and the CLI's edge paths."""

import runpy
import sys

import pytest

from repro import cli
from repro._version import __version__
from repro.errors import ExperimentError


def test_python_dash_m_repro_version(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["repro", "--version"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_python_dash_m_repro_list(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["repro", "list"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    assert "figure6" in capsys.readouterr().out


def test_missing_subcommand_exits_with_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main([])
    assert excinfo.value.code == 2
    assert "usage" in capsys.readouterr().err.lower()


def test_unknown_experiment_raises_experiment_error():
    with pytest.raises(ExperimentError):
        cli.main(["run", "figure99"])


def test_datasets_all_names_listed(capsys):
    assert cli.main(["datasets", "--name", "exact_bias"]) == 0
    out = capsys.readouterr().out
    assert "exact_bias" in out


def test_broken_pipe_exits_quietly(monkeypatch):
    class _Out:
        def fileno(self):
            return 1

    def explode(argv):
        raise BrokenPipeError()

    closed = []
    monkeypatch.setattr(cli, "_dispatch", explode)
    monkeypatch.setattr(cli.sys, "stdout", _Out())
    monkeypatch.setattr("os.close", lambda fd: closed.append(fd))
    assert cli.main([]) == 0
    assert closed == [1]


def test_build_parser_round_trips_run_options(tmp_path):
    parser = cli.build_parser()
    args = parser.parse_args(
        ["run", "figure1", "--scale", "quick", "--seed", "3", "--csv", "x.csv"]
    )
    assert args.command == "run"
    assert args.experiment == "figure1"
    assert args.seed == 3
    assert str(args.csv) == "x.csv"
