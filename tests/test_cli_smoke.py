"""Smoke tests for the module entry point and the CLI's edge paths."""

import runpy
import sys

import pytest

from repro import cli
from repro._version import __version__
from repro.errors import ExperimentError


def test_python_dash_m_repro_version(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["repro", "--version"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_python_dash_m_repro_list(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["repro", "list"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    assert "figure6" in capsys.readouterr().out


def test_missing_subcommand_exits_with_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main([])
    assert excinfo.value.code == 2
    assert "usage" in capsys.readouterr().err.lower()


def test_unknown_experiment_raises_experiment_error():
    with pytest.raises(ExperimentError):
        cli.main(["run", "figure99"])


def test_datasets_all_names_listed(capsys):
    assert cli.main(["datasets", "--name", "exact_bias"]) == 0
    out = capsys.readouterr().out
    assert "exact_bias" in out


def test_broken_pipe_exits_quietly(monkeypatch):
    class _Out:
        def fileno(self):
            return 1

    def explode(argv):
        raise BrokenPipeError()

    closed = []
    monkeypatch.setattr(cli, "_dispatch", explode)
    monkeypatch.setattr(cli.sys, "stdout", _Out())
    monkeypatch.setattr("os.close", lambda fd: closed.append(fd))
    assert cli.main([]) == 0
    assert closed == [1]


def test_build_parser_round_trips_run_options(tmp_path):
    parser = cli.build_parser()
    args = parser.parse_args(
        ["run", "figure1", "--scale", "quick", "--seed", "3", "--csv", "x.csv"]
    )
    assert args.command == "run"
    assert args.experiment == "figure1"
    assert args.seed == 3
    assert str(args.csv) == "x.csv"


JOB_DOC = """
{
  "design": {"name": "mhrw"},
  "samples": 10,
  "start": 0,
  "tenant": "cli",
  "seed": 11,
  "walk": {"walk_length": 5, "crawl_hops": 0, "backward_repetitions": 3,
           "refine_repetitions": 0, "calibration_walks": 4},
  "engine": {"backend": "batch"}
}
"""


def _write_job(tmp_path, **engine):
    import json

    doc = json.loads(JOB_DOC)
    if engine:
        doc["engine"] = engine
    path = tmp_path / "job.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


def test_estimate_from_job_file(tmp_path, capsys):
    path = _write_job(tmp_path)
    assert cli.main(["estimate", "--job", str(path)]) == 0
    out = capsys.readouterr().out
    assert "ba_synthetic" in out
    assert "estimate" in out
    assert "10/10" in out


def test_estimate_json_output_round_trips(tmp_path, capsys):
    import json

    path = _write_job(tmp_path)
    assert cli.main(["estimate", "--job", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["accepted"] == 10
    assert report["spec"]["engine"]["backend"] == "batch"
    assert report["query_cost"] == 0  # batch walks the known graph for free


def test_estimate_from_stdin(tmp_path, monkeypatch, capsys):
    import io

    monkeypatch.setattr(sys, "stdin", io.StringIO(JOB_DOC))
    assert cli.main(["estimate", "--job", "-"]) == 0
    assert "estimate" in capsys.readouterr().out


def test_estimate_is_deterministic_per_seed(tmp_path, capsys):
    import json

    path = _write_job(tmp_path)

    def run(seed):
        assert (
            cli.main(["estimate", "--job", str(path), "--json", "--seed", seed])
            == 0
        )
        return json.loads(capsys.readouterr().out)["estimate"]

    assert run("3") == run("3")
    assert run("3") != run("4")


def test_estimate_scalar_backend_charges_queries(tmp_path, capsys):
    import json

    path = _write_job(tmp_path, backend="scalar")
    assert cli.main(["estimate", "--job", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["query_cost"] > 0  # scalar front end pays per unique node


def test_estimate_rejects_malformed_spec(tmp_path):
    from repro.errors import ConfigurationError

    path = tmp_path / "bad.json"
    path.write_text('{"design": "no-such-walk"}', encoding="utf-8")
    with pytest.raises(ConfigurationError, match="unknown design"):
        cli.main(["estimate", "--job", str(path)])
