"""service.checkpoint: crash-transparent snapshots of a running campaign.

The §2.4 pin: a service resumed from a checkpoint finishes the campaign
bit-identically to one that never stopped, and re-pays not a single
unique-node query for the rows the checkpoint carried.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import EngineConfig, EstimationJobSpec, WalkEstimateConfig
from repro.crawl.clock import drive
from repro.errors import CheckpointError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.service import CHECKPOINT_VERSION, SamplingService, ServiceConfig
from repro.service import checkpoint as checkpoint_module

LATENCY = [1.0, 0.25, 0.5, 2.0, 0.75]

WALK = WalkEstimateConfig(
    walk_length=5,
    crawl_hops=0,
    backward_repetitions=3,
    refine_repetitions=0,
    calibration_walks=4,
)


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(200, 4, seed=9).relabeled()


def job_spec(tenant, budget=120):
    return EstimationJobSpec(
        tenant=tenant,
        query_budget=budget,
        error_target=0.8,
        design="srw",
        samples=30,
        walk=WALK,
        engine=EngineConfig(backend="batch"),
    )


def make_service(hidden, *, config=None):
    api = SocialNetworkAPI(hidden)
    return SamplingService(
        api,
        0,
        config=config if config is not None else ServiceConfig(rows_per_epoch=30),
        latency=LATENCY,
        seed=5,
    )


def step(service):
    return drive(service.clock, service.step())


def finish(service):
    while service.scheduler.has_work:
        step(service)


def result_fingerprint(result):
    return (
        result.job_id,
        result.tenant,
        result.state.value,
        result.estimate,
        result.stderr,
        result.samples,
        result.rounds,
        result.query_cost,
        result.met_target,
        result.reason,
        result.clock_seconds,
    )


def campaign_fingerprint(service):
    return (
        [
            result_fingerprint(job.result)
            for _, job in sorted(service.jobs.items())
            if job.result is not None
        ],
        service.api.counter.state(),
        service.ledger.charges(),
    )


class TestResumeParity:
    def test_resumed_campaign_is_bit_identical_and_repays_nothing(self, hidden):
        # Reference: the same two-tenant campaign, never interrupted.
        with make_service(hidden) as reference:
            reference.run([job_spec("alice"), job_spec("bob")])
            expected = campaign_fingerprint(reference)

        # Interrupted: two epochs, checkpoint, "crash".
        with make_service(hidden) as service:
            service.submit_nowait(job_spec("alice"))
            service.submit_nowait(job_spec("bob"))
            step(service)
            step(service)
            document = json.loads(json.dumps(service.checkpoint()))
            cost_at_checkpoint = service.api.query_cost

        # A fresh process: a new API over the same hidden network.
        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), document, latency=LATENCY
        )
        try:
            # Every row the checkpoint carried is already paid for.
            assert resumed.api.query_cost == cost_at_checkpoint
            assert resumed.epochs_run == 2
            resumed.ledger.assert_balanced()
            finish(resumed)
            assert campaign_fingerprint(resumed) == expected
            resumed.ledger.assert_balanced()
        finally:
            resumed.close()

    def test_checkpoint_write_load_round_trip(self, hidden, tmp_path):
        path = tmp_path / "service.ckpt.json"
        with make_service(hidden) as service:
            service.submit_nowait(job_spec("alice"))
            step(service)
            document = service.checkpoint(path)
            assert path.is_file()
            assert checkpoint_module.load(path) == json.loads(json.dumps(document))

        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), path, latency=LATENCY
        )
        try:
            finish(resumed)
            assert resumed.jobs["job-1"].result is not None
        finally:
            resumed.close()

    def test_periodic_checkpoints_during_serve(self, hidden, tmp_path):
        path = tmp_path / "auto.ckpt.json"
        config = ServiceConfig(
            rows_per_epoch=30,
            checkpoint_path=str(path),
            checkpoint_every=2,
        )
        with make_service(hidden, config=config) as service:
            service.run([job_spec("alice")])
            assert service.epochs_run >= 2
            document = checkpoint_module.load(path)
        # The last auto-checkpoint is a valid resume source.
        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), document, latency=LATENCY
        )
        try:
            finish(resumed)
        finally:
            resumed.close()


class TestValidation:
    def _document(self, hidden):
        with make_service(hidden) as service:
            service.submit_nowait(job_spec("alice"))
            step(service)
            return service.checkpoint()

    def test_version_and_keys_checked(self, hidden):
        document = self._document(hidden)
        assert document["version"] == CHECKPOINT_VERSION
        with pytest.raises(CheckpointError, match="version"):
            checkpoint_module.validate({**document, "version": 99})
        with pytest.raises(CheckpointError, match="missing keys"):
            checkpoint_module.validate(
                {k: v for k, v in document.items() if k != "counter"}
            )
        with pytest.raises(CheckpointError, match="unknown keys"):
            checkpoint_module.validate({**document, "extra": 1})
        with pytest.raises(CheckpointError, match="mapping"):
            checkpoint_module.validate([1, 2])

    def test_restore_refuses_used_service_and_wrong_start(self, hidden):
        document = self._document(hidden)
        with make_service(hidden) as used:
            used.run([job_spec("carol")])
            with pytest.raises(CheckpointError, match="freshly constructed"):
                checkpoint_module.restore(used, document)
        api = SocialNetworkAPI(hidden)
        other = SamplingService(
            api, 1, config=ServiceConfig(rows_per_epoch=30), latency=LATENCY
        )
        try:
            with pytest.raises(CheckpointError, match="start node"):
                checkpoint_module.restore(other, document)
        finally:
            other.close()

    def test_restore_refuses_foreign_rng_and_bad_scheduler_refs(self, hidden):
        document = self._document(hidden)
        corrupted = dict(document)
        corrupted["rng_state"] = {
            **document["rng_state"],
            "bit_generator": "MT19937",
        }
        fresh = make_service(hidden)
        try:
            with pytest.raises(CheckpointError, match="bit generator"):
                checkpoint_module.restore(fresh, corrupted)
        finally:
            fresh.close()
        dangling = dict(document)
        dangling["pending"] = list(document["pending"]) + ["job-999"]
        fresh = make_service(hidden)
        try:
            with pytest.raises(CheckpointError, match="unknown job"):
                checkpoint_module.restore(fresh, dangling)
        finally:
            fresh.close()

    def test_checkpoint_every_validated(self):
        with pytest.raises(Exception):
            ServiceConfig(checkpoint_every=0)


class TestFileSlabResume:
    """A checkpointed file slab resumes without re-crawling or re-compacting."""

    def _config(self, slab_dir):
        return ServiceConfig(
            rows_per_epoch=60, slab_storage="file", slab_dir=str(slab_dir)
        )

    def _demanding_jobs(self):
        # Targets tight enough that refinement outlives the crawl budget:
        # post-checkpoint work is walks only, so an adopted topology is
        # never superseded and compactions can stay at zero end to end.
        return [
            replace(job_spec("alice", budget=60), error_target=0.05),
            replace(job_spec("bob", budget=60), error_target=0.05),
        ]

    def _crash_after_stall(self, hidden, slab_dir):
        """Run until the crawl stops growing, checkpoint, 'crash'.

        Tenant budgets fund the crawl; once they run dry the fetched
        frontier freezes, every later publish is growth-gated, and the
        remaining work is walks only — the regime where an adopted slab
        must never be re-compacted.  The crashed service is returned
        un-closed (a real crash never unlinks) and must stay referenced
        until the test ends, or its GC finalizer would sweep the slab
        file out from under the resume.
        """
        service = make_service(hidden, config=self._config(slab_dir))
        for spec in self._demanding_jobs():
            service.submit_nowait(spec)
        previous = -1
        while service.api.discovered.fetched_count != previous:
            previous = service.api.discovered.fetched_count
            step(service)
        assert service.scheduler.has_work, "jobs must outlast the crawl"
        document = json.loads(json.dumps(service.checkpoint()))
        return service, document

    def test_resume_reattaches_slab_with_zero_recompactions(self, hidden, tmp_path):
        with make_service(hidden, config=self._config(tmp_path / "ref")) as ref:
            ref.run(self._demanding_jobs())
            expected = campaign_fingerprint(ref)

        crashed, document = self._crash_after_stall(hidden, tmp_path / "live")
        topology = document["topology"]
        assert topology is not None and topology["storage"] == "file"
        assert Path(topology["path"]).is_file()
        cost_at_checkpoint = crashed.api.query_cost

        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), document, latency=LATENCY
        )
        try:
            # The persisted topology was adopted, not rebuilt: zero
            # re-paid queries AND zero re-compactions.
            assert resumed.publisher.compactions == 0
            current = resumed.publisher.current
            assert current is not None
            assert current.spec.segment == topology["path"]
            assert current.epoch == topology["epoch"]
            assert resumed.api.query_cost == cost_at_checkpoint
            finish(resumed)
            assert resumed.publisher.compactions == 0
            assert resumed.api.query_cost == cost_at_checkpoint
            assert campaign_fingerprint(resumed) == expected
            resumed.ledger.assert_balanced()
        finally:
            resumed.close()
            crashed.close()

    def test_digest_mismatch_falls_back_to_rebuild(self, hidden, tmp_path):
        with make_service(hidden, config=self._config(tmp_path / "ref")) as ref:
            ref.run(self._demanding_jobs())
            expected = campaign_fingerprint(ref)

        crashed, document = self._crash_after_stall(hidden, tmp_path / "live")
        path = Path(document["topology"]["path"])
        # Same size, different bytes: the size gate passes, the digest
        # refuses, and resume rebuilds from rows — never a wrong graph.
        blob = bytearray(path.read_bytes())
        blob[: len(blob) // 2] = bytes(len(blob) // 2)
        path.write_bytes(bytes(blob))

        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), document, latency=LATENCY
        )
        try:
            current = resumed.publisher.current
            assert current is None or current.spec.segment != str(path)
            finish(resumed)
            assert resumed.publisher.compactions >= 1
            assert campaign_fingerprint(resumed) == expected
        finally:
            resumed.close()
            crashed.close()

    def test_missing_slab_file_falls_back_to_rebuild(self, hidden, tmp_path):
        with make_service(hidden, config=self._config(tmp_path / "ref")) as ref:
            ref.run(self._demanding_jobs())
            expected = campaign_fingerprint(ref)

        crashed, document = self._crash_after_stall(hidden, tmp_path / "live")
        Path(document["topology"]["path"]).unlink()

        resumed = SamplingService.resume(
            SocialNetworkAPI(hidden), document, latency=LATENCY
        )
        try:
            finish(resumed)
            assert resumed.publisher.compactions >= 1
            assert campaign_fingerprint(resumed) == expected
        finally:
            resumed.close()
            crashed.close()

    def test_shm_checkpoint_records_no_topology(self, hidden):
        with make_service(hidden) as service:
            service.submit_nowait(job_spec("alice"))
            step(service)
            document = service.checkpoint()
            assert document["topology"] is None
