"""FaultyAPI: scripted failures with §2.4-exact accounting.

The charging invariants live here: a ``before``-phase fault charges
nothing, an ``after``-phase fault charges-and-caches so the retry is a
free cache hit, and ``slow`` costs simulated time but never money.
"""

import pytest

from repro.crawl.clock import FakeClock
from repro.errors import (
    APITimeoutError,
    RateLimitExceededError,
    TransientAPIError,
)
from repro.faults import FaultPlan, FaultRule, FaultyAPI
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(60, 3, seed=17).relabeled()


def wrap(hidden, *rules, seed=0, clock=None):
    api = SocialNetworkAPI(hidden)
    return FaultyAPI(api, FaultPlan(rules=tuple(rules), seed=seed), clock=clock)


class TestChargingPhases:
    def test_before_phase_fault_charges_nothing(self, hidden):
        faulty = wrap(hidden, FaultRule(kind="error", first_call=0, last_call=0))
        with pytest.raises(TransientAPIError):
            faulty.neighbors_batch([0, 1, 2])
        assert faulty.query_cost == 0
        assert faulty.raw_calls == 0
        assert not faulty.discovered.has_row(0)

    def test_after_phase_fault_charges_once_and_retry_is_free(self, hidden):
        faulty = wrap(
            hidden,
            FaultRule(kind="error", phase="after", first_call=0, last_call=0),
        )
        with pytest.raises(TransientAPIError):
            faulty.neighbors_batch([0, 1, 2])
        # The backend processed the batch before the response was lost.
        charged = faulty.query_cost
        assert charged == 3
        assert faulty.discovered.has_row(0)
        # The retry settles from cache: same rows, not one extra charge.
        rows = faulty.neighbors_batch([0, 1, 2])
        assert faulty.query_cost == charged
        assert [list(r) for r in rows] == [
            list(faulty.discovered.neighbors(n)) for n in (0, 1, 2)
        ]

    def test_slow_fault_completes_and_accrues_mirror_wait(self, hidden):
        faulty = wrap(
            hidden, FaultRule(kind="slow", delay=2.5, first_call=0, last_call=1)
        )
        faulty.neighbors_batch([0])
        faulty.degrees_batch([1])
        faulty.neighbors_batch([2])  # past the window: no extra wait
        assert faulty.query_cost == 3
        assert faulty.consume_mirror_wait() == pytest.approx(5.0)
        # The channel drains: a second read is zero.
        assert faulty.consume_mirror_wait() == 0.0


class TestFaultKinds:
    def test_timeout_and_rate_limit_exceptions(self, hidden):
        faulty = wrap(
            hidden,
            FaultRule(kind="timeout", first_call=0, last_call=0),
            FaultRule(kind="rate_limit", delay=45.0, first_call=1, last_call=1),
        )
        with pytest.raises(APITimeoutError):
            faulty.neighbors_batch([0])
        with pytest.raises(RateLimitExceededError) as excinfo:
            faulty.neighbors_batch([0])
        assert excinfo.value.retry_after == pytest.approx(45.0)

    def test_every_attempt_counts_toward_the_call_index(self, hidden):
        # A storm over calls 0-2 clears exactly because retries re-enter
        # the wrapper under fresh indices.
        faulty = wrap(hidden, FaultRule(kind="error", first_call=0, last_call=2))
        for _ in range(3):
            with pytest.raises(TransientAPIError):
                faulty.neighbors_batch([0])
        assert faulty.neighbors_batch([0]) is not None
        assert faulty.calls == 4
        assert faulty.injected == {"error": 3}
        assert [index for index, _, _ in faulty.history] == [0, 1, 2]

    def test_time_windowed_rule_reads_the_bound_clock(self, hidden):
        clock = FakeClock()
        faulty = wrap(
            hidden,
            FaultRule(kind="error", after_time=10.0),
            clock=clock,
        )
        faulty.neighbors_batch([0])  # t=0: window not yet open
        clock.advance_to(10.0)
        with pytest.raises(TransientAPIError):
            faulty.neighbors_batch([1])


class TestDelegation:
    def test_scalar_surface_and_metadata_pass_through(self, hidden):
        faulty = wrap(hidden, FaultRule(kind="error"))
        # Fault rules cover the batch grain only.
        assert faulty.degree(0) == len(list(faulty.neighbors(0)))
        assert faulty.has_node(0)
        assert faulty.cacheable
        assert faulty.counter is faulty.api.counter
        assert faulty.budget is faulty.api.budget
        assert faulty.rate_limiter is faulty.api.rate_limiter
        assert "FaultyAPI" in repr(faulty)

    def test_replay_from_serialized_plan_is_bit_identical(self, hidden):
        rules = (
            FaultRule(kind="error", first_call=1, last_call=2),
            FaultRule(kind="slow", delay=3.0, jitter=0.4, first_call=4),
        )
        plan = FaultPlan(rules=rules, seed=23)

        def campaign(p):
            faulty = FaultyAPI(SocialNetworkAPI(hidden), p)
            waits = []
            for index in range(8):
                try:
                    faulty.neighbors_batch([index % 4])
                except TransientAPIError:
                    pass
                waits.append(faulty.consume_mirror_wait())
            return waits, faulty.injected, faulty.history, faulty.query_cost

        assert campaign(plan) == campaign(FaultPlan.from_json(plan.to_json()))
