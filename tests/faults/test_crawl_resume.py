"""Chaos crawls and crash-transparent crawl resumption.

Two pins: a crawl through a scripted fault storm (behind the resilient
retry layer) produces the *same rows in the same order at the same query
cost* as a fault-free crawl — failures cost simulated time, never money
or coverage — and an interrupted crawl resumed from its state document
finishes with row order, counters, and budget identical to the
uninterrupted run.
"""

import json

import pytest

from repro.crawl import CRAWLER_STATE_KEYS, AsyncCrawler, FakeClock
from repro.errors import CheckpointError, TransientAPIError
from repro.faults import FaultPlan, FaultRule, FaultyAPI
from repro.graphs.generators import barabasi_albert_graph
from repro.osn import ResilientAPI, RetryPolicy
from repro.osn.api import SocialNetworkAPI

LATENCY = [1.0, 0.25, 0.5, 2.0, 0.75]

POLICY = RetryPolicy(max_attempts=6, base_backoff=0.5, jitter=0.0)


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(90, 3, seed=23).relabeled()


def crawl_reference(hidden, **kwargs):
    """The fault-free twin every chaos scenario is measured against."""
    api = SocialNetworkAPI(hidden)
    crawler = AsyncCrawler(api, 0, latency=LATENCY, **kwargs)
    crawler.crawl()
    return api, crawler


def fingerprint(api):
    return (list(api.discovered._rows), api.counter.state())


class TestChaosCrawlParity:
    def test_fault_storm_changes_nothing_but_the_clock(self, hidden):
        reference_api, reference = crawl_reference(hidden, concurrency=1)
        plan = FaultPlan(
            rules=(
                FaultRule(kind="error", first_call=1, last_call=2),
                FaultRule(kind="rate_limit", delay=20.0, first_call=5, last_call=5),
                FaultRule(kind="slow", delay=3.0, first_call=6),
            )
        )
        api = SocialNetworkAPI(hidden)
        resilient = ResilientAPI(FaultyAPI(api, plan), POLICY)
        crawler = AsyncCrawler(resilient, 0, concurrency=1, latency=LATENCY)
        crawler.crawl()
        assert fingerprint(api) == fingerprint(reference_api)
        assert crawler.rows_fetched == reference.rows_fetched
        assert resilient.api.injected == {"error": 2, "rate_limit": 1, "slow": 1}
        # Faults cost time: both errors hit one batch, so its backoffs
        # are the exponential 0.5 + 1.0; the rate-limit wait (20) and the
        # slow response (3) land on the clock as-is.
        assert crawler.clock.now == pytest.approx(reference.clock.now + 24.5)

    def test_chaos_campaign_replays_bit_for_bit(self, hidden):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="error", first_call=2, last_call=4),
                FaultRule(kind="slow", delay=2.0, jitter=0.3, first_call=6),
            ),
            seed=5,
        )

        def campaign(plan_document):
            api = SocialNetworkAPI(hidden)
            resilient = ResilientAPI(
                FaultyAPI(api, FaultPlan.from_json(plan_document)), POLICY, seed=1
            )
            crawler = AsyncCrawler(resilient, 0, concurrency=2, latency=LATENCY)
            crawler.crawl()
            return (
                crawler.clock.now,
                api.counter.state(),
                resilient.api.history,
                resilient.retries,
            )

        document = plan.to_json()
        assert campaign(document) == campaign(document)

    def test_unrecovered_failure_marks_the_crawl_failed(self, hidden):
        api = SocialNetworkAPI(hidden)
        faulty = FaultyAPI(api, FaultPlan(rules=(FaultRule(kind="error"),)))
        crawler = AsyncCrawler(faulty, 0, concurrency=1, latency=LATENCY)
        with pytest.raises(TransientAPIError):
            crawler.crawl()
        assert crawler.failed
        assert crawler.finished


class TestResumption:
    def test_resumed_crawl_matches_uninterrupted_run(self, hidden):
        # The service crawls in fixed-size chunks; crash-transparency
        # means an interruption *between* chunks changes nothing.  The
        # reference runs the same chunk schedule in one process.
        reference_api = SocialNetworkAPI(hidden)
        reference = AsyncCrawler(reference_api, 0, concurrency=1, latency=LATENCY)
        while not reference.finished:
            reference.crawl(max_new_rows=33)

        # One chunk, snapshot, "crash".
        first_api = SocialNetworkAPI(hidden)
        first = AsyncCrawler(first_api, 0, concurrency=1, latency=LATENCY)
        first.crawl(max_new_rows=33)
        state = json.loads(json.dumps(first.state_dict()))  # wire round-trip
        rows = first_api.discovered.snapshot_rows()
        seen, raw_calls = first_api.counter.state()

        # A fresh process: rebuild the API's cache + counters, then the
        # crawler, then continue the chunk schedule to completion.
        resumed_api = SocialNetworkAPI(hidden)
        resumed_api.discovered.restore_rows(rows)
        resumed_api.counter.restore(seen, raw_calls)
        resumed = AsyncCrawler(resumed_api, 0, concurrency=1, latency=LATENCY)
        resumed.restore_state(state)
        assert resumed.clock.now == first.clock.now
        assert resumed.rows_fetched == 33
        while not resumed.finished:
            resumed.crawl(max_new_rows=33)

        assert fingerprint(resumed_api) == fingerprint(reference_api)
        assert resumed.rows_fetched == reference.rows_fetched
        assert resumed.batches_issued == reference.batches_issued
        assert resumed.clock.now == reference.clock.now

    def test_state_dict_is_json_safe_and_keyed(self, hidden):
        api = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(api, 0, concurrency=1, latency=LATENCY)
        crawler.crawl(max_new_rows=10)
        state = crawler.state_dict()
        assert set(state) == CRAWLER_STATE_KEYS
        assert json.loads(json.dumps(state)) == state

    def test_restore_validates_the_document(self, hidden):
        api = SocialNetworkAPI(hidden)
        crawler = AsyncCrawler(api, 0, latency=LATENCY)
        state = crawler.state_dict()
        with pytest.raises(CheckpointError, match="missing keys"):
            crawler.restore_state({k: v for k, v in state.items() if k != "frontier"})
        with pytest.raises(CheckpointError, match="unknown keys"):
            crawler.restore_state({**state, "extra": 1})
        other = AsyncCrawler(api, 1, latency=LATENCY)
        with pytest.raises(CheckpointError, match="start node"):
            other.restore_state(state)

    def test_restore_never_rewinds_the_clock(self, hidden):
        api = SocialNetworkAPI(hidden)
        clock = FakeClock()
        crawler = AsyncCrawler(api, 0, clock=clock, latency=LATENCY)
        state = crawler.state_dict()  # clock_now == 0.0
        clock.advance_to(50.0)
        crawler.restore_state(state)
        assert clock.now == 50.0
