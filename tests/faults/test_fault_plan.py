"""FaultPlan / FaultRule: validation, matching, jitter, JSON round-trips."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultPlan, FaultRule


class TestRuleValidation:
    def test_valid_kinds_only(self):
        for kind in FAULT_KINDS:
            FaultRule(kind=kind)
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultRule(kind="meteor")

    def test_phase_and_op_validated(self):
        with pytest.raises(ConfigurationError, match="unknown fault phase"):
            FaultRule(kind="error", phase="during")
        with pytest.raises(ConfigurationError, match="unknown fault op"):
            FaultRule(kind="error", op="attributes")

    def test_call_window_validated(self):
        with pytest.raises(ConfigurationError, match="first_call"):
            FaultRule(kind="error", first_call=-1)
        with pytest.raises(ConfigurationError, match="last_call"):
            FaultRule(kind="error", first_call=5, last_call=4)

    def test_delay_and_jitter_validated(self):
        with pytest.raises(ConfigurationError, match="delay"):
            FaultRule(kind="slow", delay=-0.5)
        with pytest.raises(ConfigurationError, match="jitter"):
            FaultRule(kind="slow", delay=1.0, jitter=1.0)

    def test_time_window_validated(self):
        with pytest.raises(ConfigurationError, match="before_time"):
            FaultRule(kind="error", after_time=10.0, before_time=10.0)

    def test_rules_must_be_fault_rules(self):
        with pytest.raises(ConfigurationError, match="FaultRule"):
            FaultPlan(rules=({"kind": "error"},))


class TestMatching:
    def test_call_window_is_inclusive(self):
        rule = FaultRule(kind="error", first_call=2, last_call=4)
        assert not rule.matches(1, "neighbors", 0.0)
        assert rule.matches(2, "neighbors", 0.0)
        assert rule.matches(4, "neighbors", 0.0)
        assert not rule.matches(5, "neighbors", 0.0)

    def test_open_ended_window(self):
        rule = FaultRule(kind="error", first_call=3)
        assert rule.matches(3_000_000, "degrees", 0.0)

    def test_op_filter(self):
        rule = FaultRule(kind="error", op="neighbors")
        assert rule.matches(0, "neighbors", 0.0)
        assert not rule.matches(0, "degrees", 0.0)

    def test_time_window_is_half_open(self):
        rule = FaultRule(kind="error", after_time=5.0, before_time=10.0)
        assert not rule.matches(0, "neighbors", 4.99)
        assert rule.matches(0, "neighbors", 5.0)
        assert not rule.matches(0, "neighbors", 10.0)

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="timeout", first_call=0, last_call=0),
                FaultRule(kind="error", first_call=0, last_call=9),
            )
        )
        assert plan.resolve(0, "neighbors", 0.0).kind == "timeout"
        assert plan.resolve(1, "neighbors", 0.0).kind == "error"
        assert plan.resolve(10, "neighbors", 0.0) is None

    def test_resolved_fault_carries_rule_index(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="slow", op="degrees", delay=2.0),
                FaultRule(kind="error"),
            )
        )
        assert plan.resolve(0, "degrees", 0.0).rule_index == 0
        assert plan.resolve(0, "neighbors", 0.0).rule_index == 1


class TestJitter:
    def test_jittered_rule_requires_rng(self):
        plan = FaultPlan(rules=(FaultRule(kind="slow", delay=4.0, jitter=0.5),))
        with pytest.raises(ConfigurationError, match="rng"):
            plan.resolve(0, "neighbors", 0.0)

    def test_jitter_perturbs_within_band_and_is_deterministic(self):
        plan = FaultPlan(rules=(FaultRule(kind="slow", delay=4.0, jitter=0.5),))

        def delays(seed):
            rng = np.random.default_rng(seed)
            return [plan.resolve(i, "neighbors", 0.0, rng).delay for i in range(20)]

        first = delays(7)
        assert delays(7) == first
        assert delays(8) != first
        assert all(2.0 <= d <= 6.0 for d in first)

    def test_zero_jitter_never_touches_the_stream(self):
        plan = FaultPlan(rules=(FaultRule(kind="slow", delay=4.0),))
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        assert plan.resolve(0, "neighbors", 0.0, rng).delay == 4.0
        assert rng.bit_generator.state == before


class TestSerialization:
    def _plan(self):
        return FaultPlan(
            rules=(
                FaultRule(kind="timeout", first_call=1, last_call=3, op="neighbors"),
                FaultRule(kind="rate_limit", delay=30.0, phase="before"),
                FaultRule(
                    kind="slow",
                    delay=2.5,
                    jitter=0.25,
                    after_time=10.0,
                    before_time=90.0,
                ),
            ),
            seed=11,
        )

    def test_json_round_trip_is_identity(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FaultRule keys"):
            FaultRule.from_dict({"kind": "error", "severity": 9})
        with pytest.raises(ConfigurationError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"rules": [], "chaos_level": "max"})

    def test_malformed_documents_rejected(self):
        with pytest.raises(ConfigurationError, match="object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ConfigurationError, match="list of rule mappings"):
            FaultPlan.from_dict({"rules": "error"})
        with pytest.raises(ConfigurationError, match="mapping"):
            FaultPlan.from_dict({"rules": [3]})

    def test_with_overrides_revalidates(self):
        plan = self._plan()
        assert plan.with_overrides(seed=99).seed == 99
        with pytest.raises(ConfigurationError):
            plan.with_overrides(rules=({"kind": "error"},))
