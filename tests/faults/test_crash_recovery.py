"""Crash-transparent sharded walks: dead workers, bit-identical results.

The recovery contract of :class:`ShardedWalkEngine.map_shards`: a worker
killed mid-round is detected, the pool respawned, and only the failed
shards re-executed — with the same pickled arguments, so the recovered
round's trajectories are bit-for-bit those of a crash-free run.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import SimpleRandomWalk

WALKS, STEPS, SEED = 64, 10, 42


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(150, 3, seed=11).relabeled()


def run_round(graph, crashes=(), n_workers=4):
    with ShardedWalkEngine(graph, n_workers=n_workers, mp_context="fork") as engine:
        for round_index, shard_index in crashes:
            engine.schedule_worker_crash(round_index, shard_index)
        starts = np.zeros(WALKS, dtype=np.int64)
        result = engine.run_walk_batch(SimpleRandomWalk(), starts, STEPS, seed=SEED)
        stats = (engine.worker_respawns, engine.shard_retries)
    return result.paths, stats


class TestCrashTransparency:
    def test_recovered_round_is_bit_identical(self, graph):
        clean, (respawns, retries) = run_round(graph)
        assert (respawns, retries) == (0, 0)
        crashed, (respawns, retries) = run_round(graph, crashes=[(1, 2)])
        assert respawns == 1
        # The crash also kills sibling futures in flight on the broken
        # pool; every one of them is resubmitted idempotently.
        assert retries >= 1
        np.testing.assert_array_equal(crashed, clean)

    def test_multiple_crashes_in_one_round_recover(self, graph):
        clean, _ = run_round(graph)
        crashed, (respawns, _) = run_round(graph, crashes=[(1, 0), (1, 3)])
        assert respawns >= 1
        np.testing.assert_array_equal(crashed, clean)

    def test_engine_stays_healthy_after_recovery(self, graph):
        with ShardedWalkEngine(graph, n_workers=2, mp_context="fork") as engine:
            engine.schedule_worker_crash(1, 1)
            starts = np.zeros(16, dtype=np.int64)
            first = engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=1)
            assert engine.worker_respawns == 1
            # The respawned pool serves later rounds without incident,
            # and a crash-free engine produces the same trajectories.
            second = engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=2)
        with ShardedWalkEngine(graph, n_workers=2, mp_context="fork") as engine:
            clean_first = engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=1)
            clean_second = engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=2)
        np.testing.assert_array_equal(first.paths, clean_first.paths)
        np.testing.assert_array_equal(second.paths, clean_second.paths)

    def test_crash_in_a_later_round_only_hits_that_round(self, graph):
        with ShardedWalkEngine(graph, n_workers=2, mp_context="fork") as engine:
            engine.schedule_worker_crash(2, 0)
            starts = np.zeros(16, dtype=np.int64)
            engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=1)
            assert engine.worker_respawns == 0
            engine.run_walk_batch(SimpleRandomWalk(), starts, 5, seed=2)
            assert engine.worker_respawns == 1


class TestScheduleValidation:
    def test_rejects_bad_indices(self, graph):
        with ShardedWalkEngine(graph, n_workers=1, mp_context="fork") as engine:
            with pytest.raises(ConfigurationError):
                engine.schedule_worker_crash(0, 0)
            with pytest.raises(ConfigurationError):
                engine.schedule_worker_crash(1, -1)
