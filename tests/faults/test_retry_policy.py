"""ResilientAPI: retry/backoff/circuit-breaking with exactly-once charging.

The headline invariant of the resilience layer: a failed-then-retried
batch charges :class:`QueryCounter` / :class:`TenantLedger` exactly once,
and ``assert_balanced`` holds through any scripted storm.
"""

import numpy as np
import pytest

from repro.errors import (
    APITimeoutError,
    CircuitOpenError,
    ConfigurationError,
    RateLimitExceededError,
    TransientAPIError,
)
from repro.faults import FaultPlan, FaultRule, FaultyAPI
from repro.graphs.generators import barabasi_albert_graph
from repro.osn import CircuitBreaker, ResilientAPI, RetryPolicy
from repro.osn.accounting import TenantLedger
from repro.osn.api import SocialNetworkAPI

#: Deterministic waits for most scenarios: no jitter, tight schedule.
POLICY = RetryPolicy(max_attempts=5, base_backoff=0.5, jitter=0.0)


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(60, 3, seed=17).relabeled()


def storm(hidden, *rules, policy=POLICY, seed=0, plan_seed=0, **kwargs):
    api = SocialNetworkAPI(hidden)
    faulty = FaultyAPI(api, FaultPlan(rules=tuple(rules), seed=plan_seed))
    return ResilientAPI(faulty, policy, seed=seed, **kwargs)


class TestPolicyValue:
    def test_validation(self):
        cases = [
            dict(max_attempts=0),
            dict(base_backoff=-1.0),
            dict(backoff_factor=0.5),
            dict(max_backoff=0.1, base_backoff=1.0),
            dict(jitter=1.0),
            dict(call_timeout=0.0),
            dict(circuit_threshold=0),
            dict(circuit_reset_seconds=0.0),
        ]
        for bad in cases:
            with pytest.raises(ConfigurationError):
                RetryPolicy(**bad)

    def test_dict_round_trip_and_unknown_keys(self):
        policy = RetryPolicy(max_attempts=7, call_timeout=12.0, jitter=0.2)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ConfigurationError, match="unknown RetryPolicy keys"):
            RetryPolicy.from_dict({"max_retries": 3})
        assert policy.with_overrides(jitter=0.0).jitter == 0.0

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_backoff=1.0, backoff_factor=2.0, max_backoff=5.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        assert [policy.backoff_for(n, rng) for n in range(1, 6)] == [
            1.0,
            2.0,
            4.0,
            5.0,
            5.0,
        ]

    def test_jittered_backoff_stays_in_band_and_replays(self):
        policy = RetryPolicy(base_backoff=2.0, jitter=0.5)

        def series(seed):
            rng = np.random.default_rng(seed)
            return [policy.backoff_for(1, rng) for _ in range(10)]

        first = series(4)
        assert series(4) == first
        assert all(1.0 <= w <= 3.0 for w in first)


class TestExactlyOnceCharging:
    def test_retried_batch_charges_counter_exactly_once(self, hidden):
        for phase in ("before", "after"):
            api = storm(
                hidden,
                FaultRule(kind="error", phase=phase, first_call=0, last_call=2),
            )
            rows = api.neighbors_batch([0, 1, 2])
            assert len(rows) == 3
            assert api.query_cost == 3
            assert api.retries == 3
            assert api.failed_attempts == 3

    def test_ledger_stays_balanced_through_a_storm(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="error", phase="after", first_call=1, last_call=2),
        )
        ledger = TenantLedger(api.counter)
        with ledger.attribute("alice"):
            api.neighbors_batch([0, 1])
        with ledger.attribute("bob"):
            api.neighbors_batch([2, 3])  # faulted twice, retried, settled
        ledger.assert_balanced()
        assert ledger.charges() == {"alice": 2, "bob": 2}
        assert sum(ledger.charges().values()) == api.query_cost

    def test_exhausted_attempts_reraise_without_double_charge(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="error", phase="after"),
            policy=POLICY.with_overrides(max_attempts=2, circuit_threshold=99),
        )
        with pytest.raises(TransientAPIError):
            api.neighbors_batch([0, 1])
        # Both attempts settled backend-side; the cache absorbed the second.
        assert api.query_cost == 2
        assert api.failed_attempts == 2
        assert api.retries == 1


class TestWaiting:
    def test_backoff_accumulates_in_the_mirror_channel(self, hidden):
        api = storm(
            hidden, FaultRule(kind="error", first_call=0, last_call=1)
        )
        api.neighbors_batch([0])
        # Two retries: 0.5 then 1.0 simulated seconds of backoff.
        assert api.consume_mirror_wait() == pytest.approx(1.5)
        assert api.clock.now == pytest.approx(1.5)
        assert api.consume_mirror_wait() == 0.0

    def test_rate_limit_storm_honors_retry_after(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="rate_limit", delay=30.0, first_call=0, last_call=0),
        )
        api.neighbors_batch([0])
        assert api.consume_mirror_wait() == pytest.approx(30.0)

    def test_slow_inner_wait_is_mirrored_through(self, hidden):
        api = storm(hidden, FaultRule(kind="slow", delay=4.0, last_call=0))
        api.neighbors_batch([0])
        assert api.consume_mirror_wait() == pytest.approx(4.0)

    def test_call_timeout_abandons_listening_and_retries_free(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="slow", delay=10.0, first_call=0, last_call=0),
            policy=POLICY.with_overrides(call_timeout=3.0),
        )
        rows = api.neighbors_batch([0, 1])
        assert len(rows) == 2
        assert api.timeouts == 1
        assert api.query_cost == 2  # the late response was cached; retry free
        # Mirrors the timeout (3.0) + backoff (0.5), not the full 10s.
        assert api.consume_mirror_wait() == pytest.approx(3.5)

    def test_call_timeout_exhaustion_raises_timeout(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="slow", delay=10.0),
            policy=POLICY.with_overrides(call_timeout=3.0, max_attempts=2),
        )
        with pytest.raises(APITimeoutError):
            api.neighbors_batch([0])


class TestCircuitBreaker:
    def test_opens_at_threshold_and_fails_fast(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="error"),
            policy=POLICY.with_overrides(
                max_attempts=2, circuit_threshold=2, circuit_reset_seconds=60.0
            ),
        )
        with pytest.raises(TransientAPIError):
            api.neighbors_batch([0])
        assert api.circuit_opens == 1
        # While open, calls fail fast without touching the network.
        calls_before = api.api.calls
        with pytest.raises(CircuitOpenError) as excinfo:
            api.neighbors_batch([0])
        assert api.api.calls == calls_before
        assert excinfo.value.retry_after == pytest.approx(60.0)

    def test_half_open_trial_closes_on_success(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="error", first_call=0, last_call=1),
            policy=POLICY.with_overrides(
                max_attempts=2, circuit_threshold=2, circuit_reset_seconds=60.0
            ),
        )
        with pytest.raises(TransientAPIError):
            api.neighbors_batch([0])
        api.clock.advance(60.0)
        # The trial call passes through (the storm has cleared) and closes
        # the breaker.
        assert api.neighbors_batch([0]) is not None
        breaker = api.breaker("default")
        assert breaker.open_until is None
        assert breaker.consecutive_failures == 0

    def test_breakers_are_per_tenant(self, hidden):
        api = storm(
            hidden,
            FaultRule(kind="error", op="degrees"),
            policy=POLICY.with_overrides(max_attempts=2, circuit_threshold=2),
        )
        api.set_tenant("alice")
        with pytest.raises(TransientAPIError):
            api.degrees_batch([0])
        with pytest.raises(CircuitOpenError):
            api.degrees_batch([0])
        # Bob's breaker is untouched; his neighbors calls go through.
        api.set_tenant("bob")
        assert api.neighbors_batch([0]) is not None
        assert api.breaker("alice").opens == 1
        assert api.breaker("bob").opens == 0

    def test_breaker_unit_state_machine(self):
        policy = RetryPolicy(circuit_threshold=2, circuit_reset_seconds=10.0)
        breaker = CircuitBreaker("t", policy)
        breaker.record_failure(0.0)
        breaker.check(0.0)  # one failure: still closed
        breaker.record_failure(0.0)
        with pytest.raises(CircuitOpenError):
            breaker.check(5.0)
        breaker.check(10.0)  # half-open trial allowed
        breaker.record_success()
        assert breaker.open_until is None

    def test_tenant_must_be_non_empty(self, hidden):
        api = storm(hidden)
        with pytest.raises(ConfigurationError):
            api.set_tenant("")
        with pytest.raises(ConfigurationError):
            ResilientAPI(api.api, tenant="")


class TestDelegation:
    def test_pass_through_surface(self, hidden):
        api = storm(hidden)
        assert api.degree(0) == len(list(api.neighbors(0)))
        assert api.has_node(0)
        assert api.cacheable
        assert api.counter is api.api.counter
        assert api.budget is api.api.budget
        assert api.rate_limiter is api.api.rate_limiter
        assert api.raw_calls == api.api.raw_calls
        assert "ResilientAPI" in repr(api)
