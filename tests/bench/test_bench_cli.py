"""The ``python -m repro.bench`` surface and the real-writer integration."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench import SUITES, BenchJob, load_artifact, write_artifact
from repro.bench.cli import build_parser, main as bench_main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_requires_a_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_main([])
        assert excinfo.value.code == 2
        assert "usage" in capsys.readouterr().err.lower()

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["run", "--suite", "smoke"],
            ["check", "--baseline", ".", "--timing", "warn"],
            ["append", "--label", "x"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_python_dash_m_entry_point(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["repro.bench", "--help"])
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_module("repro.bench", run_name="__main__")
        assert excinfo.value.code == 0
        assert "Regression-gating" in capsys.readouterr().out


class TestRunCommand:
    def test_run_reports_failures_with_exit_one(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "benchmarks").mkdir()
        monkeypatch.setitem(
            SUITES,
            "smoke",
            (BenchJob("ghost", "bench_ghost.py", "BENCH_ghost.json"),),
        )
        code = bench_main(
            [
                "run",
                "--out",
                str(tmp_path / "results"),
                "--bench-dir",
                str(tmp_path / "benchmarks"),
            ]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err


class TestCheckDefaults:
    def test_default_current_prefers_bench_results_dir(
        self, tmp_path, monkeypatch, capsys
    ):
        record = {"benchmark": "stub", "query_cost": 3}
        monkeypatch.setitem(
            SUITES, "smoke", (BenchJob("stub", "s.py", "BENCH_stub.json"),)
        )
        write_artifact(record, tmp_path / "BENCH_stub.json", scale="smoke")
        results = tmp_path / "bench_results"
        results.mkdir()
        drifted = {"benchmark": "stub", "query_cost": 4}
        write_artifact(drifted, results / "BENCH_stub.json", scale="smoke")
        monkeypatch.chdir(tmp_path)
        assert bench_main(["check", "--baseline", str(tmp_path)]) == 1
        assert "query_cost" in capsys.readouterr().out

    def test_default_current_falls_back_to_baseline_dir(
        self, tmp_path, monkeypatch
    ):
        record = {"benchmark": "stub", "query_cost": 3}
        monkeypatch.setitem(
            SUITES, "smoke", (BenchJob("stub", "s.py", "BENCH_stub.json"),)
        )
        write_artifact(record, tmp_path / "BENCH_stub.json", scale="smoke")
        monkeypatch.chdir(tmp_path)
        # No bench_results/: the baseline tree is compared to itself.
        assert bench_main(["check", "--baseline", str(tmp_path)]) == 0


class TestWalkNotWaitForwarding:
    def test_bench_subcommand_forwards_to_the_harness(self, tmp_path, capsys):
        from repro import cli

        record = {"benchmark": "stub", "query_cost": 3}
        for artifact in ("BENCH_stub.json",):
            write_artifact(record, tmp_path / artifact, scale="smoke")
        # Self-comparison through the top-level CLI: artifact list comes
        # from the real suite, so point both sides at the repo root.
        code = cli.main(
            [
                "bench",
                "check",
                "--baseline",
                str(REPO_ROOT),
                "--current",
                str(REPO_ROOT),
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_subcommand_propagates_exit_codes(self, tmp_path):
        from repro import cli

        assert (
            cli.main(["bench", "check", "--baseline", str(tmp_path / "empty")])
            != 0
        )


class TestRealWriterIntegration:
    def test_throughput_writer_emits_a_smoke_envelope(self, tmp_path):
        # One real writer, tiny budget, through the real runner: proves
        # the bench CLIs and the envelope schema stay wired together.
        from repro.bench import run_suite

        job = BenchJob(
            "throughput",
            "bench_throughput.py",
            "BENCH_throughput.json",
            ("--quick",),
        )
        out = tmp_path / "results"
        produced = run_suite(
            [job],
            out,
            bench_dir=REPO_ROOT / "benchmarks",
            echo=lambda _: None,
        )
        envelope = load_artifact(produced[0])
        assert envelope.benchmark == "walk_throughput"
        assert envelope.scale == "smoke"
        assert any("steps_per_sec" in key for key in envelope.metrics)
