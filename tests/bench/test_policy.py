"""The exact-vs-tolerance metric split and regression arithmetic."""

import pytest

from repro.bench import (
    CheckPolicy,
    Direction,
    MetricKind,
    classify,
    timing_regression,
)


class TestClassify:
    @pytest.mark.parametrize(
        "key",
        [
            "designs.srw.scalar.steps_per_sec",
            "designs.srw.scalar.walks_per_sec",
            "designs.srw.batch.1024.speedup_steps_per_sec",
            "designs.mhrw.sharded.2.speedup_vs_batch",
            "pipeline.4.speedup_vs_serial",
        ],
    )
    def test_rates_and_speedups_are_timing_higher_better(self, key):
        assert classify(key) == (MetricKind.TIMING, Direction.HIGHER_IS_BETTER)

    @pytest.mark.parametrize(
        "key",
        [
            "designs.srw.scalar.seconds",
            "serial.real_seconds",
            "ws_bw_batch.srw.scalar_seconds",
            "ws_bw_batch.srw.batch_seconds",
        ],
    )
    def test_wall_clock_is_timing_lower_better(self, key):
        assert classify(key) == (MetricKind.TIMING, Direction.LOWER_IS_BETTER)

    @pytest.mark.parametrize(
        "key",
        [
            "serial.simulated_seconds",  # FakeClock time is deterministic
            "pipeline.4.simulated_seconds",
            "samplers.srw.we-srw.query_cost",
            "samplers.srw.we-srw.queries_per_sample",
            "sweep.4.shared.ledger_total",
            "sweep.4.shared.jobs.0.samples",
            "graph.nodes",
            "pipeline.4.final_relative_error",
            "ws_bw_batch.srw.query_cost_unchanged",
            "converged",
        ],
    )
    def test_deterministic_metrics_are_exact(self, key):
        assert classify(key)[0] is MetricKind.EXACT


class TestTimingRegression:
    def test_higher_better_drop_is_positive_regression(self):
        assert timing_regression(100.0, 75.0, Direction.HIGHER_IS_BETTER) == (
            pytest.approx(0.25)
        )

    def test_higher_better_gain_is_negative(self):
        assert (
            timing_regression(100.0, 130.0, Direction.HIGHER_IS_BETTER) < 0
        )

    def test_lower_better_growth_is_positive_regression(self):
        assert timing_regression(2.0, 3.0, Direction.LOWER_IS_BETTER) == (
            pytest.approx(0.5)
        )

    def test_lower_better_shrink_is_negative(self):
        assert timing_regression(2.0, 1.0, Direction.LOWER_IS_BETTER) < 0

    def test_non_positive_baseline_carries_no_signal(self):
        assert timing_regression(0.0, 5.0, Direction.HIGHER_IS_BETTER) == 0.0
        assert timing_regression(-1.0, 5.0, Direction.LOWER_IS_BETTER) == 0.0


def test_policy_rejects_negative_tolerance():
    with pytest.raises(ValueError, match=">= 0"):
        CheckPolicy(tolerance=-0.1)


def test_policy_rejects_negative_timing_floor():
    with pytest.raises(ValueError, match="min_timing_seconds"):
        CheckPolicy(min_timing_seconds=-0.01)
    assert CheckPolicy(min_timing_seconds=0.0).min_timing_seconds == 0.0
    assert CheckPolicy().min_timing_seconds == pytest.approx(0.01)
