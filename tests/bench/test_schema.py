"""The normalized artifact envelope: flattening, round-trip, legacy load."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    flatten_metrics,
    host_metadata,
    hosts_match,
    load_artifact,
    make_envelope,
    write_artifact,
)

RECORD = {
    "benchmark": "walk_throughput",
    "graph": {"model": "barabasi_albert", "nodes": 2000, "seed": 42},
    "host": {"cpu_count": 64},  # environment, not a result
    "designs": {
        "srw": {
            "scalar": {"walks": 200, "steps_per_sec": 716405.07},
            "batch": {"1024": {"k": 1024, "speedup_steps_per_sec": 46.4}},
        }
    },
    "estimates": [13.9, 11.1],
    "converged": True,
    "note": "strings are not metrics",
    "missing": None,
}


class TestFlatten:
    def test_nested_dicts_flatten_to_dotted_keys(self):
        flat = flatten_metrics(RECORD)
        assert flat["graph.nodes"] == 2000
        assert flat["designs.srw.scalar.steps_per_sec"] == 716405.07
        assert flat["designs.srw.batch.1024.speedup_steps_per_sec"] == 46.4

    def test_lists_flatten_by_index(self):
        assert flatten_metrics(RECORD)["estimates.1"] == 11.1

    def test_booleans_kept_strings_and_none_skipped(self):
        flat = flatten_metrics(RECORD)
        assert flat["converged"] is True
        assert "note" not in flat
        assert "missing" not in flat
        assert "benchmark" not in flat

    def test_host_subtree_excluded(self):
        # Host facts are environment; they drive the timing downgrade,
        # they never diff as metrics (a 2-core runner vs a 1-core
        # baseline must not "fail" on host.cpu_count).
        flat = flatten_metrics(RECORD)
        assert not any(key.startswith("host.") for key in flat)

    def test_nested_host_keys_are_not_excluded(self):
        # Only the top-level host block is environment metadata.
        flat = flatten_metrics({"sweep": {"host": {"cpu_count": 4}}})
        assert flat == {"sweep.host.cpu_count": 4}


class TestEnvelope:
    def test_make_envelope_fields(self):
        envelope = make_envelope(RECORD, scale="smoke")
        assert envelope.benchmark == "walk_throughput"
        assert envelope.scale == "smoke"
        assert envelope.schema_version == SCHEMA_VERSION
        assert envelope.host == host_metadata()
        assert not envelope.legacy

    def test_rejects_non_dict_records(self):
        with pytest.raises(TypeError, match="dicts"):
            make_envelope([1, 2, 3], scale="smoke")

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        written = write_artifact(RECORD, path, scale="smoke")
        loaded = load_artifact(path)
        assert loaded.benchmark == written.benchmark
        assert loaded.scale == "smoke"
        assert loaded.metrics == written.metrics
        assert loaded.record == RECORD
        assert loaded.path == path

    def test_on_disk_layout_is_the_documented_envelope(self, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        write_artifact(RECORD, path, scale="full")
        doc = json.loads(path.read_text())
        assert set(doc) == {
            "schema_version",
            "benchmark",
            "scale",
            "host",
            "metrics",
            "record",
        }
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["record"]["designs"]["srw"]["scalar"]["walks"] == 200

    def test_legacy_bare_record_loads_with_unknown_scale_and_host(self, tmp_path):
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps(RECORD))
        loaded = load_artifact(path)
        assert loaded.legacy
        assert loaded.scale is None
        assert loaded.host is None
        assert loaded.metrics == flatten_metrics(RECORD)

    def test_future_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text(json.dumps({"schema_version": 99, "record": {}}))
        with pytest.raises(ValueError, match="schema_version"):
            load_artifact(path)

    def test_envelope_missing_record_is_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="record"):
            load_artifact(path)

    def test_non_object_document_is_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON objects"):
            load_artifact(path)


class TestHostsMatch:
    def test_same_host_matches(self):
        host = {"cpu_count": 4, "platform": "linux-x86_64", "python": "3.12.1"}
        ok, note = hosts_match(host, dict(host))
        assert ok and note == "hosts match"

    def test_cpu_count_difference_breaks_match(self):
        a = {"cpu_count": 1, "platform": "linux-x86_64"}
        b = {"cpu_count": 4, "platform": "linux-x86_64"}
        ok, note = hosts_match(a, b)
        assert not ok and "cpu_count" in note

    def test_python_version_alone_does_not_break_match(self):
        a = {"cpu_count": 2, "platform": "linux-x86_64", "python": "3.10.0"}
        b = {"cpu_count": 2, "platform": "linux-x86_64", "python": "3.12.1"}
        assert hosts_match(a, b)[0]

    def test_unknown_host_never_matches(self):
        assert not hosts_match(None, {"cpu_count": 1})[0]
        assert not hosts_match({"cpu_count": 1}, None)[0]

    def test_cross_backend_runs_never_host_match(self):
        # Timings from differently backed runs must downgrade to warn —
        # a JIT run gating against a NumPy baseline would be noise.
        a = {"cpu_count": 2, "platform": "linux-x86_64", "kernel_backend": "numpy"}
        b = {"cpu_count": 2, "platform": "linux-x86_64", "kernel_backend": "native"}
        ok, note = hosts_match(a, b)
        assert not ok and "kernel_backend" in note

    def test_legacy_host_blocks_default_to_numpy_backend(self):
        # Baselines committed before the backend field were NumPy-backed:
        # they keep matching numpy runs and keep mismatching native ones.
        legacy = {"cpu_count": 2, "platform": "linux-x86_64"}
        numpy_run = dict(legacy, kernel_backend="numpy")
        native_run = dict(legacy, kernel_backend="native")
        assert hosts_match(legacy, numpy_run)[0]
        assert not hosts_match(legacy, native_run)[0]


def test_host_metadata_shape():
    host = host_metadata()
    assert set(host) == {
        "cpu_count",
        "pid_cpu_count",
        "platform",
        "python",
        "kernel_backend",
    }
    assert host["cpu_count"] >= 1
    assert host["kernel_backend"] == "numpy"  # the process default
