"""The per-PR trajectory time series (``BENCH_TRAJECTORY.json``)."""

import json

import pytest

from repro.bench import append_run, load_trajectory, write_artifact
from repro.bench.cli import main as bench_main

RECORD = {"benchmark": "stub", "query_cost": 10, "steps_per_sec": 5.0}


@pytest.fixture
def results(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    write_artifact(RECORD, directory / "BENCH_stub.json", scale="smoke")
    return directory


class TestAppendRun:
    def test_first_append_creates_the_document(self, tmp_path, results):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        entry, appended = append_run(
            trajectory,
            results,
            ["BENCH_stub.json"],
            label="pr-7",
            timestamp="2026-08-07T00:00:00+00:00",
        )
        assert appended
        assert entry["sequence"] == 1
        assert entry["label"] == "pr-7"
        assert entry["scale"] == "smoke"
        doc = json.loads(trajectory.read_text())
        assert doc["schema_version"] == 1
        assert doc["runs"][0]["artifacts"]["BENCH_stub.json"]["metrics"] == {
            "query_cost": 10,
            "steps_per_sec": 5.0,
        }

    def test_appends_grow_the_series_in_order(self, tmp_path, results):
        # Distinct labels = distinct runs, even over identical artifacts.
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        for expected in (1, 2, 3):
            entry, appended = append_run(
                trajectory, results, ["BENCH_stub.json"], label=f"pr-{expected}"
            )
            assert appended
            assert entry["sequence"] == expected
        assert len(load_trajectory(trajectory)["runs"]) == 3

    def test_mixed_scales_are_labelled_mixed(self, tmp_path, results):
        write_artifact(RECORD, results / "BENCH_full.json", scale="full")
        entry, _ = append_run(
            tmp_path / "t.json", results, ["BENCH_stub.json", "BENCH_full.json"]
        )
        assert entry["scale"] == "mixed"

    def test_missing_artifact_fails_without_touching_the_file(
        self, tmp_path, results
    ):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        append_run(trajectory, results, ["BENCH_stub.json"])
        before = trajectory.read_text()
        with pytest.raises(FileNotFoundError, match="BENCH_ghost.json"):
            append_run(trajectory, results, ["BENCH_stub.json", "BENCH_ghost.json"])
        assert trajectory.read_text() == before

    def test_corrupt_trajectory_fails_loudly(self, tmp_path, results):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        trajectory.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="trajectory"):
            append_run(trajectory, results, ["BENCH_stub.json"])

    def test_empty_artifact_list_is_rejected(self, tmp_path, results):
        with pytest.raises(ValueError, match="empty"):
            append_run(tmp_path / "t.json", results, [])


class TestAppendIdempotence:
    """A re-run CI job replaying the same append must not duplicate runs."""

    def test_same_label_same_results_skips(self, tmp_path, results):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        first, appended = append_run(
            trajectory, results, ["BENCH_stub.json"], label="ci-abc"
        )
        assert appended
        before = trajectory.read_text()
        again, appended = append_run(
            trajectory, results, ["BENCH_stub.json"], label="ci-abc"
        )
        assert not appended
        assert again["sequence"] == first["sequence"] == 1
        # The skip leaves the document byte-identical — no rewrite at all.
        assert trajectory.read_text() == before
        assert len(load_trajectory(trajectory)["runs"]) == 1

    def test_different_label_appends_over_identical_results(
        self, tmp_path, results
    ):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        append_run(trajectory, results, ["BENCH_stub.json"], label="ci-abc")
        entry, appended = append_run(
            trajectory, results, ["BENCH_stub.json"], label="ci-def"
        )
        assert appended
        assert entry["sequence"] == 2

    def test_changed_results_append_under_the_same_label(self, tmp_path, results):
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        append_run(trajectory, results, ["BENCH_stub.json"], label="ci-abc")
        write_artifact(
            {**RECORD, "query_cost": 11},
            results / "BENCH_stub.json",
            scale="smoke",
        )
        entry, appended = append_run(
            trajectory, results, ["BENCH_stub.json"], label="ci-abc"
        )
        assert appended
        assert entry["sequence"] == 2

    def test_cli_reports_the_skip(self, tmp_path, monkeypatch, capsys, results):
        monkeypatch.setattr(
            "repro.bench.cli.suite_artifacts", lambda suite: ["BENCH_stub.json"]
        )
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        argv = [
            "append",
            "--results",
            str(results),
            "--trajectory",
            str(trajectory),
            "--label",
            "ci",
        ]
        assert bench_main(argv) == 0
        capsys.readouterr()
        assert bench_main(argv) == 0
        out = capsys.readouterr().out
        assert "skipped duplicate of run #1" in out
        assert len(load_trajectory(trajectory)["runs"]) == 1


class TestAppendCli:
    def test_append_subcommand_uses_the_suite_artifact_list(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.cli.suite_artifacts", lambda suite: ["BENCH_stub.json"]
        )
        results = tmp_path / "results"
        results.mkdir()
        write_artifact(RECORD, results / "BENCH_stub.json", scale="smoke")
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        code = bench_main(
            [
                "append",
                "--results",
                str(results),
                "--trajectory",
                str(trajectory),
                "--label",
                "ci",
            ]
        )
        assert code == 0
        assert "run #1" in capsys.readouterr().out
        assert load_trajectory(trajectory)["runs"][0]["label"] == "ci"

    def test_append_without_results_exits_nonzero(self, tmp_path, capsys):
        code = bench_main(
            [
                "append",
                "--results",
                str(tmp_path / "nowhere"),
                "--trajectory",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 1
        assert "missing" in capsys.readouterr().err
