"""The atomic write-temp-then-rename discipline every artifact goes through."""

import json
import os

import pytest

from repro.bench import atomic_write_json, load_json


def _tmp_droppings(directory):
    return [name for name in os.listdir(directory) if name.endswith(".tmp")]


def test_round_trips_and_leaves_no_temp_files(tmp_path):
    target = tmp_path / "BENCH_x.json"
    atomic_write_json(target, {"a": 1, "b": [1.5, True]})
    assert load_json(target) == {"a": 1, "b": [1.5, True]}
    assert _tmp_droppings(tmp_path) == []
    # File ends with a newline (plays nicely with git diffs).
    assert target.read_text().endswith("\n")


def test_overwrite_replaces_whole_document(tmp_path):
    target = tmp_path / "BENCH_x.json"
    atomic_write_json(target, {"generation": 1, "extra": "long" * 100})
    atomic_write_json(target, {"generation": 2})
    assert load_json(target) == {"generation": 2}


def test_missing_directory_fails_loudly(tmp_path):
    with pytest.raises(FileNotFoundError, match="does not exist"):
        atomic_write_json(tmp_path / "nope" / "BENCH_x.json", {})


def test_parent_is_a_file_fails_loudly(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    with pytest.raises(FileNotFoundError, match="does not exist"):
        atomic_write_json(blocker / "BENCH_x.json", {})


def test_failed_serialization_preserves_old_artifact(tmp_path):
    # A crash mid-dump must leave the previous baseline bytes intact and
    # clean up its temporary file — never a truncated/corrupt JSON.
    target = tmp_path / "BENCH_x.json"
    atomic_write_json(target, {"good": 1})
    with pytest.raises(ValueError):
        atomic_write_json(target, {"bad": float("nan")})
    assert load_json(target) == {"good": 1}
    assert _tmp_droppings(tmp_path) == []


def test_unserializable_document_never_creates_target(tmp_path):
    target = tmp_path / "BENCH_x.json"
    with pytest.raises(TypeError):
        atomic_write_json(target, {"bad": object()})
    assert not target.exists()
    assert _tmp_droppings(tmp_path) == []


def test_load_json_reports_corrupt_file_with_path(tmp_path):
    target = tmp_path / "BENCH_x.json"
    target.write_text('{"truncated": ')
    with pytest.raises(ValueError, match="BENCH_x.json"):
        load_json(target)


def test_accepts_string_paths(tmp_path):
    target = str(tmp_path / "BENCH_x.json")
    atomic_write_json(target, [1, 2, 3])
    assert json.loads(open(target).read()) == [1, 2, 3]
