"""The regression gate itself, driven through synthetic artifact fixtures.

These are the acceptance fixtures from the harness's contract: a clean
current-vs-baseline run exits 0; an injected ≥20% steps/sec regression
and a 1-query query-cost drift both exit non-zero with a readable
per-metric diff; a host mismatch downgrades timing failures to warnings
while deterministic drift still fails.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.bench import (
    CheckPolicy,
    TimingMode,
    check_directories,
    suite_artifacts,
    write_artifact,
)
from repro.bench.cli import main as bench_main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One synthetic record shaped like the real suite's output: a mix of
#: deterministic metrics (query cost, simulated clock, counts) and
#: timing metrics (steps/sec, real seconds, speedups).
BASE_RECORD = {
    "benchmark": "synthetic_suite",
    "graph": {"model": "barabasi_albert", "nodes": 500, "seed": 42},
    "serial": {"simulated_seconds": 94.5, "real_seconds": 0.05, "query_cost": 1500},
    "designs": {
        "srw": {
            "scalar": {"walks": 200, "steps_per_sec": 700000.0},
            "batch": {"steps_per_sec": 33000000.0, "speedup_vs_scalar": 47.1},
        }
    },
}

HOST_A = {"cpu_count": 1, "pid_cpu_count": 1, "platform": "linux-x86_64"}
HOST_B = {"cpu_count": 8, "pid_cpu_count": 8, "platform": "linux-x86_64"}

ARTIFACTS = ["BENCH_synthetic.json"]


def _write(directory, record, host=HOST_A, scale="smoke", name=ARTIFACTS[0]):
    directory.mkdir(parents=True, exist_ok=True)
    return write_artifact(record, directory / name, scale=scale, host=host)


def _check_cli(baseline, current, *extra):
    return bench_main(
        ["check", "--baseline", str(baseline), "--current", str(current), *extra]
    )


@pytest.fixture
def synthetic_suite(monkeypatch):
    """Point the ``check`` CLI at the synthetic artifact instead of the
    real five-writer suite, so fixtures only have to provide one file."""
    monkeypatch.setattr(
        "repro.bench.cli.suite_artifacts", lambda suite: ARTIFACTS
    )


@pytest.fixture
def dirs(tmp_path, synthetic_suite):
    baseline, current = tmp_path / "baseline", tmp_path / "current"
    _write(baseline, BASE_RECORD)
    return baseline, current


class TestCleanRun:
    def test_identical_records_pass(self, dirs):
        baseline, current = dirs
        _write(current, copy.deepcopy(BASE_RECORD))
        report = check_directories(baseline, current, ARTIFACTS)
        assert report.ok
        assert report.failures == []

    def test_timing_jitter_within_tolerance_passes(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        # 10% slower steps/sec and 15% more real seconds: inside the band.
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.90
        record["serial"]["real_seconds"] *= 1.15
        _write(current, record)
        assert check_directories(baseline, current, ARTIFACTS).ok

    def test_timing_improvement_never_fails(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 3.0
        record["serial"]["real_seconds"] *= 0.2
        _write(current, record)
        assert check_directories(baseline, current, ARTIFACTS).ok


class TestDeterministicDrift:
    def test_one_query_cost_drift_fails(self, dirs, capsys):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["serial"]["query_cost"] += 1  # off by a single query
        _write(current, record)
        assert _check_cli(baseline, current) == 1
        out = capsys.readouterr().out
        # The diff must name the metric and both values, readably.
        assert "serial.query_cost" in out
        assert "1500" in out and "1501" in out
        assert "FAIL" in out

    def test_simulated_clock_drift_fails(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["serial"]["simulated_seconds"] += 0.25
        _write(current, record)
        report = check_directories(baseline, current, ARTIFACTS)
        assert not report.ok
        assert [d.key for d in report.failures] == ["serial.simulated_seconds"]

    def test_deterministic_drift_fails_even_across_hosts(self, dirs):
        # Host mismatch softens timing only — a query-cost change is a
        # behavior change on any machine.
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["serial"]["query_cost"] -= 1
        _write(current, record, host=HOST_B)
        report = check_directories(baseline, current, ARTIFACTS)
        assert not report.ok

    def test_deterministic_drift_fails_even_in_warn_timing_mode(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["walks"] = 199
        _write(current, record)
        assert _check_cli(baseline, current, "--timing", "warn") == 1


class TestTimingRegressions:
    def test_twenty_percent_steps_per_sec_regression_fails(self, dirs, capsys):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.79  # >20% drop
        _write(current, record)
        assert _check_cli(baseline, current) == 1
        out = capsys.readouterr().out
        assert "designs.srw.scalar.steps_per_sec" in out
        assert "regression" in out

    def test_host_mismatch_downgrades_timing_to_warning(self, dirs, capsys):
        # The 1-core CI container must never hard-fail a multi-core
        # baseline's timing numbers.
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.5
        _write(current, record, host=HOST_B)
        assert _check_cli(baseline, current) == 0
        out = capsys.readouterr().out
        assert "WARN" in out and "cpu_count" in out

    def test_warn_mode_downgrades_timing_even_on_matching_hosts(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.5
        _write(current, record)
        assert _check_cli(baseline, current, "--timing", "warn") == 0
        report = check_directories(
            baseline,
            current,
            ARTIFACTS,
            CheckPolicy(timing_mode=TimingMode.WARN),
        )
        assert report.ok
        assert len(report.warnings) == 1

    def test_tolerance_is_configurable(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.90
        _write(current, record)
        assert _check_cli(baseline, current, "--tolerance", "0.05") == 1
        assert _check_cli(baseline, current, "--tolerance", "0.20") == 0


#: The min_timing_seconds fixture: one duration under the 10 ms noise
#: floor, one far above it, both swung by the same 30%.
FLOOR_RECORD = {
    "benchmark": "floor_suite",
    "micro": {"real_seconds": 0.008},
    "macro": {"real_seconds": 2.0},
}


class TestTimingFloor:
    """Sub-floor durations are jitter, not signal — even in gate mode."""

    def _swing(self, tmp_path, factor=1.30):
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        _write(baseline, copy.deepcopy(FLOOR_RECORD))
        record = copy.deepcopy(FLOOR_RECORD)
        record["micro"]["real_seconds"] *= factor
        record["macro"]["real_seconds"] *= factor
        _write(current, record)
        return baseline, current

    def test_sub_floor_swing_warns_while_slow_metric_fails(
        self, tmp_path, synthetic_suite, capsys
    ):
        # Same 30% swing, matching hosts, gate mode: the 8 ms metric
        # warns (under the default 0.01 s floor), the 2 s metric fails.
        baseline, current = self._swing(tmp_path)
        report = check_directories(baseline, current, ARTIFACTS)
        assert not report.ok
        assert [d.key for d in report.failures] == ["macro.real_seconds"]
        assert [d.key for d in report.warnings] == ["micro.real_seconds"]
        assert "min_timing_seconds floor" in report.warnings[0].message
        assert _check_cli(baseline, current) == 1
        out = capsys.readouterr().out
        assert "WARN" in out and "min_timing_seconds floor" in out

    def test_floor_is_configurable_and_zero_disables(
        self, tmp_path, synthetic_suite
    ):
        baseline, current = self._swing(tmp_path)
        # Floor disabled: both duration swings gate.
        report = check_directories(
            baseline, current, ARTIFACTS, CheckPolicy(min_timing_seconds=0.0)
        )
        assert {d.key for d in report.failures} == {
            "micro.real_seconds",
            "macro.real_seconds",
        }
        assert _check_cli(baseline, current, "--min-timing-seconds", "0") == 1
        # Floor above both baselines: everything warns, exit 0.
        assert _check_cli(baseline, current, "--min-timing-seconds", "5") == 0

    def test_floor_never_excuses_rate_metrics(self, dirs):
        # steps_per_sec carries no duration; a huge floor must not
        # downgrade its regressions.
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.5
        _write(current, record)
        report = check_directories(
            baseline, current, ARTIFACTS, CheckPolicy(min_timing_seconds=1e9)
        )
        assert not report.ok
        assert "steps_per_sec" in report.failures[0].key


class TestStructuralProblems:
    def test_missing_current_artifact_fails(self, dirs, capsys):
        baseline, current = dirs
        current.mkdir()
        assert _check_cli(baseline, current) == 1
        assert "produced no" in capsys.readouterr().out

    def test_missing_baseline_warns_but_passes(
        self, tmp_path, synthetic_suite, capsys
    ):
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        baseline.mkdir()
        _write(current, BASE_RECORD)
        assert _check_cli(baseline, current) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_scale_mismatch_fails(self, dirs):
        baseline, current = dirs
        _write(current, copy.deepcopy(BASE_RECORD), scale="full")
        report = check_directories(baseline, current, ARTIFACTS)
        assert not report.ok
        assert "scale mismatch" in report.failures[0].message

    def test_metric_disappearance_fails_new_metric_warns(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        del record["designs"]["srw"]["scalar"]["walks"]
        record["designs"]["srw"]["scalar"]["new_counter"] = 7
        _write(current, record)
        report = check_directories(baseline, current, ARTIFACTS)
        assert [d.key for d in report.failures] == ["designs.srw.scalar.walks"]
        assert any(
            d.key == "designs.srw.scalar.new_counter" for d in report.warnings
        )

    def test_benchmark_rename_fails(self, dirs):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["benchmark"] = "renamed_suite"
        _write(current, record)
        report = check_directories(baseline, current, ARTIFACTS)
        assert not report.ok
        assert "benchmark name changed" in report.failures[0].message

    def test_legacy_baseline_compares_with_timing_warnings(self, tmp_path):
        # Pre-envelope baselines (bare records) still gate deterministic
        # metrics; their unknown host keeps timing warn-only.
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        baseline.mkdir()
        (baseline / ARTIFACTS[0]).write_text(json.dumps(BASE_RECORD))
        record = copy.deepcopy(BASE_RECORD)
        record["designs"]["srw"]["scalar"]["steps_per_sec"] *= 0.5  # timing
        _write(current, record)
        report = check_directories(baseline, current, ARTIFACTS)
        assert report.ok  # timing-only drift: warned, not failed
        record["serial"]["query_cost"] += 1  # deterministic
        _write(current, record)
        assert not check_directories(baseline, current, ARTIFACTS).ok


class TestReportSurface:
    def test_json_report_mode(self, dirs, capsys):
        baseline, current = dirs
        record = copy.deepcopy(BASE_RECORD)
        record["serial"]["query_cost"] += 1
        _write(current, record)
        assert _check_cli(baseline, current, "--json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        diffs = doc["artifacts"][0]["diffs"]
        assert any(d["key"] == "serial.query_cost" for d in diffs)

    def test_render_summarizes_compared_counts(self, dirs):
        baseline, current = dirs
        _write(current, copy.deepcopy(BASE_RECORD))
        report = check_directories(baseline, current, ARTIFACTS)
        text = report.render()
        assert "PASS" in text
        assert "exact" in text and "timing" in text


class TestCommittedBaselines:
    """The acceptance criterion against the real repository tree."""

    def test_clean_tree_self_check_exits_zero(self, capsys):
        # `repro.bench check --baseline .` on a clean tree: every
        # committed artifact equals itself, so the gate passes.
        assert (
            bench_main(
                [
                    "check",
                    "--baseline",
                    str(REPO_ROOT),
                    "--current",
                    str(REPO_ROOT),
                ]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_committed_artifacts_are_normalized_envelopes(self):
        for artifact in suite_artifacts("smoke"):
            doc = json.loads((REPO_ROOT / artifact).read_text())
            assert doc.get("schema_version") == 1, artifact
            assert doc.get("scale") == "smoke", artifact
            assert "cpu_count" in doc.get("host", {}), artifact
            assert isinstance(doc.get("metrics"), dict) and doc["metrics"], artifact
