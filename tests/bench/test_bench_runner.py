"""The suite runner: one entry point executing the writer scripts."""

import textwrap

import pytest

from repro.bench import (
    SUITES,
    BenchJob,
    BenchRunError,
    load_artifact,
    run_suite,
    suite_artifacts,
)
from repro.bench.runner import _child_env

#: A stand-in writer with the real writers' CLI contract: ``--out`` plus
#: optional ``--quick``, emitting one enveloped artifact via repro.bench.
STUB_WRITER = textwrap.dedent(
    """
    import argparse
    import sys

    from repro.bench import write_artifact

    parser = argparse.ArgumentParser()
    parser.add_argument("--out", required=True)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--fail", action="store_true")
    args = parser.parse_args()
    if args.fail:
        print("stub writer exploded deterministically", file=sys.stderr)
        raise SystemExit(3)
    record = {"benchmark": "stub", "value": 41 + int(args.quick)}
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    """
)


@pytest.fixture
def bench_dir(tmp_path):
    directory = tmp_path / "benchmarks"
    directory.mkdir()
    (directory / "bench_stub.py").write_text(STUB_WRITER)
    return directory


def _job(name="stub", artifact="BENCH_stub.json", argv=("--quick",)):
    return BenchJob(name, "bench_stub.py", artifact, tuple(argv))


class TestRunSuite:
    def test_runs_writers_and_collects_artifacts(self, bench_dir, tmp_path):
        out = tmp_path / "results"
        jobs = [_job(), _job(name="other", artifact="BENCH_other.json", argv=())]
        produced = run_suite(jobs, out, bench_dir=bench_dir, echo=lambda _: None)
        assert sorted(p.name for p in produced) == [
            "BENCH_other.json",
            "BENCH_stub.json",
        ]
        smoke = load_artifact(out / "BENCH_stub.json")
        full = load_artifact(out / "BENCH_other.json")
        # The --quick flag in the pinned argv became the scale tag.
        assert smoke.scale == "smoke" and smoke.metrics["value"] == 42
        assert full.scale == "full" and full.metrics["value"] == 41

    def test_creates_output_directory(self, bench_dir, tmp_path):
        out = tmp_path / "deep" / "results"
        run_suite([_job()], out, bench_dir=bench_dir, echo=lambda _: None)
        assert (out / "BENCH_stub.json").is_file()

    def test_failing_writer_raises_with_exit_code(self, bench_dir, tmp_path):
        jobs = [_job(argv=("--fail",))]
        with pytest.raises(BenchRunError, match="stub: exited with code 3"):
            run_suite(jobs, tmp_path / "r", bench_dir=bench_dir, echo=lambda _: None)

    def test_failure_reports_writer_name_and_stderr(self, bench_dir, tmp_path):
        jobs = [_job(argv=("--fail",))]
        with pytest.raises(BenchRunError) as excinfo:
            run_suite(jobs, tmp_path / "r", bench_dir=bench_dir, echo=lambda _: None)
        message = str(excinfo.value)
        assert "stub: exited with code 3" in message
        assert "stub writer exploded deterministically" in message

    def test_failure_leaves_no_partial_output_directory(self, bench_dir, tmp_path):
        out = tmp_path / "results"
        jobs = [_job(argv=("--fail",)), _job(name="ok", artifact="BENCH_ok.json")]
        with pytest.raises(BenchRunError) as excinfo:
            run_suite(jobs, out, bench_dir=bench_dir, echo=lambda _: None)
        # The output directory is untouched — `check` can never mistake a
        # failed run for a clean one.
        assert not out.exists()
        # The staged artifact of the successful writer survives for
        # inspection, at the path named in the error.
        staging = [p for p in tmp_path.glob("results.*") if p.is_dir()]
        assert len(staging) == 1
        assert str(staging[0]) in str(excinfo.value)
        assert (staging[0] / "BENCH_ok.json").is_file()

    def test_failure_preserves_previous_results(self, bench_dir, tmp_path):
        out = tmp_path / "results"
        run_suite([_job()], out, bench_dir=bench_dir, echo=lambda _: None)
        before = (out / "BENCH_stub.json").read_bytes()
        with pytest.raises(BenchRunError):
            run_suite(
                [_job(argv=("--fail",))],
                out,
                bench_dir=bench_dir,
                echo=lambda _: None,
            )
        assert (out / "BENCH_stub.json").read_bytes() == before

    def test_missing_script_raises(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        job = BenchJob("ghost", "bench_ghost.py", "BENCH_ghost.json")
        with pytest.raises(BenchRunError, match="not found"):
            run_suite(
                [job],
                tmp_path / "r",
                bench_dir=tmp_path / "benchmarks",
                echo=lambda _: None,
            )

    def test_only_filter_selects_and_validates_names(self, bench_dir, tmp_path):
        jobs = [_job(), _job(name="other", artifact="BENCH_other.json")]
        produced = run_suite(
            jobs,
            tmp_path / "r",
            bench_dir=bench_dir,
            only=["other"],
            echo=lambda _: None,
        )
        assert [p.name for p in produced] == ["BENCH_other.json"]
        with pytest.raises(BenchRunError, match="unknown benchmark name"):
            run_suite(
                jobs,
                tmp_path / "r",
                bench_dir=bench_dir,
                only=["nope"],
                echo=lambda _: None,
            )


class TestPinnedSuites:
    def test_smoke_and_full_cover_the_six_artifacts(self):
        expected = {
            "BENCH_throughput.json",
            "BENCH_querycost.json",
            "BENCH_parallel.json",
            "BENCH_asynccrawl.json",
            "BENCH_service.json",
            "BENCH_faults.json",
        }
        assert set(suite_artifacts("smoke")) == expected
        assert set(suite_artifacts("full")) == expected

    def test_smoke_jobs_are_pinned_to_quick_scale(self):
        for job in SUITES["smoke"]:
            assert "--quick" in job.argv, job.name

    def test_writer_scripts_exist_in_the_repo(self):
        from pathlib import Path

        bench_root = Path(__file__).resolve().parents[2] / "benchmarks"
        for job in SUITES["smoke"]:
            assert (bench_root / job.script).is_file(), job.script


def test_child_env_exposes_repro_source_tree():
    import os
    from pathlib import Path

    import repro

    env = _child_env()
    src = str(Path(repro.__file__).resolve().parent.parent)
    assert src in env["PYTHONPATH"].split(os.pathsep)
