"""Regression: benchmark reports must render exactly once per run.

``benchmarks/support.py`` used to print each rendered result live *and*
re-emit it from the terminal-summary hook — under ``pytest -s`` every
report appeared twice.  The emission logic now lives in
``emit_terminal_summary`` so the dedupe rule is directly testable: the
hook writes the block only when the live prints were captured (i.e. not
shown).
"""

import pytest

from benchmarks import support


@pytest.fixture(autouse=True)
def isolated_results(monkeypatch):
    monkeypatch.setattr(support, "RENDERED_RESULTS", [])


def _collect():
    lines = []
    return lines, lines.append


def test_captured_run_emits_each_result_once_via_the_hook():
    support.RENDERED_RESULTS.extend(["table A", "table B"])
    lines, write_line = _collect()
    assert support.emit_terminal_summary(write_line, already_shown_live=False)
    body = "\n".join(lines)
    assert body.count("table A") == 1
    assert body.count("table B") == 1
    assert "Measured experiment results" in body


def test_unbuffered_run_skips_the_hook_reprint():
    # Under `pytest -s` the live print() already reached the terminal:
    # the summary hook must not duplicate every report.
    support.RENDERED_RESULTS.extend(["table A"])
    lines, write_line = _collect()
    assert not support.emit_terminal_summary(write_line, already_shown_live=True)
    assert lines == []


def test_no_results_means_no_summary_block():
    lines, write_line = _collect()
    assert not support.emit_terminal_summary(write_line, already_shown_live=False)
    assert lines == []


def test_run_and_render_registers_and_prints_live(capsys):
    class _Benchmark:
        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    calls = {}

    def fake_run(experiment_id, scale, seed):
        calls["args"] = (experiment_id, scale, seed)
        return "RESULT"

    import benchmarks.support as mod

    original_run, original_render = mod.run_experiment, mod.render_result
    mod.run_experiment, mod.render_result = fake_run, lambda r: f"rendered {r}"
    try:
        result = support.run_and_render(_Benchmark(), "figure6", seed=5)
    finally:
        mod.run_experiment, mod.render_result = original_run, original_render
    assert result == "RESULT"
    assert calls["args"] == ("figure6", "quick", 5)
    assert support.RENDERED_RESULTS == ["rendered RESULT"]
    # Exactly one live print of the rendered block.
    assert capsys.readouterr().out.count("rendered RESULT") == 1
