"""Batched crawl-aware WS-BW: K=1 scalar parity, query-cost parity, law.

The contract pinned here is the charged-API twin of the forward batch
engine's: at ``K = 1``, :func:`repro.core.weighted.ws_bw_batch` consumes
the RNG stream exactly as the scalar estimator does and reproduces its
realization bit for bit — same importance weights, same unique-node query
cost, same raw calls, same backward-step count, same generator state
afterwards.  At ``K > 1`` each walk keeps the scalar law (checked against
matrix-power ground truth), and estimating every node of a graph charges
exactly ``|V|`` unique queries on both engines.
"""

import numpy as np
import pytest

from repro.core.crawl import InitialCrawl
from repro.core.weighted import (
    BackwardStats,
    ForwardHistory,
    smoothing_constant,
    smoothing_constants,
    weighted_backward_estimate,
    ws_bw_batch,
)
from repro.errors import ConfigurationError, GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.osn.restrictions import FixedRandomKRestriction, TruncatedKRestriction
from repro.rng import ensure_rng
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk

T = 7


def designs_for(graph):
    return [
        SimpleRandomWalk(),
        MetropolisHastingsWalk(),
        LazyWalk(SimpleRandomWalk(), 0.3),
        LazyWalk(MetropolisHastingsWalk(), 0.4),
        MaxDegreeWalk(graph.max_degree()),
    ]


def build_history(graph, design, walks=10, seed=99):
    history = ForwardHistory(0, T)
    rng = ensure_rng(seed)
    for _ in range(walks):
        history.record(run_walk(graph, design, 0, T, seed=rng))
    return history


def scalar_vs_batch(graph, design, node, history, crawl_hops, seed, restriction=None):
    """Run both engines on fresh APIs; return their full observable state."""
    outcomes = []
    for runner in ("scalar", "batch"):
        api = SocialNetworkAPI(graph, restriction=restriction)
        crawl = (
            InitialCrawl(api, design, 0, crawl_hops) if crawl_hops else None
        )
        rng = ensure_rng(seed)
        stats = BackwardStats()
        if runner == "scalar":
            value = weighted_backward_estimate(
                api,
                design,
                node,
                0,
                T,
                history=history,
                epsilon=0.2,
                seed=rng,
                crawl=crawl,
                stats=stats,
            )
        else:
            value = float(
                ws_bw_batch(
                    api,
                    design,
                    np.array([node]),
                    0,
                    T,
                    history=history,
                    epsilon=0.2,
                    seed=rng,
                    crawl=crawl,
                    stats=stats,
                )[0]
            )
        outcomes.append(
            (
                value,
                api.query_cost,
                api.raw_calls,
                stats.steps,
                stats.walks,
                rng.bit_generator.state,
            )
        )
    return outcomes


@pytest.mark.parametrize("graph_name", ["small_ba", "small_cycle", "star5"])
@pytest.mark.parametrize("use_history", [False, True], ids=["uniform", "weighted"])
@pytest.mark.parametrize("crawl_hops", [0, 2], ids=["nocrawl", "crawl2"])
def test_k1_parity_across_designs(request, graph_name, use_history, crawl_hops):
    graph = request.getfixturevalue(graph_name)
    n = graph.number_of_nodes()
    for design in designs_for(graph):
        history = build_history(graph, design) if use_history else None
        for seed in range(6):
            node = int(np.random.default_rng(seed).integers(0, n))
            scalar, batch = scalar_vs_batch(
                graph, design, node, history, crawl_hops, seed
            )
            assert scalar == batch, (design.name, seed, node)


def test_k1_parity_under_call_stable_restrictions(small_ba):
    for make in (
        lambda: FixedRandomKRestriction(3, seed=5),
        lambda: TruncatedKRestriction(3),
    ):
        for design in (SimpleRandomWalk(), MetropolisHastingsWalk()):
            for seed in range(6):
                node = int(np.random.default_rng(seed).integers(0, 30))
                api_s = SocialNetworkAPI(small_ba, restriction=make())
                api_b = SocialNetworkAPI(small_ba, restriction=make())
                r1, r2 = ensure_rng(seed), ensure_rng(seed)
                value_s = weighted_backward_estimate(
                    api_s, design, node, 0, T, history=None, seed=r1
                )
                value_b = float(
                    ws_bw_batch(api_b, design, np.array([node]), 0, T, seed=r2)[0]
                )
                assert value_s == value_b
                assert api_s.query_cost == api_b.query_cost
                assert r1.bit_generator.state == r2.bit_generator.state


def test_free_graph_view_matches_charged_api(small_ba):
    # The generic (tuple) path over a plain Graph draws the same stream.
    design = SimpleRandomWalk()
    history = build_history(small_ba, design)
    for seed in range(6):
        node = int(np.random.default_rng(seed).integers(0, 30))
        r1, r2 = ensure_rng(seed), ensure_rng(seed)
        value_graph = float(
            ws_bw_batch(
                small_ba, design, np.array([node]), 0, T, history=history, seed=r1
            )[0]
        )
        api = SocialNetworkAPI(small_ba)
        value_api = float(
            ws_bw_batch(api, design, np.array([node]), 0, T, history=history, seed=r2)[
                0
            ]
        )
        assert value_graph == value_api


def test_full_graph_estimation_has_identical_query_cost(small_ba):
    # Estimating p_t for every node fetches every node on both engines:
    # the query cost is |V| exactly, seed-independent, batch or scalar.
    design = MetropolisHastingsWalk()
    history = build_history(small_ba, design)
    targets = np.asarray(small_ba.nodes())
    api_s = SocialNetworkAPI(small_ba)
    rng = ensure_rng(3)
    for node in targets.tolist():
        weighted_backward_estimate(
            api_s, design, int(node), 0, T, history=history, seed=rng
        )
    api_b = SocialNetworkAPI(small_ba)
    values = ws_bw_batch(
        api_b, design, targets, 0, T, history=history, seed=ensure_rng(3)
    )
    assert values.shape == targets.shape
    assert api_s.query_cost == api_b.query_cost == small_ba.number_of_nodes()


@pytest.mark.parametrize(
    "design",
    [SimpleRandomWalk(), MetropolisHastingsWalk()],
    ids=lambda d: d.name,
)
def test_batch_realizations_unbiased(design, small_ba):
    t = 5
    matrix = TransitionMatrix(small_ba, design)
    truth = matrix.step_distribution(0, t)
    history = ForwardHistory(0, t)
    rng = ensure_rng(5)
    for _ in range(40):
        history.record(run_walk(small_ba, design, 0, t, seed=rng))
    node, repeats = 7, 3000
    values = ws_bw_batch(
        small_ba,
        design,
        np.full(repeats, node),
        0,
        t,
        history=history,
        epsilon=0.2,
        seed=ensure_rng(11),
    )
    assert np.all(values >= 0.0)
    tolerance = 5 * values.std() / np.sqrt(repeats) + 1e-12
    assert abs(values.mean() - truth[node]) < tolerance


def test_stats_accumulate_k_walks(small_ba):
    stats = BackwardStats()
    ws_bw_batch(
        small_ba, SimpleRandomWalk(), np.array([1, 2, 3]), 0, T, stats=stats, seed=0
    )
    assert stats.walks == 3
    assert stats.steps > 0


def test_negative_node_ids_keep_parity():
    # Negative ids must not wrap around the dense history table.
    from repro.graphs.graph import Graph

    graph = Graph(name="neg")
    graph.add_edges_from([(-1, 0), (0, 1), (1, 2), (2, 0)])
    design = SimpleRandomWalk()
    history = ForwardHistory(0, 3)
    rng = ensure_rng(4)
    for _ in range(50):
        history.record(run_walk(graph, design, 0, 3, seed=rng))
    for seed in range(40):
        r1, r2 = ensure_rng(seed), ensure_rng(seed)
        scalar = weighted_backward_estimate(
            graph, design, 0, 0, 3, history=history, seed=r1
        )
        batch = float(
            ws_bw_batch(graph, design, np.array([0]), 0, 3, history=history, seed=r2)[
                0
            ]
        )
        assert scalar == batch, seed


def test_unsupported_design_rejected_before_charging(small_ba):
    from repro.walks.transitions import BidirectionalWalk

    api = SocialNetworkAPI(small_ba)
    with pytest.raises(ConfigurationError):
        ws_bw_batch(api, BidirectionalWalk(), np.array([0, 1]), 0, T, seed=0)
    assert api.query_cost == 0  # rejected before any budget was spent


def test_type1_restriction_rejected(small_ba):
    # Fresh-subset responses cannot be cached, so no batched walk can
    # reproduce the scalar estimator's query pattern; reject loudly
    # instead of silently diverging.
    from repro.osn.restrictions import RandomKRestriction

    api = SocialNetworkAPI(small_ba, restriction=RandomKRestriction(2, seed=1))
    with pytest.raises(ConfigurationError):
        ws_bw_batch(api, SimpleRandomWalk(), np.array([0]), 0, T, seed=0)


def test_validation_errors(small_ba):
    with pytest.raises(ValueError):
        ws_bw_batch(small_ba, SimpleRandomWalk(), np.array([0]), 0, -1)
    with pytest.raises(ConfigurationError):
        ws_bw_batch(small_ba, SimpleRandomWalk(), np.array([0]), 0, T, epsilon=0.0)
    with pytest.raises(ConfigurationError):
        ws_bw_batch(small_ba, SimpleRandomWalk(), np.zeros((2, 2), dtype=int), 0, T)


def test_stuck_walk_raises(path4):
    from repro.graphs.graph import Graph

    graph = Graph(name="lonely")
    graph.add_node(0)
    graph.add_edge(1, 2)
    with pytest.raises(GraphError):
        ws_bw_batch(graph, SimpleRandomWalk(), np.array([0]), 1, 2, seed=0)


def test_t_zero_is_indicator(small_ba):
    values = ws_bw_batch(small_ba, SimpleRandomWalk(), np.array([0, 3, 0]), 0, 0)
    assert values.tolist() == [1.0, 0.0, 1.0]


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------
def test_smoothing_constants_matches_scalar():
    totals = np.array([0, 1, 7, 400], dtype=np.int64)
    sizes = np.array([4, 4, 9, 2], dtype=np.int64)
    got = smoothing_constants(totals, sizes, 0.2)
    expected = [smoothing_constant(int(t), int(k), 0.2) for t, k in zip(totals, sizes)]
    assert got.tolist() == expected


def test_history_counts_arrays_and_dense(small_ba):
    design = SimpleRandomWalk()
    history = build_history(small_ba, design, walks=12)
    for step in range(T + 1):
        ids, counts = history.counts_arrays(step)
        table = history.counts_at(step)
        assert dict(zip(ids.tolist(), counts.tolist())) == table
        dense = history.counts_dense(step)
        assert dense is not None
        for node, count in table.items():
            assert dense[node] == count
        assert dense.sum() == sum(table.values())
    empty_ids, empty_counts = history.counts_arrays(T + 5)
    assert empty_ids.size == 0 and empty_counts.size == 0
    assert history.counts_dense(-1) is None


def test_history_arrays_invalidate_on_record(small_ba):
    design = SimpleRandomWalk()
    history = build_history(small_ba, design, walks=2)
    before = history.counts_arrays(0)[1].sum()
    history.record(run_walk(small_ba, design, 0, T, seed=5))
    assert history.counts_arrays(0)[1].sum() == before + 1


def test_crawl_probabilities_batch(small_ba):
    design = SimpleRandomWalk()
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), design, 0, 2)
    nodes = np.asarray(small_ba.nodes())
    for s in range(3):
        got = crawl.probabilities_batch(nodes, s)
        expected = [crawl.probability(int(n), s) for n in nodes]
        assert got.tolist() == expected
    with pytest.raises(ConfigurationError):
        crawl.probabilities_batch(nodes, 3)


def test_crawl_batched_bfs_charges_like_scalar(small_ba):
    # The layered batch BFS (through neighbors_batch) pays for exactly the
    # nodes the node-at-a-time BFS pays for.
    api_graph = InitialCrawl(small_ba, SimpleRandomWalk(), 0, 2)
    api_charged = SocialNetworkAPI(small_ba)
    crawl = InitialCrawl(api_charged, SimpleRandomWalk(), 0, 2)
    assert crawl.crawled_nodes == api_graph.crawled_nodes
    assert api_charged.query_cost == len(crawl.crawled_nodes)


@pytest.mark.parametrize("larger", [False, True], ids=["ba30", "ba300"])
def test_k1_parity_on_larger_graph(larger, small_ba):
    graph = (
        barabasi_albert_graph(300, 4, seed=13).relabeled() if larger else small_ba
    )
    design = LazyWalk(MetropolisHastingsWalk(), 0.25)
    history = build_history(graph, design, walks=20)
    for seed in range(4):
        node = int(np.random.default_rng(seed).integers(0, graph.number_of_nodes()))
        scalar, batch = scalar_vs_batch(graph, design, node, history, 2, seed)
        assert scalar == batch
