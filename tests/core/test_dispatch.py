"""The unified estimate() dispatcher: specs, JSON round-trips, parity.

The parity classes pin the ISSUE 6 contract: for every engine row of the
ROADMAP table, ``estimate(spec)`` output is bit-identical to the direct
front-end call with the same arguments and seed.
"""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    EstimationJobSpec,
    LongRunWalkEstimateSampler,
    WalkEstimateConfig,
    WalkEstimateSampler,
    design_from_spec,
    design_to_spec,
    estimate,
    long_run_walk_estimate_batch,
    long_run_walk_estimate_sharded,
    walk_estimate_batch,
    walk_estimate_sharded,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import (
    LazyWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

DESIGN_SPECS = {
    "srw": "srw",
    "mhrw": {"name": "mhrw"},
    "lazy-mhrw": {"name": "lazy", "laziness": 0.4, "inner": "mhrw"},
    "maxdeg": {"name": "maxdeg", "max_degree": 40},
}


@pytest.fixture(scope="module")
def hidden():
    return barabasi_albert_graph(150, 4, seed=6).relabeled()


@pytest.fixture(scope="module")
def csr(hidden):
    return hidden.compile()


@pytest.fixture(scope="module")
def config():
    return WalkEstimateConfig(
        walk_length=5,
        crawl_hops=1,
        backward_repetitions=4,
        refine_repetitions=1,
        calibration_walks=5,
    )


def batch_results_equal(a, b):
    return (
        np.array_equal(a.candidates, b.candidates)
        and np.array_equal(a.estimates, b.estimates)
        and np.array_equal(a.target_weights, b.target_weights)
        and np.array_equal(a.acceptance, b.acceptance)
        and np.array_equal(a.accepted, b.accepted)
        and a.forward_steps == b.forward_steps
        and a.backward_steps == b.backward_steps
    )


def sample_batches_equal(a, b):
    return (
        a.nodes == b.nodes
        and a.target_weights == b.target_weights
        and a.query_cost == b.query_cost
        and a.walk_steps == b.walk_steps
    )


class TestDesignSpecs:
    @pytest.mark.parametrize("spec", list(DESIGN_SPECS.values()), ids=DESIGN_SPECS)
    def test_round_trip(self, spec):
        design = design_from_spec(spec)
        canonical = design_to_spec(design)
        rebuilt = design_from_spec(canonical)
        assert design_to_spec(rebuilt) == canonical
        assert rebuilt.name == design.name

    def test_string_shorthand_matches_mapping(self):
        assert design_to_spec(design_from_spec("srw")) == {"name": "srw"}

    def test_nested_lazy(self):
        design = design_from_spec(
            {"name": "lazy", "inner": {"name": "lazy", "inner": "srw"}}
        )
        assert isinstance(design, LazyWalk)
        assert isinstance(design.inner, LazyWalk)
        assert isinstance(design.inner.inner, SimpleRandomWalk)

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown design"):
            design_from_spec("nbrw-ish")

    def test_unexpected_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unexpected keys"):
            design_from_spec({"name": "srw", "laziness": 0.5})

    def test_maxdeg_needs_bound(self):
        with pytest.raises(ConfigurationError, match="max_degree"):
            design_from_spec({"name": "maxdeg"})

    def test_lazy_needs_inner(self):
        with pytest.raises(ConfigurationError, match="inner"):
            design_from_spec({"name": "lazy"})

    def test_unspecable_design_rejected(self):
        class Odd(SimpleRandomWalk):
            pass

        with pytest.raises(ConfigurationError, match="no spec form"):
            design_to_spec(object())
        # Subclasses of specable designs still serialize by isinstance.
        assert design_to_spec(Odd()) == {"name": "srw"}


class TestEngineConfig:
    def test_round_trip(self):
        cfg = EngineConfig(backend="sharded", long_run=True, n_workers=2)
        assert EngineConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            EngineConfig(backend="gpu")

    def test_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown EngineConfig keys"):
            EngineConfig.from_dict({"backend": "batch", "worker_count": 4})

    def test_charged_implies_batch_backward(self):
        assert EngineConfig(backend="charged").effective_batch_backward
        assert not EngineConfig(backend="scalar").effective_batch_backward
        assert EngineConfig(
            backend="scalar", batch_backward=True
        ).effective_batch_backward

    def test_charged_has_no_long_run(self):
        with pytest.raises(ConfigurationError, match="long-run"):
            EngineConfig(backend="charged", long_run=True)

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            EngineConfig(n_workers=0)


class TestJobSpec:
    def test_json_round_trip(self, config):
        spec = EstimationJobSpec(
            design={"name": "lazy", "laziness": 0.3, "inner": "srw"},
            samples=12,
            start=3,
            segments=2,
            error_target=0.5,
            query_budget=400,
            tenant="alice",
            seed=11,
            walk=config,
            engine=EngineConfig(backend="batch", long_run=True),
        )
        assert EstimationJobSpec.from_json(spec.to_json()) == spec
        assert EstimationJobSpec.from_dict(spec.to_dict()) == spec

    def test_design_canonicalized_at_construction(self):
        spec = EstimationJobSpec(design="srw")
        assert spec.design == {"name": "srw"}
        assert isinstance(spec.build_design(), SimpleRandomWalk)

    def test_walk_config_folds_in_charged_flag(self, config):
        spec = EstimationJobSpec(
            design="srw", walk=config, engine=EngineConfig(backend="charged")
        )
        assert spec.walk_config().batch_backward
        assert not spec.walk.batch_backward  # original untouched
        plain = EstimationJobSpec(design="srw", walk=config)
        assert plain.walk_config() is config

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("samples", 0, "samples"),
            ("segments", 0, "segments"),
            ("estimand", "pagerank", "estimand"),
            ("error_target", 0.0, "error_target"),
            ("query_budget", -1, "query_budget"),
            ("tenant", "", "tenant"),
        ],
    )
    def test_validation(self, field, value, match):
        with pytest.raises(ConfigurationError, match=match):
            EstimationJobSpec(**{field: value})

    def test_json_must_be_object(self):
        with pytest.raises(ConfigurationError, match="object"):
            EstimationJobSpec.from_json("[1, 2]")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown EstimationJobSpec"):
            EstimationJobSpec.from_dict({"designs": "srw"})

    def test_with_overrides_revalidates(self):
        spec = EstimationJobSpec(design="srw", samples=5)
        assert spec.with_overrides(samples=9).samples == 9
        with pytest.raises(ConfigurationError, match="samples"):
            spec.with_overrides(samples=0)


class TestScalarParity:
    @pytest.mark.parametrize("name", list(DESIGN_SPECS), ids=list(DESIGN_SPECS))
    def test_scalar_matches_direct_sampler(self, name, hidden, config):
        spec = EstimationJobSpec(
            design=DESIGN_SPECS[name],
            samples=6,
            seed=21,
            walk=config,
            engine=EngineConfig(backend="scalar"),
        )
        via_dispatch = estimate(spec, api=SocialNetworkAPI(hidden))
        direct_api = SocialNetworkAPI(hidden)
        direct = WalkEstimateSampler(spec.build_design(), config).sample(
            direct_api, 0, 6, seed=21
        )
        assert sample_batches_equal(via_dispatch.raw, direct)
        assert via_dispatch.query_cost == direct.query_cost
        assert via_dispatch.to_sample_batch() is via_dispatch.raw

    def test_charged_matches_batch_backward_sampler(self, hidden, config):
        spec = EstimationJobSpec(
            design="srw",
            samples=6,
            seed=33,
            walk=config,
            engine=EngineConfig(backend="charged"),
        )
        via_dispatch = estimate(spec, api=SocialNetworkAPI(hidden))
        direct = WalkEstimateSampler(
            SimpleRandomWalk(), config.with_overrides(batch_backward=True)
        ).sample(SocialNetworkAPI(hidden), 0, 6, seed=33)
        assert sample_batches_equal(via_dispatch.raw, direct)

    def test_charged_differs_from_plain_scalar_stream(self, hidden, config):
        # Sanity that the charged flag actually reaches the sampler: the
        # joint RNG stream of batched backward walks differs from the
        # scalar loop whenever a candidate needs K > 1 repetitions.
        scalar = estimate(
            EstimationJobSpec(
                design="srw", samples=6, seed=33, walk=config,
                engine=EngineConfig(backend="scalar"),
            ),
            api=SocialNetworkAPI(hidden),
        )
        charged = estimate(
            EstimationJobSpec(
                design="srw", samples=6, seed=33, walk=config,
                engine=EngineConfig(backend="charged"),
            ),
            api=SocialNetworkAPI(hidden),
        )
        assert scalar.raw.nodes != charged.raw.nodes

    def test_scalar_long_run_matches_direct(self, hidden, config):
        spec = EstimationJobSpec(
            design="mhrw",
            samples=5,
            seed=9,
            walk=config,
            engine=EngineConfig(backend="scalar", long_run=True),
        )
        via_dispatch = estimate(spec, api=SocialNetworkAPI(hidden))
        direct = LongRunWalkEstimateSampler(
            MetropolisHastingsWalk(), config
        ).sample(SocialNetworkAPI(hidden), 0, 5, seed=9)
        assert sample_batches_equal(via_dispatch.raw, direct)


class TestBatchParity:
    @pytest.mark.parametrize("name", list(DESIGN_SPECS), ids=list(DESIGN_SPECS))
    def test_batch_matches_direct(self, name, csr, config):
        spec = EstimationJobSpec(
            design=DESIGN_SPECS[name],
            samples=25,
            seed=77,
            walk=config,
            engine=EngineConfig(backend="batch"),
        )
        via_dispatch = estimate(spec, graph=csr)
        direct = walk_estimate_batch(
            csr, spec.build_design(), 0, 25, config=config, seed=77
        )
        assert batch_results_equal(via_dispatch.raw, direct)
        assert np.array_equal(via_dispatch.nodes, direct.nodes)
        assert np.array_equal(via_dispatch.weights, direct.weights)
        assert via_dispatch.acceptance_rate == direct.acceptance_rate
        assert via_dispatch.query_cost == 0

    def test_long_run_batch_matches_direct(self, csr, config):
        spec = EstimationJobSpec(
            design="srw",
            samples=8,
            segments=3,
            seed=5,
            walk=config,
            engine=EngineConfig(backend="batch", long_run=True),
        )
        via_dispatch = estimate(spec, graph=csr)
        direct = long_run_walk_estimate_batch(
            csr, SimpleRandomWalk(), 0, 8, 3, config=config, seed=5
        )
        assert batch_results_equal(via_dispatch.raw, direct)

    def test_plain_graph_accepted(self, hidden, config):
        spec = EstimationJobSpec(
            design="srw", samples=10, seed=4, walk=config,
            engine=EngineConfig(backend="batch"),
        )
        via_graph = estimate(spec, graph=hidden)
        via_csr = estimate(spec, graph=hidden.compile())
        assert batch_results_equal(via_graph.raw, via_csr.raw)


class TestShardedParity:
    @pytest.fixture(scope="class")
    def engine(self, csr):
        with ShardedWalkEngine(csr, n_workers=1, mp_context="fork") as eng:
            yield eng

    def test_sharded_matches_direct(self, engine, config):
        spec = EstimationJobSpec(
            design="srw",
            samples=20,
            seed=13,
            walk=config,
            engine=EngineConfig(backend="sharded"),
        )
        via_dispatch = estimate(spec, engine=engine)
        direct = walk_estimate_sharded(
            engine, SimpleRandomWalk(), 0, 20, config=config, seed=13
        )
        assert batch_results_equal(via_dispatch.raw, direct)

    def test_sharded_long_run_matches_direct(self, engine, config):
        spec = EstimationJobSpec(
            design="mhrw",
            samples=6,
            segments=2,
            seed=13,
            walk=config,
            engine=EngineConfig(backend="sharded", long_run=True),
        )
        via_dispatch = estimate(spec, engine=engine)
        direct = long_run_walk_estimate_sharded(
            engine, MetropolisHastingsWalk(), 0, 6, 2, config=config, seed=13
        )
        assert batch_results_equal(via_dispatch.raw, direct)


class TestDispatchResources:
    def test_missing_api(self, config):
        spec = EstimationJobSpec(design="srw", engine=EngineConfig(backend="scalar"))
        with pytest.raises(ConfigurationError, match="api"):
            estimate(spec)

    def test_missing_graph(self):
        spec = EstimationJobSpec(design="srw", engine=EngineConfig(backend="batch"))
        with pytest.raises(ConfigurationError, match="graph"):
            estimate(spec)

    def test_missing_engine(self):
        spec = EstimationJobSpec(design="srw", engine=EngineConfig(backend="sharded"))
        with pytest.raises(ConfigurationError, match="engine"):
            estimate(spec)

    def test_seed_override_wins(self, csr, config):
        spec = EstimationJobSpec(
            design="srw", samples=10, seed=1, walk=config,
            engine=EngineConfig(backend="batch"),
        )
        overridden = estimate(spec, graph=csr, seed=99)
        direct = walk_estimate_batch(
            csr, SimpleRandomWalk(), 0, 10, config=config, seed=99
        )
        assert batch_results_equal(overridden.raw, direct)

    def test_rng_stream_accepted_as_seed(self, csr, config):
        spec = EstimationJobSpec(
            design="srw", samples=10, walk=config,
            engine=EngineConfig(backend="batch"),
        )
        one = estimate(spec, graph=csr, seed=np.random.default_rng(42))
        two = walk_estimate_batch(
            csr, SimpleRandomWalk(), 0, 10, config=config,
            seed=np.random.default_rng(42),
        )
        assert batch_results_equal(one.raw, two)

    def test_result_walk_steps_and_batch_view(self, csr, config):
        spec = EstimationJobSpec(
            design="srw", samples=10, seed=2, walk=config,
            engine=EngineConfig(backend="batch"),
        )
        result = estimate(spec, graph=csr)
        raw = result.raw
        assert result.walk_steps == raw.forward_steps + raw.backward_steps
        assert result.attempts == raw.accepted.size
        assert result.accepted == raw.nodes.size
        repacked = result.to_sample_batch()
        assert repacked.nodes == [int(n) for n in raw.nodes]
