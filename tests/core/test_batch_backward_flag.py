"""The ``batch_backward`` config flag: golden stream, parity, fallback.

Routing the repetition loop through :func:`ws_bw_batch` legitimately
changes the RNG stream (K repetitions interleave their draws level by
level), so the flag is pinned by its own golden fixtures —
``fixtures/batch_backward_golden.json`` — rather than scalar parity.
At ``backward_repetitions=1`` the batch degenerates to K=1, which *is*
bit-exact with the scalar loop; that equivalence is asserted directly.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.estimate import ProbabilityEstimator
from repro.core.walk_estimate import WalkEstimateSampler
from repro.core.weighted import has_batched_transition
from repro.graphs.generators import barabasi_albert_graph
from repro.markov.distributions import step_distributions
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import (
    BidirectionalWalk,
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

FIXTURE = Path(__file__).parent / "fixtures" / "batch_backward_golden.json"

DESIGNS = {
    "srw": SimpleRandomWalk(),
    "mhrw": MetropolisHastingsWalk(),
}


@pytest.fixture(scope="module")
def golden():
    with FIXTURE.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def graph(golden):
    spec = golden["graph"]
    return barabasi_albert_graph(
        spec["nodes"], spec["m"], seed=spec["seed"]
    ).relabeled()


def _config(**overrides) -> WalkEstimateConfig:
    base = dict(
        diameter_hint=3,
        crawl_hops=1,
        backward_repetitions=6,
        refine_repetitions=2,
        calibration_walks=4,
        batch_backward=True,
    )
    base.update(overrides)
    return WalkEstimateConfig(**base)


class TestGoldenStream:
    """The flag's exact sampler output is pinned per design."""

    @pytest.mark.parametrize("design_name", sorted(DESIGNS))
    def test_sampler_reproduces_fixture(self, design_name, golden, graph):
        expected = golden[design_name]
        api = SocialNetworkAPI(graph)
        sampler = WalkEstimateSampler(DESIGNS[design_name], _config())
        batch = sampler.sample(api, start=0, count=8, seed=123)
        report = sampler.last_report
        assert [int(n) for n in batch.nodes] == expected["sample_nodes"]
        assert batch.query_cost == expected["query_cost"]
        assert report.attempts == expected["attempts"]
        assert report.backward_steps == expected["backward_steps"]
        assert [
            r.estimated_probability for r in report.records
        ] == pytest.approx(expected["estimated_probabilities"])


class TestSingleRepetitionParity:
    """K=1 batched backward is bit-exact with the scalar loop."""

    @pytest.mark.parametrize("design_name", sorted(DESIGNS))
    def test_one_repetition_matches_scalar(self, design_name, graph):
        design = DESIGNS[design_name]
        t = 5
        estimates = {}
        for flag in (False, True):
            config = _config(
                walk_length=t,
                crawl_hops=0,
                backward_repetitions=1,
                refine_repetitions=0,
                batch_backward=flag,
            )
            estimator = ProbabilityEstimator(graph, design, 0, t, config, seed=321)
            estimates[flag] = estimator.estimate(7, refine=False).mean
        assert estimates[True] == estimates[False]


class TestFallback:
    def test_design_without_batched_transition_falls_back(self, graph):
        # BidirectionalWalk has no batched transition law; with the flag
        # on the estimator must silently run the scalar loop — producing
        # the exact flag-off stream.
        design = BidirectionalWalk()
        t = 4
        means = {}
        for flag in (False, True):
            config = _config(
                walk_length=t,
                crawl_hops=0,
                backward_repetitions=4,
                refine_repetitions=0,
                batch_backward=flag,
            )
            estimator = ProbabilityEstimator(graph, design, 0, t, config, seed=11)
            means[flag] = estimator.estimate(3, refine=False).mean
        assert means[True] == means[False]

    def test_has_batched_transition_predicate(self):
        assert has_batched_transition(SimpleRandomWalk())
        assert has_batched_transition(MetropolisHastingsWalk())
        assert has_batched_transition(MaxDegreeWalk(100))
        assert has_batched_transition(LazyWalk(SimpleRandomWalk(), 0.5))
        assert not has_batched_transition(BidirectionalWalk())
        assert not has_batched_transition(LazyWalk(BidirectionalWalk(), 0.5))


class TestUnbiasedness:
    def test_batched_estimates_track_exact_probability(self, graph):
        # Mean of many batched realizations must approach the exact
        # p_t(candidate) — the same unbiasedness the scalar estimator
        # guarantees, preserved through the K-repetition routing.
        design = SimpleRandomWalk()
        t = 4
        candidate = 7
        matrix = TransitionMatrix(graph, design)
        exact = None
        for step, p_t in step_distributions(matrix, start=0, max_t=t):
            if step == t:
                exact = float(p_t[candidate])
        config = _config(
            walk_length=t,
            crawl_hops=0,
            backward_repetitions=400,
            refine_repetitions=0,
        )
        estimator = ProbabilityEstimator(graph, design, 0, t, config, seed=99)
        record = estimator.estimate(candidate, refine=False)
        assert record.count == 400
        assert record.mean == pytest.approx(exact, rel=0.35)

    def test_repetition_topup_counts(self, graph):
        config = _config(walk_length=4, crawl_hops=0, refine_repetitions=0)
        estimator = ProbabilityEstimator(
            graph, SimpleRandomWalk(), 0, 4, config, seed=5
        )
        record = estimator.estimate(7, repetitions=3, refine=False)
        assert record.count == 3
        record = estimator.estimate(7, refine=False)  # top up to base 6
        assert record.count == 6
        stats_steps = estimator.stats.walks
        assert stats_steps == 6
