"""WS-BW: history bookkeeping, smoothed proposal, unbiasedness."""

import numpy as np
import pytest

from repro.core.crawl import InitialCrawl
from repro.core.unbiased import backward_candidates
from repro.core.weighted import (
    BackwardStats,
    ForwardHistory,
    backward_step_distribution,
    smoothing_constant,
    weighted_backward_estimate,
)
from repro.errors import ConfigurationError
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk
from repro.walks.walker import run_walk


def make_history(graph, design, start, t, walks, rng):
    history = ForwardHistory(start, t)
    for _ in range(walks):
        history.record(run_walk(graph, design, start, t, seed=rng))
    return history


def test_history_counts(small_ba, rng):
    design = SimpleRandomWalk()
    history = make_history(small_ba, design, 0, 5, 30, rng)
    assert history.total_walks == 30
    assert history.count(0, 0) == 30  # every walk starts at the start
    step1_total = sum(history.count(v, 1) for v in small_ba.nodes())
    assert step1_total == 30  # exactly one position per walk per step
    assert history.count(0, 99) == 0  # out-of-range step


def test_history_rejects_mismatched_walks(small_ba, rng):
    history = ForwardHistory(0, 5)
    wrong_start = run_walk(small_ba, SimpleRandomWalk(), 1, 5, seed=rng)
    with pytest.raises(ConfigurationError):
        history.record(wrong_start)
    wrong_length = run_walk(small_ba, SimpleRandomWalk(), 0, 4, seed=rng)
    with pytest.raises(ConfigurationError):
        history.record(wrong_length)


def test_smoothing_constant_limits():
    # No history: Laplace floor.
    assert smoothing_constant(0, 10, 0.2) == 1.0
    # Rich history: uniform share tends to epsilon.
    c = smoothing_constant(10000, 10, 0.2)
    uniform_share = c * 10 / (10000 + c * 10)
    assert uniform_share == pytest.approx(0.2, rel=0.01)


def test_backward_step_distribution_sums_to_one(small_ba, rng):
    design = SimpleRandomWalk()
    history = make_history(small_ba, design, 0, 4, 25, rng)
    candidates = backward_candidates(small_ba, design, 3)
    pi = backward_step_distribution(candidates, history, 2, epsilon=0.2)
    assert pi.shape == (len(candidates),)
    assert pi.sum() == pytest.approx(1.0)
    assert np.all(pi > 0)  # smoothing keeps every candidate reachable


def test_backward_step_distribution_uniform_without_history(small_ba):
    candidates = backward_candidates(small_ba, SimpleRandomWalk(), 3)
    pi = backward_step_distribution(candidates, None, 2, epsilon=0.2)
    assert np.allclose(pi, 1.0 / len(candidates))


def test_backward_step_distribution_tracks_visits(small_ba, rng):
    design = SimpleRandomWalk()
    history = make_history(small_ba, design, 0, 4, 60, rng)
    candidates = backward_candidates(small_ba, design, 0)
    pi = backward_step_distribution(candidates, history, 1, epsilon=0.2)
    visits = np.array([history.count(c, 1) for c in candidates], dtype=float)
    if visits.sum() > 0:
        # More-visited candidates must get at least as much proposal mass.
        order_pi = np.argsort(pi)
        order_visits = np.argsort(visits)
        assert list(order_pi) == list(order_visits)


@pytest.mark.parametrize(
    "design", [SimpleRandomWalk(), MetropolisHastingsWalk()], ids=lambda d: d.name
)
def test_ws_bw_unbiased_monte_carlo(design, small_ba, rng):
    matrix = TransitionMatrix(small_ba, design)
    t, start, node = 4, 0, 15
    truth = matrix.step_distribution(start, t)[node]
    history = make_history(small_ba, design, start, t, 40, rng)
    draws = np.array(
        [
            weighted_backward_estimate(
                small_ba, design, node, start, t, history=history, seed=rng
            )
            for _ in range(30000)
        ]
    )
    standard_error = draws.std() / np.sqrt(len(draws))
    assert abs(draws.mean() - truth) < 5 * standard_error + 1e-9


def test_ws_bw_without_history_matches_uniform_law(small_ba, rng):
    # With history=None the estimator is the plain uniform backward walk.
    design = SimpleRandomWalk()
    matrix = TransitionMatrix(small_ba, design)
    truth = matrix.step_distribution(0, 3)[10]
    draws = [
        weighted_backward_estimate(
            small_ba, design, 10, 0, 3, history=None, seed=rng
        )
        for _ in range(20000)
    ]
    assert np.mean(draws) == pytest.approx(truth, rel=0.25)


def test_ws_bw_with_crawl_terminates_early(small_ba, rng):
    design = SimpleRandomWalk()
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), design, 0, 2)
    stats = BackwardStats()
    weighted_backward_estimate(
        small_ba, design, 12, 0, 5, history=None, crawl=crawl, seed=rng, stats=stats
    )
    assert stats.walks == 1
    assert stats.steps <= 5 - 2  # stops when depth hits the crawl horizon


def test_ws_bw_validates_inputs(small_ba, rng):
    design = SimpleRandomWalk()
    with pytest.raises(ValueError):
        weighted_backward_estimate(small_ba, design, 1, 0, -1, None, seed=rng)
    with pytest.raises(ConfigurationError):
        weighted_backward_estimate(
            small_ba, design, 1, 0, 2, None, epsilon=0.0, seed=rng
        )


def test_stats_accumulate_across_walks(small_ba, rng):
    design = SimpleRandomWalk()
    stats = BackwardStats()
    for _ in range(5):
        weighted_backward_estimate(
            small_ba, design, 9, 0, 4, history=None, seed=rng, stats=stats
        )
    assert stats.walks == 5
    assert stats.steps <= 20
    assert stats.steps >= 5  # at least one step unless start==node at t=0
