"""IDEAL-WALK: oracle acceptance analysis and zero-bias sampling."""

import numpy as np
import pytest

from repro.core.ideal import IdealWalk
from repro.errors import ConfigurationError
from repro.graphs.generators import barbell_graph, cycle_graph
from repro.walks.transitions import LazyWalk, MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture
def ideal(small_ba):
    return IdealWalk(small_ba, LazyWalk(SimpleRandomWalk(), 0.05), start=0)


def test_acceptance_zero_before_diameter(small_cycle):
    ideal = IdealWalk(small_cycle, LazyWalk(SimpleRandomWalk(), 0.05), start=0)
    # An 11-cycle has diameter 5: nodes at distance > t are unreachable.
    assert ideal.acceptance_probability(2) == 0.0
    assert ideal.expected_cost_per_sample(2) == float("inf")
    assert ideal.acceptance_probability(30) > 0.0


def test_acceptance_increases_then_saturates(ideal):
    values = [ideal.acceptance_probability(t) for t in (4, 8, 16, 64)]
    assert values[0] <= values[1] <= values[2] + 1e-9
    # At t -> infinity acceptance tends to min over v of pi(v)/q(v) > 0.
    assert values[-1] > 0.0


def test_cost_curve_u_shape(ideal):
    # Figure 2's shape: drop to an interior minimum, then ~linear growth.
    costs = {t: ideal.expected_cost_per_sample(t) for t in (2, 4, 8, 32, 128)}
    t_opt, c_min = ideal.optimal_walk_length(max_t=128)
    assert c_min <= min(costs.values())
    assert costs[128] > c_min  # grows past the optimum
    assert 1 <= t_opt < 128


def test_cost_validates_t(ideal):
    with pytest.raises(ConfigurationError):
        ideal.expected_cost_per_sample(0)


def test_input_walk_cost_decreases_with_looser_delta(ideal):
    strict = ideal.input_walk_cost(delta=1e-6)
    loose = ideal.input_walk_cost(delta=1e-2)
    assert strict > loose >= 1
    with pytest.raises(ConfigurationError):
        ideal.input_walk_cost(delta=0.0)


def test_savings_positive_on_social_like_graph(ideal):
    saving = ideal.savings(relative_delta=0.1)
    assert 0.0 < saving < 1.0
    with pytest.raises(ConfigurationError):
        ideal.savings(relative_delta=0.0)


def test_barbell_savings_high():
    # Paper Figure 3: barbell graphs show the largest savings.
    graph = barbell_graph(31).relabeled()
    ideal = IdealWalk(graph, LazyWalk(SimpleRandomWalk(), 0.05), start=0)
    assert ideal.savings(relative_delta=0.1) > 0.5


def test_sampling_distribution_matches_target(small_ba, rng):
    # Zero-bias claim: with oracle quantities, accepted samples follow the
    # target exactly (here: uniform via MHRW).
    design = MetropolisHastingsWalk()
    ideal = IdealWalk(small_ba, design, start=0)
    batch = ideal.sample(3000, walk_length=12, seed=rng)
    counts = np.bincount(batch.nodes, minlength=30) / len(batch)
    assert np.max(np.abs(counts - 1.0 / 30)) < 0.02


def test_sample_rejects_undersized_walk(small_cycle):
    ideal = IdealWalk(small_cycle, LazyWalk(SimpleRandomWalk(), 0.05), start=0)
    with pytest.raises(ConfigurationError):
        ideal.sample(5, walk_length=2, seed=1)
    with pytest.raises(ConfigurationError):
        ideal.sample(0)


def test_invalid_start_rejected(small_ba):
    with pytest.raises(ConfigurationError):
        IdealWalk(small_ba, SimpleRandomWalk(), start=999)


def test_optimal_walk_length_failure_on_periodic_graph():
    # Even cycle + pure SRW is periodic: p_t alternates parity and some
    # node always has zero probability, so no finite-cost t exists.
    graph = cycle_graph(6).relabeled()
    ideal = IdealWalk(graph, SimpleRandomWalk(), start=0)
    with pytest.raises(ConfigurationError):
        ideal.optimal_walk_length(max_t=64)
