"""WalkEstimateSampler end-to-end behaviour."""

import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.walk_estimate import (
    WalkEstimateSampler,
    we_crawl_sampler,
    we_full_sampler,
    we_none_sampler,
    we_weighted_sampler,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture
def config():
    return WalkEstimateConfig(
        walk_length=5,
        crawl_hops=2,
        backward_repetitions=8,
        refine_repetitions=2,
        calibration_walks=5,
    )


@pytest.fixture
def graph():
    return barabasi_albert_graph(120, 4, seed=6).relabeled()


def test_sampler_collects_requested_count(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=15, seed=1)
    assert len(batch) == 15
    assert len(batch.target_weights) == 15
    assert batch.query_cost == api.query_cost
    assert all(graph.has_node(node) for node in batch.nodes)


def test_report_provenance(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=10, seed=2)
    report = sampler.last_report
    assert report is not None
    assert report.forward_walks >= config.calibration_walks + 10
    assert report.forward_steps == report.forward_walks * 5
    assert report.backward_steps > 0
    assert 0.0 < report.acceptance_rate <= 1.0
    assert report.crawl_cost > 0
    assert report.total_steps == report.forward_steps + report.backward_steps
    accepted_records = [r for r in report.records if r.accepted]
    assert len(accepted_records) == len(batch)


def test_respects_budget_with_partial_batch(graph, config):
    api = SocialNetworkAPI(graph, budget=QueryBudget(40))
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=100, seed=3)
    assert len(batch) < 100
    assert api.query_cost <= 40


def test_target_weights_match_design(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=8, seed=4)
    for node, weight in zip(batch.nodes, batch.target_weights):
        assert weight == graph.degree(node)

    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(MetropolisHastingsWalk(), config)
    batch = sampler.sample(api, start=0, count=8, seed=5)
    assert all(w == 1.0 for w in batch.target_weights)


def test_count_validation(graph, config):
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    with pytest.raises(ConfigurationError):
        sampler.sample(SocialNetworkAPI(graph), 0, 0)


def test_variant_factories_toggle_heuristics(config):
    design = SimpleRandomWalk()
    none = we_none_sampler(design, config)
    assert none.config.crawl_hops == 0
    assert not none.config.weighted_sampling
    assert none.name == "we-none-srw"

    crawl = we_crawl_sampler(design, config)
    assert crawl.config.crawl_hops > 0
    assert not crawl.config.weighted_sampling

    weighted = we_weighted_sampler(design, config)
    assert weighted.config.crawl_hops == 0
    assert weighted.config.weighted_sampling

    full = we_full_sampler(design, config)
    assert full.config.crawl_hops > 0
    assert full.config.weighted_sampling
    assert full.name == "we-srw"


def test_variants_fill_in_crawl_hops_when_disabled():
    design = SimpleRandomWalk()
    base = WalkEstimateConfig(walk_length=5, crawl_hops=0)
    assert we_crawl_sampler(design, base).config.crawl_hops == 2
    assert we_full_sampler(design, base).config.crawl_hops == 2


def test_walk_length_derived_from_diameter_hint(graph):
    config = WalkEstimateConfig(diameter_hint=3, crawl_hops=1, calibration_walks=3)
    api = SocialNetworkAPI(graph)
    sampler = WalkEstimateSampler(SimpleRandomWalk(), config)
    sampler.sample(api, start=0, count=3, seed=6)
    report = sampler.last_report
    assert report.forward_steps == report.forward_walks * 7  # 2*3+1


def test_deterministic_under_seed(graph, config):
    a = we_full_sampler(SimpleRandomWalk(), config).sample(
        SocialNetworkAPI(graph), 0, 10, seed=99
    )
    b = we_full_sampler(SimpleRandomWalk(), config).sample(
        SocialNetworkAPI(graph), 0, 10, seed=99
    )
    assert a.nodes == b.nodes


def test_we_none_variant_runs_without_crawl_or_history(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = we_none_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=5, seed=7)
    assert len(batch) == 5
    assert sampler.last_report.crawl_cost == 0


def test_samples_are_spread_over_the_graph(graph, config):
    # A short-walk sampler that never left the start's vicinity would
    # concentrate; the corrected sampler must reach a broad node set.
    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=60, seed=8)
    assert len(set(batch.nodes)) > 25


def test_phase_cost_attribution_via_snapshots(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = we_full_sampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=5, seed=11)
    report = sampler.last_report
    # The crawl phase is priced exactly (it runs first on a fresh API).
    assert report.crawl_cost > 0
    # Each phase's delta is non-negative and the three never overshoot
    # the run's total unique-node cost (residual: target-weight lookups).
    assert report.walk_cost >= 0 and report.backward_cost >= 0
    attributed = report.crawl_cost + report.walk_cost + report.backward_cost
    assert attributed <= batch.query_cost
    # Phases price real charges only: on a warm API the attributed costs
    # are bounded by the genuinely new nodes that run touched.
    warm_before = api.snapshot()
    sampler.sample(api, start=0, count=3, seed=12)
    warm = sampler.last_report
    newly_charged = api.counter.delta(warm_before).unique_nodes
    assert warm.crawl_cost == 0  # crawl zone fully cached
    assert warm.walk_cost + warm.backward_cost <= newly_charged
