"""ProbabilityEstimator: pooling, refinement, running moments."""

import numpy as np
import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.estimate import ProbabilityEstimate, ProbabilityEstimator
from repro.core.weighted import ForwardHistory
from repro.errors import EstimationError
from repro.markov.matrix import TransitionMatrix
from repro.walks.transitions import SimpleRandomWalk
from repro.walks.walker import run_walk


def test_probability_estimate_moments():
    record = ProbabilityEstimate(node=1)
    with pytest.raises(EstimationError):
        _ = record.mean
    for value in (1.0, 2.0, 3.0, 4.0):
        record.add(value)
    assert record.count == 4
    assert record.mean == pytest.approx(2.5)
    # Sample variance of [1,2,3,4] is 5/3; variance of the mean /4.
    assert record.variance_of_mean == pytest.approx(5.0 / 3.0 / 4.0)
    assert record.relative_std_error == pytest.approx(
        np.sqrt(5.0 / 3.0 / 4.0) / 2.5
    )


def test_relative_std_error_zero_mean():
    record = ProbabilityEstimate(node=1)
    record.add(0.0)
    record.add(0.0)
    assert record.relative_std_error == float("inf")


def make_estimator(graph, rng, **config_overrides):
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(
        walk_length=4,
        crawl_hops=0,
        backward_repetitions=10,
        refine_repetitions=0,
        **config_overrides,
    )
    history = ForwardHistory(0, 4)
    for _ in range(20):
        history.record(run_walk(graph, design, 0, 4, seed=rng))
    return ProbabilityEstimator(
        graph, design, 0, 4, config, history=history, seed=rng
    )


def test_estimate_runs_base_repetitions(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    record = estimator.estimate(9)
    assert record.count == 10
    assert record.node == 9


def test_estimates_accumulate_for_repeat_candidates(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    first = estimator.estimate(9)
    count_after_first = first.count
    second = estimator.estimate(9)
    assert second is first  # same pooled record
    assert second.count == count_after_first  # base already satisfied


def test_refine_spends_budget_on_pending_estimates(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    estimator.estimate(9)
    estimator.estimate(14)
    total_before = sum(
        estimator.current(n).count for n in estimator.estimated_nodes
    )
    estimator.refine(25)
    total_after = sum(
        estimator.current(n).count for n in estimator.estimated_nodes
    )
    assert total_after == total_before + 25
    with pytest.raises(ValueError):
        estimator.refine(-1)


def test_refine_without_estimates_is_noop(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    estimator.refine(10)  # must not raise
    assert estimator.estimated_nodes == ()


def test_estimator_tracks_backward_effort(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    estimator.estimate(9)
    assert estimator.stats.walks == 10
    assert estimator.stats.steps >= 10  # at least one step per walk here


def test_estimator_mean_tracks_truth(small_ba, rng):
    design = SimpleRandomWalk()
    matrix = TransitionMatrix(small_ba, design)
    truth = matrix.step_distribution(0, 4)
    config = WalkEstimateConfig(
        walk_length=4,
        crawl_hops=0,
        backward_repetitions=800,
        refine_repetitions=0,
    )
    estimator = ProbabilityEstimator(
        small_ba, design, 0, 4, config, history=None, seed=rng
    )
    node = 11
    record = estimator.estimate(node)
    standard_error = np.sqrt(record.variance_of_mean)
    assert abs(record.mean - truth[node]) < 6 * standard_error + 1e-9


def test_current_returns_none_for_unknown(small_ba, rng):
    estimator = make_estimator(small_ba, rng)
    assert estimator.current(3) is None
