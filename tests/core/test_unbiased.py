"""UNBIASED-ESTIMATE: exact expectation by exhaustive enumeration.

The paper proves E[estimate] = p_t(u) (Eq. 22–24).  These tests *compute*
that expectation exactly — enumerating every backward path with its
probability — and compare against matrix-power ground truth, which verifies
the property without Monte-Carlo slack.
"""

import numpy as np
import pytest

from repro.core.crawl import InitialCrawl
from repro.core.unbiased import backward_candidates, unbiased_estimate
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import (
    LazyWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

DESIGNS = [
    SimpleRandomWalk(),
    MetropolisHastingsWalk(),
    LazyWalk(SimpleRandomWalk(), 0.25),
]


def exact_expectation(graph, design, node, start, t, crawl=None):
    """E[UNBIASED-ESTIMATE] by exhaustive recursion over backward paths."""
    if crawl is not None and crawl.covers_step(t):
        return crawl.probability(node, t)
    if t == 0:
        return 1.0 if node == start else 0.0
    candidates = backward_candidates(graph, design, node)
    k = len(candidates)
    total = 0.0
    for predecessor in candidates:
        transition = design.transition_probability(graph, predecessor, node)
        if transition == 0.0:
            continue
        total += (
            (1.0 / k)
            * k
            * transition
            * exact_expectation(graph, design, predecessor, start, t - 1, crawl)
        )
    return total


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: d.name)
@pytest.mark.parametrize("t", [0, 1, 2, 3])
def test_expectation_equals_true_probability(design, t, triangle):
    matrix = TransitionMatrix(triangle, design)
    truth = matrix.step_distribution(0, t)
    for node in triangle.nodes():
        expected = exact_expectation(triangle, design, node, 0, t)
        assert expected == pytest.approx(truth[node], abs=1e-12)


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: d.name)
def test_expectation_on_irregular_graph(design, path4):
    matrix = TransitionMatrix(path4, design)
    truth = matrix.step_distribution(0, 3)
    for node in path4.nodes():
        expected = exact_expectation(path4, design, node, 0, 3)
        assert expected == pytest.approx(truth[node], abs=1e-12)


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: d.name)
def test_expectation_with_crawl(design, path4):
    crawl = InitialCrawl(SocialNetworkAPI(path4), design, start=0, hops=1)
    matrix = TransitionMatrix(path4, design)
    truth = matrix.step_distribution(0, 3)
    for node in path4.nodes():
        expected = exact_expectation(path4, design, node, 0, 3, crawl=crawl)
        assert expected == pytest.approx(truth[node], abs=1e-12)


def test_monte_carlo_agrees_with_truth(small_ba, rng):
    design = SimpleRandomWalk()
    matrix = TransitionMatrix(small_ba, design)
    t, start, node = 4, 0, 12
    truth = matrix.step_distribution(start, t)[node]
    draws = np.array(
        [
            unbiased_estimate(small_ba, design, node, start, t, seed=rng)
            for _ in range(30000)
        ]
    )
    standard_error = draws.std() / np.sqrt(len(draws))
    assert abs(draws.mean() - truth) < 5 * standard_error + 1e-9


def test_crawl_reduces_variance(small_ba, rng):
    design = SimpleRandomWalk()
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), design, 0, 2)
    t, node = 5, 20
    plain = np.array(
        [unbiased_estimate(small_ba, design, node, 0, t, seed=rng) for _ in range(4000)]
    )
    assisted = np.array(
        [
            unbiased_estimate(small_ba, design, node, 0, t, seed=rng, crawl=crawl)
            for _ in range(4000)
        ]
    )
    assert assisted.std() < plain.std()


def test_realizations_non_negative(small_ba, rng):
    design = MetropolisHastingsWalk()
    for _ in range(200):
        value = unbiased_estimate(small_ba, design, 7, 0, 3, seed=rng)
        assert value >= 0.0


def test_t_zero_base_case(small_ba, rng):
    design = SimpleRandomWalk()
    assert unbiased_estimate(small_ba, design, 0, 0, 0, seed=rng) == 1.0
    assert unbiased_estimate(small_ba, design, 5, 0, 0, seed=rng) == 0.0
    with pytest.raises(ValueError):
        unbiased_estimate(small_ba, design, 5, 0, -1, seed=rng)


def test_backward_candidates_srw_vs_mhrw(small_ba):
    srw_candidates = backward_candidates(small_ba, SimpleRandomWalk(), 3)
    assert srw_candidates == small_ba.neighbors(3)
    mhrw_candidates = backward_candidates(small_ba, MetropolisHastingsWalk(), 3)
    assert mhrw_candidates == small_ba.neighbors(3) + (3,)
