"""Acceptance-rejection with the bootstrapped scale factor."""

import numpy as np
import pytest

from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.errors import ConfigurationError, EstimationError


def test_bootstrap_percentile():
    bootstrap = ScaleFactorBootstrap(percentile=10.0, minimum_observations=5)
    for ratio in np.linspace(1.0, 100.0, 100):
        bootstrap.observe(ratio)
    assert bootstrap.scale_factor() == pytest.approx(
        np.percentile(np.linspace(1.0, 100.0, 100), 10.0)
    )


def test_bootstrap_filters_degenerate_ratios():
    bootstrap = ScaleFactorBootstrap(minimum_observations=1)
    bootstrap.observe(0.0)
    bootstrap.observe(-1.0)
    bootstrap.observe(float("inf"))
    bootstrap.observe(float("nan"))
    assert bootstrap.observation_count == 0
    bootstrap.observe(2.0)
    assert bootstrap.observation_count == 1
    assert bootstrap.scale_factor() == 2.0


def test_bootstrap_not_ready_raises():
    bootstrap = ScaleFactorBootstrap(minimum_observations=3)
    bootstrap.observe(1.0)
    with pytest.raises(EstimationError):
        bootstrap.scale_factor()
    empty = ScaleFactorBootstrap()
    with pytest.raises(EstimationError):
        empty.scale_factor()


def test_bootstrap_validates_configuration():
    with pytest.raises(ConfigurationError):
        ScaleFactorBootstrap(percentile=0.0)
    with pytest.raises(ConfigurationError):
        ScaleFactorBootstrap(percentile=100.0)
    with pytest.raises(ConfigurationError):
        ScaleFactorBootstrap(minimum_observations=0)


def _ready_bootstrap(scale=1.0):
    bootstrap = ScaleFactorBootstrap(minimum_observations=1)
    bootstrap.observe(scale)
    return bootstrap


def test_acceptance_probability_formula(rng):
    sampler = RejectionSampler(_ready_bootstrap(scale=2.0), seed=rng)
    # beta = scale / (p / q) = 2.0 / (4.0 / 1.0) = 0.5
    assert sampler.acceptance_probability(4.0, 1.0) == pytest.approx(0.5)
    # Clamped at 1 when the ratio is below the scale.
    assert sampler.acceptance_probability(1.0, 1.0) == 1.0


def test_zero_estimate_accepted(rng):
    sampler = RejectionSampler(_ready_bootstrap(), seed=rng)
    assert sampler.acceptance_probability(0.0, 1.0) == 1.0


def test_invalid_inputs(rng):
    sampler = RejectionSampler(_ready_bootstrap(), seed=rng)
    with pytest.raises(ConfigurationError):
        sampler.acceptance_probability(1.0, 0.0)
    with pytest.raises(EstimationError):
        sampler.acceptance_probability(-1.0, 1.0)


def test_accept_rate_tracks_beta(rng):
    # Prime the pool heavily so the decisions' own ratio feedback (2.0 per
    # accept call) cannot move the percentile during the test.
    bootstrap = ScaleFactorBootstrap(minimum_observations=1)
    for _ in range(10000):
        bootstrap.observe(1.0)
    sampler = RejectionSampler(bootstrap, seed=rng)
    accepted = sum(sampler.accept(2.0, 1.0) for _ in range(4000))
    # beta = 1/2; binomial CI comfortably within +-0.05.
    assert abs(accepted / 4000 - 0.5) < 0.05
    assert sampler.accepted + sampler.rejected == 4000
    assert sampler.acceptance_rate == pytest.approx(accepted / 4000)


def test_accept_feeds_bootstrap(rng):
    bootstrap = ScaleFactorBootstrap(minimum_observations=1)
    bootstrap.observe(1.0)
    sampler = RejectionSampler(bootstrap, seed=rng)
    sampler.accept(3.0, 1.0)
    assert bootstrap.observation_count == 2  # initial + the decision's ratio


def test_rejection_corrects_distribution(rng):
    """End-to-end law check: rejection turns a skewed draw into the target.

    Proposal draws node A with 0.8, node B with 0.2; target is uniform.
    With exact probabilities and scale = min(p/q), accepted samples must
    be ~50/50.
    """
    p = {"A": 0.8, "B": 0.2}
    q = {"A": 1.0, "B": 1.0}
    bootstrap = ScaleFactorBootstrap(minimum_observations=1)
    bootstrap.observe(min(p[x] / q[x] for x in p))
    sampler = RejectionSampler(bootstrap, seed=rng)
    counts = {"A": 0, "B": 0}
    for _ in range(20000):
        node = "A" if rng.random() < 0.8 else "B"
        # Feed the exact sampling probability; keep the bootstrap pinned by
        # never observing ratios (acceptance_probability only).
        beta = sampler.acceptance_probability(p[node], q[node])
        if rng.random() < beta:
            counts[node] += 1
    total = counts["A"] + counts["B"]
    assert abs(counts["A"] / total - 0.5) < 0.03
