"""Sharded WALK-ESTIMATE front ends: parity, determinism, merged outputs."""

import numpy as np
import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.long_run_we import long_run_walk_estimate_batch
from repro.core.sharded import (
    long_run_walk_estimate_sharded,
    merge_batch_results,
    walk_estimate_sharded,
)
from repro.core.walk_estimate import walk_estimate_batch
from repro.errors import ConfigurationError
from repro.estimators.aggregates import average_estimate_arrays
from repro.graphs.generators import barabasi_albert_graph
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(400, 5, seed=23).relabeled()


@pytest.fixture(scope="module")
def csr(graph):
    return graph.compile()


@pytest.fixture(scope="module")
def config():
    return WalkEstimateConfig(
        diameter_hint=3,
        calibration_walks=6,
        backward_repetitions=4,
        refine_repetitions=0,
    )


@pytest.fixture(scope="module")
def engine1(csr):
    with ShardedWalkEngine(csr, n_workers=1) as engine:
        yield engine


@pytest.fixture(scope="module")
def engine2(csr):
    with ShardedWalkEngine(csr, n_workers=2) as engine:
        yield engine


class TestSingleWorkerParity:
    @pytest.mark.parametrize(
        "design", [SimpleRandomWalk(), MetropolisHastingsWalk()], ids=["srw", "mhrw"]
    )
    def test_walk_estimate_matches_batch(self, design, csr, config, engine1):
        sharded = walk_estimate_sharded(engine1, design, 0, 30, config=config, seed=77)
        batch = walk_estimate_batch(csr, design, 0, 30, config=config, seed=77)
        assert np.array_equal(sharded.candidates, batch.candidates)
        assert np.array_equal(sharded.estimates, batch.estimates)
        assert np.array_equal(sharded.target_weights, batch.target_weights)
        assert np.array_equal(sharded.accepted, batch.accepted)
        assert sharded.forward_steps == batch.forward_steps
        assert sharded.backward_steps == batch.backward_steps

    def test_long_run_matches_batch(self, csr, config, engine1):
        design = SimpleRandomWalk()
        sharded = long_run_walk_estimate_sharded(
            engine1, design, 0, 4, 5, config=config, seed=77
        )
        batch = long_run_walk_estimate_batch(
            csr, design, 0, 4, 5, config=config, seed=77
        )
        assert np.array_equal(sharded.candidates, batch.candidates)
        assert np.array_equal(sharded.estimates, batch.estimates)
        assert np.array_equal(sharded.accepted, batch.accepted)


class TestShardedRounds:
    def test_walk_estimate_deterministic(self, config, engine2):
        design = SimpleRandomWalk()
        a = walk_estimate_sharded(engine2, design, 0, 48, config=config, seed=5)
        b = walk_estimate_sharded(engine2, design, 0, 48, config=config, seed=5)
        assert np.array_equal(a.estimates, b.estimates)
        assert np.array_equal(a.accepted, b.accepted)
        assert a.candidates.shape == (48,)

    def test_accepted_samples_estimate_average_degree(self, graph, config, engine2):
        # The merged accepted pool must feed the array-native AVG
        # estimator and land near the true mean degree — the end-to-end
        # reduction the sharded round exists for.
        design = SimpleRandomWalk()
        result = walk_estimate_sharded(engine2, design, 0, 256, config=config, seed=11)
        assert result.nodes.size > 10
        degrees = np.array(
            [graph.degree(int(node)) for node in result.nodes], dtype=float
        )
        estimate = average_estimate_arrays(degrees, result.weights)
        truth = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert abs(estimate - truth) / truth < 0.5

    def test_long_run_shapes_and_determinism(self, config, engine2):
        design = SimpleRandomWalk()
        a = long_run_walk_estimate_sharded(
            engine2, design, 0, 6, 4, config=config, seed=2
        )
        b = long_run_walk_estimate_sharded(
            engine2, design, 0, 6, 4, config=config, seed=2
        )
        assert a.candidates.shape == (24,)
        assert np.array_equal(a.estimates, b.estimates)

    def test_long_run_accepts_per_run_starts(self, config, engine2):
        design = SimpleRandomWalk()
        starts = np.array([0, 1, 2, 3], dtype=np.int64)
        result = long_run_walk_estimate_sharded(
            engine2, design, starts, 4, 3, config=config, seed=9
        )
        assert result.candidates.shape == (12,)


class TestValidation:
    def test_rejects_bad_k(self, config, engine2):
        with pytest.raises(ConfigurationError, match="k_walks"):
            walk_estimate_sharded(
                engine2, SimpleRandomWalk(), 0, 0, config=config, seed=1
            )

    def test_rejects_bad_segments(self, config, engine2):
        with pytest.raises(ConfigurationError, match="segments"):
            long_run_walk_estimate_sharded(
                engine2, SimpleRandomWalk(), 0, 2, 0, config=config, seed=1
            )

    def test_rejects_bad_start_shape(self, config, engine2):
        with pytest.raises(ConfigurationError, match="start"):
            long_run_walk_estimate_sharded(
                engine2,
                SimpleRandomWalk(),
                np.array([0, 1, 2]),
                2,
                3,
                config=config,
                seed=1,
            )

    def test_merge_requires_parts(self):
        with pytest.raises(ConfigurationError, match="merge"):
            merge_batch_results([])

    def test_merge_single_part_is_identity(self, csr, config):
        part = walk_estimate_batch(csr, SimpleRandomWalk(), 0, 4, config=config, seed=3)
        assert merge_batch_results([part]) is part
