"""Vectorized estimation layer: batch backward walks, rejection, WE front end."""

import numpy as np
import pytest

from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.core.unbiased import unbiased_estimate, unbiased_estimate_batch
from repro.core.walk_estimate import walk_estimate_batch
from repro.errors import ConfigurationError, EstimationError
from repro.estimators.aggregates import average_estimate_arrays
from repro.graphs.generators import barabasi_albert_graph
from repro.markov.matrix import TransitionMatrix
from repro.core.config import WalkEstimateConfig
from repro.walks.transitions import (
    BidirectionalWalk,
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)


@pytest.fixture(scope="module")
def small_graph():
    return barabasi_albert_graph(40, 3, seed=5).relabeled()


@pytest.fixture(scope="module")
def small_csr(small_graph):
    return small_graph.compile()


class TestUnbiasedEstimateBatch:
    @pytest.mark.parametrize("design", [SimpleRandomWalk(), MetropolisHastingsWalk()])
    def test_mean_matches_exact_probabilities(self, small_graph, small_csr, design):
        t = 5
        exact = TransitionMatrix(small_graph, design).step_distribution(0, t)
        nodes = np.arange(small_graph.number_of_nodes())
        estimates = unbiased_estimate_batch(
            small_csr, design, nodes, 0, t, seed=11, repetitions=4000
        )
        assert np.abs(estimates - exact).max() < 0.05

    def test_t_zero_is_indicator_of_start(self, small_csr):
        estimates = unbiased_estimate_batch(
            small_csr, SimpleRandomWalk(), [0, 1, 2], 0, 0, seed=1
        )
        assert estimates.tolist() == [1.0, 0.0, 0.0]

    def test_accepts_mutable_graph(self, small_graph):
        estimates = unbiased_estimate_batch(
            small_graph, SimpleRandomWalk(), [3], 0, 4, seed=2, repetitions=10
        )
        assert estimates.shape == (1,)
        assert estimates[0] >= 0.0

    def test_same_expectation_as_scalar(self, small_graph, small_csr):
        # Both estimators are unbiased for the same quantity; with many
        # repetitions their means must agree.
        design = SimpleRandomWalk()
        t, node = 4, 7
        batch = unbiased_estimate_batch(
            small_csr, design, [node], 0, t, seed=3, repetitions=6000
        )[0]
        rng_values = [
            unbiased_estimate(small_graph, design, node, 0, t, seed=1000 + i)
            for i in range(6000)
        ]
        assert batch == pytest.approx(np.mean(rng_values), abs=0.02)

    def test_rejects_bad_arguments(self, small_csr):
        with pytest.raises(ValueError):
            unbiased_estimate_batch(small_csr, SimpleRandomWalk(), [0], 0, -1)
        with pytest.raises(ConfigurationError):
            unbiased_estimate_batch(
                small_csr, SimpleRandomWalk(), [0], 0, 3, repetitions=0
            )
        with pytest.raises(ConfigurationError):
            unbiased_estimate_batch(small_csr, BidirectionalWalk(), [0], 0, 3)

    def test_lazy_and_maxdeg_match_exact_probabilities(self, small_graph, small_csr):
        # The designs gaining batch kernels this layer must also price
        # their backward transitions correctly — including the lazy
        # wrapper's λ-augmented self-loops over each kind of inner design.
        t = 4
        designs = [
            LazyWalk(SimpleRandomWalk(), 0.3),
            MaxDegreeWalk(small_graph.max_degree()),
            LazyWalk(MaxDegreeWalk(small_graph.max_degree()), 0.4),
            LazyWalk(MetropolisHastingsWalk(), 0.25),
        ]
        nodes = np.arange(small_graph.number_of_nodes())
        for design in designs:
            exact = TransitionMatrix(small_graph, design).step_distribution(0, t)
            estimates = unbiased_estimate_batch(
                small_csr, design, nodes, 0, t, seed=17, repetitions=12000
            )
            assert np.abs(estimates - exact).max() < 0.05, design.name

    def test_maxdeg_underdeclared_bound_raises(self, small_csr):
        with pytest.raises(ConfigurationError, match="max_degree"):
            unbiased_estimate_batch(
                small_csr, MaxDegreeWalk(1), [5], 0, 3, seed=1, repetitions=4
            )

    def test_array_start_matches_shared_start(self, small_csr):
        # A constant start array must reproduce the scalar-start result
        # draw for draw — same stream, same realizations.
        nodes = np.arange(20)
        shared = unbiased_estimate_batch(
            small_csr, SimpleRandomWalk(), nodes, 0, 4, seed=5, repetitions=40
        )
        arrayed = unbiased_estimate_batch(
            small_csr,
            SimpleRandomWalk(),
            nodes,
            np.zeros(20, dtype=np.int64),
            4,
            seed=5,
            repetitions=40,
        )
        assert np.array_equal(shared, arrayed)

    def test_per_node_starts_estimate_each_origin(self, small_graph, small_csr):
        # Each backward walk may target a different forward origin: entry
        # i's expectation is p_t(node_i | start_i).
        design = SimpleRandomWalk()
        t = 3
        starts = np.array([0, 4, 9], dtype=np.int64)
        nodes = np.array([7, 7, 7], dtype=np.int64)
        matrix = TransitionMatrix(small_graph, design)
        exact = np.array([matrix.step_distribution(int(s), t)[7] for s in starts])
        estimates = unbiased_estimate_batch(
            small_csr, design, nodes, starts, t, seed=23, repetitions=8000
        )
        assert np.abs(estimates - exact).max() < 0.05

    def test_misaligned_start_array_rejected(self, small_csr):
        with pytest.raises(ConfigurationError, match="aligned"):
            unbiased_estimate_batch(
                small_csr, SimpleRandomWalk(), [0, 1, 2], np.array([0, 1]), 3
            )
        with pytest.raises(ConfigurationError, match="aligned"):
            unbiased_estimate_batch(
                small_csr, SimpleRandomWalk(), [0], np.zeros((1, 1), dtype=int), 3
            )


class TestBatchRejection:
    def _sampler(self, ratios=(1.0, 1.0, 1.0, 1.0, 1.0), seed=0):
        bootstrap = ScaleFactorBootstrap()
        for ratio in ratios:
            bootstrap.observe(ratio)
        return RejectionSampler(bootstrap, seed=seed)

    def test_probabilities_match_scalar(self):
        sampler = self._sampler(ratios=(0.5, 1.0, 2.0, 4.0, 8.0))
        estimates = np.array([0.5, 1.0, 0.0, 3.0])
        weights = np.array([1.0, 2.0, 1.0, 1.0])
        batch = sampler.acceptance_probabilities(estimates, weights)
        scalar = [
            sampler.acceptance_probability(float(p), float(q))
            for p, q in zip(estimates, weights)
        ]
        assert batch.tolist() == pytest.approx(scalar)

    def test_zero_estimate_accepts_certainly(self):
        sampler = self._sampler()
        betas = sampler.acceptance_probabilities([0.0], [5.0])
        assert betas.tolist() == [1.0]

    def test_accept_batch_updates_counters_and_pool(self):
        sampler = self._sampler()
        before = sampler.bootstrap.observation_count
        accepted, betas = sampler.accept_batch(
            [1.0, 1.0, 0.0, 2.0], [1.0, 1.0, 1.0, 1.0]
        )
        assert accepted.shape == (4,)
        assert betas.shape == (4,)
        assert np.all((betas >= 0.0) & (betas <= 1.0))
        assert sampler.accepted + sampler.rejected == 4
        # Zero estimate contributes no usable ratio; the other three do.
        assert sampler.bootstrap.observation_count == before + 3

    def test_invalid_inputs_raise(self):
        sampler = self._sampler()
        with pytest.raises(ConfigurationError):
            sampler.acceptance_probabilities([1.0], [0.0])
        with pytest.raises(EstimationError):
            sampler.acceptance_probabilities([-1.0], [1.0])


class TestWalkEstimateBatch:
    @pytest.mark.parametrize("design", [SimpleRandomWalk(), MetropolisHastingsWalk()])
    def test_result_arrays_are_aligned(self, small_graph, design):
        result = walk_estimate_batch(
            small_graph,
            design,
            0,
            64,
            config=WalkEstimateConfig(diameter_hint=4),
            seed=42,
        )
        assert result.candidates.shape == (64,)
        assert result.estimates.shape == (64,)
        assert result.target_weights.shape == (64,)
        assert result.acceptance.shape == (64,)
        assert result.accepted.dtype == bool
        assert result.nodes.size == int(result.accepted.sum())
        assert result.nodes.size == result.weights.size
        assert 0.0 <= result.acceptance_rate <= 1.0
        assert result.forward_steps > 0
        assert result.backward_steps > 0

    def test_k1_works(self, small_graph):
        result = walk_estimate_batch(
            small_graph,
            SimpleRandomWalk(),
            0,
            1,
            config=WalkEstimateConfig(diameter_hint=3),
            seed=7,
        )
        assert result.candidates.shape == (1,)

    def test_deterministic_for_seed(self, small_csr):
        config = WalkEstimateConfig(diameter_hint=3)
        a = walk_estimate_batch(small_csr, SimpleRandomWalk(), 0, 32, config, seed=5)
        b = walk_estimate_batch(small_csr, SimpleRandomWalk(), 0, 32, config, seed=5)
        assert np.array_equal(a.candidates, b.candidates)
        assert np.array_equal(a.accepted, b.accepted)

    def test_srw_weights_are_candidate_degrees(self, small_graph, small_csr):
        result = walk_estimate_batch(
            small_csr,
            SimpleRandomWalk(),
            0,
            32,
            config=WalkEstimateConfig(diameter_hint=3),
            seed=9,
        )
        expected = [float(small_graph.degree(int(n))) for n in result.candidates]
        assert result.target_weights.tolist() == expected

    def test_to_sample_batch(self, small_csr):
        result = walk_estimate_batch(
            small_csr,
            MetropolisHastingsWalk(),
            0,
            32,
            config=WalkEstimateConfig(diameter_hint=3),
            seed=10,
        )
        batch = result.to_sample_batch("we-batch-mhrw")
        assert batch.sampler == "we-batch-mhrw"
        assert len(batch) == result.nodes.size
        assert batch.walk_steps == result.forward_steps + result.backward_steps

    def test_invalid_k_raises(self, small_csr):
        with pytest.raises(ConfigurationError):
            walk_estimate_batch(small_csr, SimpleRandomWalk(), 0, 0)

    def test_average_degree_estimate_is_close(self, small_graph, small_csr):
        # End-to-end: batch samples + array fan-in estimate AVG(degree).
        truth = 2 * small_graph.number_of_edges() / small_graph.number_of_nodes()
        result = walk_estimate_batch(
            small_csr,
            SimpleRandomWalk(),
            0,
            512,
            config=WalkEstimateConfig(diameter_hint=5),
            seed=3,
        )
        degrees = small_csr.degrees[small_csr.positions_of(result.nodes)]
        estimate = average_estimate_arrays(degrees.astype(float), result.weights)
        assert estimate == pytest.approx(truth, rel=0.25)


class TestAverageEstimateArrays:
    def test_uniform_weights_use_plain_mean(self):
        assert average_estimate_arrays([1.0, 2.0, 3.0], [1.0, 1.0, 1.0]) == 2.0

    def test_skewed_weights_use_importance_weighting(self):
        values = np.array([2.0, 4.0])
        weights = np.array([2.0, 4.0])
        expected = (2.0 / 2.0 + 4.0 / 4.0) / (1.0 / 2.0 + 1.0 / 4.0)
        assert average_estimate_arrays(values, weights) == pytest.approx(expected)

    def test_matches_list_based_estimator(self):
        from repro.estimators.aggregates import importance_weighted_mean

        values = [1.0, 5.0, 2.0, 8.0]
        weights = [1.0, 2.0, 3.0, 4.0]
        assert average_estimate_arrays(values, weights) == pytest.approx(
            importance_weighted_mean(values, weights)
        )

    def test_empty_and_mismatched_raise(self):
        with pytest.raises(EstimationError):
            average_estimate_arrays([], [])
        with pytest.raises(EstimationError):
            average_estimate_arrays([1.0], [1.0, 2.0])
        with pytest.raises(EstimationError):
            average_estimate_arrays([1.0], [0.0])
