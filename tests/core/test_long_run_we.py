"""The §6.1 future-work sampler: WALK-ESTIMATE over one long run."""

import numpy as np
import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.long_run_we import LongRunWalkEstimateSampler
from repro.errors import ConfigurationError
from repro.estimators.metrics import empirical_distribution, l_infinity_bias
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk


@pytest.fixture
def graph():
    return barabasi_albert_graph(120, 4, seed=21).relabeled()


@pytest.fixture
def config():
    return WalkEstimateConfig(
        walk_length=5,
        backward_repetitions=8,
        calibration_walks=5,
    )


def test_collects_requested_count(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=20, seed=1)
    assert len(batch) == 20
    assert batch.sampler == "we-longrun-srw"
    assert batch.query_cost == api.query_cost
    assert batch.walk_steps > 20 * 5  # forward segments + backward effort


def test_crawl_disabled_automatically(graph):
    config = WalkEstimateConfig(walk_length=5, crawl_hops=3)
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    assert sampler.config.crawl_hops == 0


def test_budget_yields_partial_batch(graph, config):
    api = SocialNetworkAPI(graph, budget=QueryBudget(30))
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=100, seed=2)
    assert len(batch) < 100
    assert api.query_cost <= 30


def test_target_weights_follow_design(graph, config):
    api = SocialNetworkAPI(graph)
    batch = LongRunWalkEstimateSampler(MetropolisHastingsWalk(), config).sample(
        api, 0, 10, seed=3
    )
    assert all(w == 1.0 for w in batch.target_weights)


def test_count_validation(graph, config):
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    with pytest.raises(ConfigurationError):
        sampler.sample(SocialNetworkAPI(graph), 0, 0)


def test_distribution_close_to_target(graph):
    # Marginal law check: accepted segment endpoints follow the
    # degree-proportional target despite the shared boundary nodes.
    config = WalkEstimateConfig(
        walk_length=6,
        backward_repetitions=12,
        calibration_walks=8,
        scale_percentile=10.0,
    )
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], float)
    target = degrees / degrees.sum()
    nodes = []
    for rep in range(12):
        api = SocialNetworkAPI(graph)
        sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
        nodes.extend(sampler.sample(api, 0, 150, seed=rep).nodes)
    pdf = empirical_distribution(nodes, n)
    noise = np.sqrt(target.max() / len(nodes))
    assert l_infinity_bias(pdf, target) < 8 * noise
