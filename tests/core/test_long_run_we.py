"""The §6.1 future-work sampler: WALK-ESTIMATE over one long run."""

import numpy as np
import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.long_run_we import (
    LongRunWalkEstimateSampler,
    long_run_walk_estimate_batch,
)
from repro.errors import ConfigurationError
from repro.estimators.metrics import empirical_distribution, l_infinity_bias
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)


@pytest.fixture
def graph():
    return barabasi_albert_graph(120, 4, seed=21).relabeled()


@pytest.fixture
def config():
    return WalkEstimateConfig(
        walk_length=5,
        backward_repetitions=8,
        calibration_walks=5,
    )


def test_collects_requested_count(graph, config):
    api = SocialNetworkAPI(graph)
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=20, seed=1)
    assert len(batch) == 20
    assert batch.sampler == "we-longrun-srw"
    assert batch.query_cost == api.query_cost
    assert batch.walk_steps > 20 * 5  # forward segments + backward effort


def test_crawl_disabled_automatically(graph):
    config = WalkEstimateConfig(walk_length=5, crawl_hops=3)
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    assert sampler.config.crawl_hops == 0


def test_budget_yields_partial_batch(graph, config):
    api = SocialNetworkAPI(graph, budget=QueryBudget(30))
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    batch = sampler.sample(api, start=0, count=100, seed=2)
    assert len(batch) < 100
    assert api.query_cost <= 30


def test_target_weights_follow_design(graph, config):
    api = SocialNetworkAPI(graph)
    batch = LongRunWalkEstimateSampler(MetropolisHastingsWalk(), config).sample(
        api, 0, 10, seed=3
    )
    assert all(w == 1.0 for w in batch.target_weights)


def test_count_validation(graph, config):
    sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
    with pytest.raises(ConfigurationError):
        sampler.sample(SocialNetworkAPI(graph), 0, 0)


def test_distribution_close_to_target(graph):
    # Marginal law check: accepted segment endpoints follow the
    # degree-proportional target despite the shared boundary nodes.
    config = WalkEstimateConfig(
        walk_length=6,
        backward_repetitions=12,
        calibration_walks=8,
        scale_percentile=10.0,
    )
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], float)
    target = degrees / degrees.sum()
    nodes = []
    for rep in range(12):
        api = SocialNetworkAPI(graph)
        sampler = LongRunWalkEstimateSampler(SimpleRandomWalk(), config)
        nodes.extend(sampler.sample(api, 0, 150, seed=rep).nodes)
    pdf = empirical_distribution(nodes, n)
    noise = np.sqrt(target.max() / len(nodes))
    assert l_infinity_bias(pdf, target) < 8 * noise


# ----------------------------------------------------------------------
# Vectorized batch front end
# ----------------------------------------------------------------------
class TestLongRunBatch:
    def test_result_arrays_are_aligned(self, graph, config):
        result = long_run_walk_estimate_batch(
            graph, SimpleRandomWalk(), 0, k_runs=8, segments=5, config=config, seed=1
        )
        assert result.candidates.shape == (40,)
        assert result.estimates.shape == (40,)
        assert result.target_weights.shape == (40,)
        assert result.acceptance.shape == (40,)
        assert result.accepted.dtype == bool
        assert result.nodes.size == int(result.accepted.sum())
        assert result.forward_steps > 0 and result.backward_steps > 0

    def test_forward_steps_count_calibration_prefix(self, graph, config):
        # calibration_walks=5 over 8 runs -> 1 calibration segment each.
        result = long_run_walk_estimate_batch(
            graph, SimpleRandomWalk(), 0, k_runs=8, segments=5, config=config, seed=1
        )
        t = config.effective_walk_length
        assert result.forward_steps == 8 * (1 + 5) * t

    def test_deterministic_for_seed(self, graph, config):
        a = long_run_walk_estimate_batch(
            graph.compile(), SimpleRandomWalk(), 0, 8, 4, config=config, seed=5
        )
        b = long_run_walk_estimate_batch(
            graph.compile(), SimpleRandomWalk(), 0, 8, 4, config=config, seed=5
        )
        assert np.array_equal(a.candidates, b.candidates)
        assert np.array_equal(a.accepted, b.accepted)

    def test_per_run_start_array(self, graph, config):
        starts = np.array([0, 3, 5, 7], dtype=np.int64)
        result = long_run_walk_estimate_batch(
            graph, SimpleRandomWalk(), starts, k_runs=4, segments=3,
            config=config, seed=2,
        )
        assert result.candidates.shape == (12,)

    def test_validation(self, graph, config):
        with pytest.raises(ConfigurationError):
            long_run_walk_estimate_batch(graph, SimpleRandomWalk(), 0, 0, 3)
        with pytest.raises(ConfigurationError):
            long_run_walk_estimate_batch(graph, SimpleRandomWalk(), 0, 4, 0)
        with pytest.raises(ConfigurationError, match="array of 4"):
            long_run_walk_estimate_batch(
                graph, SimpleRandomWalk(), np.array([0, 1]), 4, 3, config=config
            )

    @pytest.mark.parametrize(
        "design_factory",
        [
            lambda g: MetropolisHastingsWalk(),
            lambda g: LazyWalk(SimpleRandomWalk(), 0.3),
            lambda g: MaxDegreeWalk(g.max_degree()),
        ],
    )
    def test_new_kernel_designs_run_end_to_end(self, graph, config, design_factory):
        design = design_factory(graph)
        result = long_run_walk_estimate_batch(
            graph, design, 0, k_runs=6, segments=4, config=config, seed=3
        )
        assert result.candidates.shape == (24,)
        if design.uniform_target():
            assert np.all(result.target_weights == 1.0)

    def test_distribution_close_to_target(self, graph):
        # Same marginal-law check as the scalar sampler: accepted segment
        # endpoints of the K simultaneous long runs follow the
        # degree-proportional target.
        config = WalkEstimateConfig(
            walk_length=6,
            backward_repetitions=12,
            calibration_walks=8,
            scale_percentile=10.0,
        )
        n = graph.number_of_nodes()
        degrees = np.array([graph.degree(v) for v in range(n)], float)
        target = degrees / degrees.sum()
        nodes = []
        for rep in range(4):
            result = long_run_walk_estimate_batch(
                graph, SimpleRandomWalk(), 0, k_runs=64, segments=10,
                config=config, seed=rep,
            )
            nodes.extend(int(v) for v in result.nodes)
        pdf = empirical_distribution(nodes, n)
        noise = np.sqrt(target.max() / len(nodes))
        assert l_infinity_bias(pdf, target) < 8 * noise
