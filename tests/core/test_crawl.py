"""Initial crawl: BFS coverage and exactness of the p_s table."""

import numpy as np
import pytest

from repro.core.crawl import InitialCrawl
from repro.errors import ConfigurationError
from repro.graphs.properties import k_hop_neighborhood
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.walks.transitions import (
    LazyWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)


@pytest.mark.parametrize(
    "design",
    [SimpleRandomWalk(), MetropolisHastingsWalk(), LazyWalk(SimpleRandomWalk(), 0.3)],
    ids=lambda d: d.name,
)
@pytest.mark.parametrize("hops", [0, 1, 2, 3])
def test_table_matches_matrix_powers(design, hops, small_ba):
    matrix = TransitionMatrix(small_ba, design)
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), design, start=0, hops=hops)
    for s in range(hops + 1):
        exact = matrix.step_distribution(0, s)
        table = np.array(
            [crawl.probability(v, s) for v in range(small_ba.number_of_nodes())]
        )
        assert np.allclose(table, exact), f"s={s}"


def test_covers_step_boundaries(small_ba):
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), SimpleRandomWalk(), 0, 2)
    assert crawl.covers_step(0)
    assert crawl.covers_step(2)
    assert not crawl.covers_step(3)
    assert not crawl.covers_step(-1)
    with pytest.raises(ConfigurationError):
        crawl.probability(0, 3)


def test_crawled_nodes_match_k_hop(small_ba):
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), SimpleRandomWalk(), 0, 2)
    expected = set(k_hop_neighborhood(small_ba, 0, 2))
    assert crawl.crawled_nodes == expected
    assert crawl.distance(0) == 0
    far = next(iter(set(small_ba.nodes()) - expected), None)
    if far is not None:
        assert crawl.distance(far) is None


def test_crawl_queries_charged(small_ba):
    api = SocialNetworkAPI(small_ba)
    crawl = InitialCrawl(api, SimpleRandomWalk(), 0, 2)
    # Every node within 2 hops must have been queried (their neighbor
    # lists feed the DP), and nothing else.
    assert api.query_cost == len(crawl.crawled_nodes)


def test_zero_hop_crawl_is_base_case(small_ba):
    crawl = InitialCrawl(SocialNetworkAPI(small_ba), SimpleRandomWalk(), 5, 0)
    assert crawl.probability(5, 0) == 1.0
    assert crawl.probability(4, 0) == 0.0


def test_negative_hops_rejected(small_ba):
    with pytest.raises(ConfigurationError):
        InitialCrawl(SocialNetworkAPI(small_ba), SimpleRandomWalk(), 0, -1)


def test_out_of_support_probability_zero(small_cycle):
    # On a cycle, after 1 step only the two ring neighbors have mass.
    crawl = InitialCrawl(SocialNetworkAPI(small_cycle), SimpleRandomWalk(), 0, 1)
    assert crawl.probability(1, 1) == pytest.approx(0.5)
    assert crawl.probability(10, 1) == pytest.approx(0.5)
    assert crawl.probability(5, 1) == 0.0
