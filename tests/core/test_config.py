"""WalkEstimateConfig validation and derived values."""

import pytest

from repro.core.config import WalkEstimateConfig
from repro.errors import ConfigurationError


def test_defaults_are_valid():
    config = WalkEstimateConfig()
    assert config.effective_walk_length == 2 * config.diameter_hint + 1


def test_explicit_walk_length_wins():
    config = WalkEstimateConfig(walk_length=7, diameter_hint=10)
    assert config.effective_walk_length == 7


def test_with_overrides_creates_new_validated_config():
    config = WalkEstimateConfig()
    other = config.with_overrides(crawl_hops=0, weighted_sampling=False)
    assert other.crawl_hops == 0
    assert config.crawl_hops != 0  # original untouched
    with pytest.raises(ConfigurationError):
        config.with_overrides(epsilon=2.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"walk_length": 0},
        {"diameter_hint": 0},
        {"crawl_hops": -1},
        {"epsilon": 0.0},
        {"epsilon": 1.5},
        {"backward_repetitions": 0},
        {"refine_repetitions": -1},
        {"scale_percentile": 0.0},
        {"scale_percentile": 100.0},
        {"calibration_walks": 0},
        {"max_attempts_per_sample": 0},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        WalkEstimateConfig(**kwargs)


def test_config_is_frozen():
    config = WalkEstimateConfig()
    with pytest.raises(Exception):
        config.crawl_hops = 5  # type: ignore[misc]


class TestCrawlPipelineConfig:
    def test_defaults_are_valid(self):
        from repro.core.config import CrawlPipelineConfig

        config = CrawlPipelineConfig()
        assert config.concurrency == 4
        assert config.max_depth is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"concurrency": 0},
            {"batch_size": 0},
            {"rows_per_epoch": 0},
            {"walks_per_epoch": 0},
            {"steps_per_walk": 0},
            {"max_depth": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        from repro.core.config import CrawlPipelineConfig

        with pytest.raises(ConfigurationError):
            CrawlPipelineConfig(**kwargs)

    def test_with_overrides_revalidates(self):
        from repro.core.config import CrawlPipelineConfig

        config = CrawlPipelineConfig().with_overrides(concurrency=8, max_depth=3)
        assert config.concurrency == 8 and config.max_depth == 3
        with pytest.raises(ConfigurationError):
            config.with_overrides(batch_size=-2)
