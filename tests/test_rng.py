"""Seeding and weighted-choice helpers."""

import numpy as np
import pytest

from repro.rng import choice_weighted, ensure_rng, spawn


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).integers(0, 1000, size=5)
    b = ensure_rng(7).integers(0, 1000, size=5)
    assert np.array_equal(a, b)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(3)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_children_are_independent_and_deterministic():
    children_a = spawn(ensure_rng(5), 3)
    children_b = spawn(ensure_rng(5), 3)
    for ca, cb in zip(children_a, children_b):
        assert np.array_equal(ca.integers(0, 100, 10), cb.integers(0, 100, 10))
    # Distinct children produce distinct streams.
    fresh = spawn(ensure_rng(5), 2)
    assert not np.array_equal(
        fresh[0].integers(0, 1000, 10), fresh[1].integers(0, 1000, 10)
    )


def test_spawn_rejects_negative():
    with pytest.raises(ValueError):
        spawn(ensure_rng(1), -1)


def test_choice_weighted_uniform_covers_all_items(rng):
    seen = {choice_weighted(rng, ["a", "b", "c"]) for _ in range(200)}
    assert seen == {"a", "b", "c"}


def test_choice_weighted_respects_weights(rng):
    counts = {"x": 0, "y": 0}
    for _ in range(2000):
        counts[choice_weighted(rng, ["x", "y"], [9.0, 1.0])] += 1
    assert counts["x"] > counts["y"] * 4


def test_choice_weighted_zero_weight_never_chosen(rng):
    for _ in range(100):
        assert choice_weighted(rng, ["a", "b"], [1.0, 0.0]) == "a"


def test_choice_weighted_rejects_bad_input(rng):
    with pytest.raises(ValueError):
        choice_weighted(rng, [])
    with pytest.raises(ValueError):
        choice_weighted(rng, ["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        choice_weighted(rng, ["a", "b"], [0.0, 0.0])
