"""Property-based tests for the Markov machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import barabasi_albert_graph
from repro.markov.distributions import (
    kl_divergence,
    l_infinity_distance,
    total_variation_distance,
)
from repro.markov.matrix import TransitionMatrix
from repro.walks.transitions import (
    LazyWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)

DESIGN_FACTORIES = [
    SimpleRandomWalk,
    MetropolisHastingsWalk,
    lambda: LazyWalk(SimpleRandomWalk(), 0.3),
]


@given(
    st.integers(min_value=5, max_value=30),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(DESIGN_FACTORIES),
)
@settings(max_examples=25, deadline=None)
def test_matrix_row_stochastic_on_random_graphs(n, m, seed, make_design):
    if m >= n:
        return
    graph = barabasi_albert_graph(n, m, seed=seed).relabeled()
    matrix = TransitionMatrix(graph, make_design()).matrix
    assert np.all(matrix >= -1e-15)
    assert np.allclose(matrix.sum(axis=1), 1.0)


@given(
    st.integers(min_value=5, max_value=25),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_p_t_stays_distribution(n, seed, t):
    graph = barabasi_albert_graph(n, 2, seed=seed).relabeled() if n > 2 else None
    if graph is None:
        return
    matrix = TransitionMatrix(graph, SimpleRandomWalk())
    p_t = matrix.step_distribution(0, t)
    assert np.all(p_t >= -1e-12)
    assert np.isclose(p_t.sum(), 1.0)


@st.composite
def distribution_pairs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    a = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    b = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    return a / a.sum(), b / b.sum()


@given(distribution_pairs())
@settings(max_examples=60, deadline=None)
def test_distances_nonnegative_and_zero_on_self(pair):
    p, q = pair
    assert l_infinity_distance(p, q) >= 0
    assert total_variation_distance(p, q) >= 0
    assert kl_divergence(p, q) >= -1e-12  # Gibbs' inequality
    assert l_infinity_distance(p, p) == 0
    assert total_variation_distance(p, p) == 0
    assert abs(kl_divergence(p, p)) < 1e-12


@given(distribution_pairs())
@settings(max_examples=60, deadline=None)
def test_distance_symmetry_properties(pair):
    p, q = pair
    # l-inf and TV are symmetric; KL need not be.
    assert l_infinity_distance(p, q) == l_infinity_distance(q, p)
    assert total_variation_distance(p, q) == total_variation_distance(q, p)


@given(distribution_pairs())
@settings(max_examples=40, deadline=None)
def test_tv_is_half_l1(pair):
    p, q = pair
    assert total_variation_distance(p, q) == np.abs(p - q).sum() / 2
