"""Property tests for the charged-API accounting invariants.

Two invariants hold under *any* mix of walks, batch lookups, attribute
fetches, restrictions, and budgets:

* the counter's unique-node cost never exceeds the discovered graph's
  membership — every charge leaves a trace in the store;
* a query budget binds *before* the over-budget API call, never after —
  ``unique_nodes ≤ limit`` at every observable moment, including the
  instant :class:`QueryBudgetExceededError` is raised.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, QueryBudgetExceededError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.accounting import QueryBudget, QueryCounter
from repro.osn.api import SocialNetworkAPI
from repro.osn.restrictions import (
    FixedRandomKRestriction,
    RandomKRestriction,
    TruncatedKRestriction,
)
from repro.rng import ensure_rng
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk
from repro.walks.walker import run_walk


def _restriction(kind: int, seed: int):
    if kind == 1:
        return RandomKRestriction(2, seed=seed)
    if kind == 2:
        return FixedRandomKRestriction(2, seed=seed)
    if kind == 3:
        return TruncatedKRestriction(2)
    return None


def _check_invariants(api, limit):
    assert api.counter.unique_nodes <= api.discovered.membership_size
    if limit is not None:
        assert api.counter.unique_nodes <= limit


@given(
    nodes=st.integers(min_value=8, max_value=24),
    graph_seed=st.integers(min_value=0, max_value=10**6),
    restriction_kind=st.integers(min_value=0, max_value=3),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["walk", "batch", "degrees", "attribute", "neighbors"]),
            st.integers(min_value=0, max_value=10**6),
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=60, deadline=None)
def test_unique_cost_bounded_by_membership_and_budget(
    nodes, graph_seed, restriction_kind, limit, ops
):
    graph = barabasi_albert_graph(nodes, 2, seed=graph_seed).relabeled()
    graph.set_attribute("x", {n: float(n) for n in graph.nodes()})
    api = SocialNetworkAPI(
        graph,
        budget=QueryBudget(limit),
        restriction=_restriction(restriction_kind, graph_seed),
    )
    designs = [SimpleRandomWalk(), MetropolisHastingsWalk()]
    for kind, op_seed in ops:
        rng = ensure_rng(op_seed)
        try:
            if kind == "walk":
                design = designs[op_seed % len(designs)]
                start = int(rng.integers(0, nodes))
                run_walk(api, design, start, 4, seed=rng)
            elif kind == "batch":
                api.neighbors_batch(rng.integers(0, nodes, size=6))
            elif kind == "degrees":
                api.degrees_batch(rng.integers(0, nodes, size=6))
            elif kind == "attribute":
                api.attribute(int(rng.integers(0, nodes)), "x")
            else:
                api.neighbors(int(rng.integers(0, nodes)))
        except QueryBudgetExceededError:
            # Must raise *before* the over-budget call went through.
            _check_invariants(api, limit)
        except GraphError:
            pass  # stuck walk under a harsh restriction; accounting still holds
        _check_invariants(api, limit)


@given(
    nodes=st.integers(min_value=8, max_value=24),
    graph_seed=st.integers(min_value=0, max_value=10**6),
    batches=st.lists(
        st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=10),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_batch_accounting_equals_scalar_accounting(nodes, graph_seed, batches):
    graph = barabasi_albert_graph(nodes, 2, seed=graph_seed).relabeled()
    scalar = SocialNetworkAPI(graph)
    batch = SocialNetworkAPI(graph)
    for ids in batches:
        ids = [i % nodes for i in ids]
        expected = [scalar.neighbors(i) for i in ids]
        assert batch.neighbors_batch(np.asarray(ids, dtype=np.int64)) == expected
    assert batch.query_cost == scalar.query_cost
    assert batch.raw_calls == scalar.raw_calls
    assert batch.discovered.membership_size == scalar.discovered.membership_size


@given(
    entries=st.lists(st.integers(min_value=0, max_value=30), max_size=40),
    split=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_charge_batch_equals_charge_sequence(entries, split):
    scalar, mixed = QueryCounter(), QueryCounter()
    expected = [scalar.charge(n) for n in entries]
    cut = split % (len(entries) + 1)
    head, tail = entries[:cut], entries[cut:]
    got = list(mixed.charge_batch(np.asarray(head, dtype=np.int64)))
    got.extend(mixed.charge(n) for n in tail)
    assert got == expected
    assert mixed.unique_nodes == scalar.unique_nodes
    assert mixed.raw_calls == scalar.raw_calls


def test_budget_zero_blocks_everything(small_ba):
    api = SocialNetworkAPI(small_ba, budget=QueryBudget(0))
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors(0)
    with pytest.raises(QueryBudgetExceededError):
        api.neighbors_batch(np.array([0, 1]))
    assert api.query_cost == 0
