"""Property-based tests for WALK-ESTIMATE's core invariants.

The crown jewel: on arbitrary random graphs, the *exact expectation* of the
backward estimators (enumerated over all backward paths, for any proposal)
equals the matrix-power ground truth — unbiasedness as an algebraic
identity, not a Monte-Carlo approximation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crawl import InitialCrawl
from repro.core.unbiased import backward_candidates
from repro.core.weighted import (
    ForwardHistory,
    backward_step_distribution,
    smoothing_constant,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.rng import ensure_rng
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk
from repro.walks.walker import run_walk


def exact_ws_bw_expectation(graph, design, node, start, t, history, epsilon, crawl):
    """E[WS-BW] enumerated exactly over every backward path."""
    if crawl is not None and crawl.covers_step(t):
        return crawl.probability(node, t)
    if t == 0:
        return 1.0 if node == start else 0.0
    candidates = backward_candidates(graph, design, node)
    pi = backward_step_distribution(candidates, history, t - 1, epsilon)
    total = 0.0
    for index, predecessor in enumerate(candidates):
        transition = design.transition_probability(graph, predecessor, node)
        if transition == 0.0:
            continue
        # pi(x) * [T(x,u)/pi(x)] * E[recursive] = T(x,u) * E[recursive].
        total += transition * exact_ws_bw_expectation(
            graph, design, predecessor, start, t - 1, history, epsilon, crawl
        )
        del index
    return total


@given(
    st.integers(min_value=5, max_value=14),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=0.05, max_value=0.9),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_ws_bw_expectation_identity(n, seed, t, epsilon, use_history, use_crawl):
    graph = barabasi_albert_graph(n, 2, seed=seed).relabeled()
    design = SimpleRandomWalk()
    matrix = TransitionMatrix(graph, design)
    truth = matrix.step_distribution(0, t)
    rng = ensure_rng(seed)
    history = None
    if use_history:
        history = ForwardHistory(0, t)
        for _ in range(10):
            history.record(run_walk(graph, design, 0, t, seed=rng))
    crawl = None
    if use_crawl:
        crawl = InitialCrawl(SocialNetworkAPI(graph), design, 0, hops=1)
    for node in graph.nodes():
        expected = exact_ws_bw_expectation(
            graph, design, node, 0, t, history, epsilon, crawl
        )
        assert abs(expected - truth[node]) < 1e-10


@given(
    st.integers(min_value=5, max_value=12),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_ws_bw_expectation_identity_mhrw(n, seed, t):
    graph = barabasi_albert_graph(n, 2, seed=seed).relabeled()
    design = MetropolisHastingsWalk()
    matrix = TransitionMatrix(graph, design)
    truth = matrix.step_distribution(0, t)
    for node in graph.nodes():
        expected = exact_ws_bw_expectation(
            graph, design, node, 0, t, None, 0.2, None
        )
        assert abs(expected - truth[node]) < 1e-10


@given(
    st.integers(min_value=0, max_value=10000),
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=100, deadline=None)
def test_smoothing_constant_bounds(total, k, epsilon):
    c = smoothing_constant(total, k, epsilon)
    assert c >= 1.0
    if total > 0:
        share = c * k / (total + c * k)
        # The uniform share never drops below epsilon (floor included).
        assert share >= epsilon - 1e-9


@given(
    st.integers(min_value=5, max_value=16),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_crawl_table_is_exact_distribution(n, seed, hops):
    graph = barabasi_albert_graph(n, 2, seed=seed).relabeled()
    design = SimpleRandomWalk()
    matrix = TransitionMatrix(graph, design)
    crawl = InitialCrawl(SocialNetworkAPI(graph), design, 0, hops=hops)
    for s in range(hops + 1):
        table = np.array([crawl.probability(v, s) for v in graph.nodes()])
        assert np.all(table >= 0)
        assert np.isclose(table.sum(), 1.0)
        assert np.allclose(table, matrix.step_distribution(0, s))


@given(
    st.integers(min_value=5, max_value=20),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_backward_candidates_cover_all_predecessors(n, seed):
    graph = barabasi_albert_graph(n, 2, seed=seed).relabeled()
    for design in (SimpleRandomWalk(), MetropolisHastingsWalk()):
        matrix = TransitionMatrix(graph, design).matrix
        for node in graph.nodes():
            candidates = set(backward_candidates(graph, design, node))
            predecessors = {
                x for x in graph.nodes() if matrix[x, node] > 0
            }
            assert predecessors <= candidates
