"""Stateful cross-validation of Graph against NetworkX.

A hypothesis rule-based state machine drives the same random sequence of
mutations into our :class:`Graph` and a reference ``networkx.Graph``, and
checks the structures agree after every step — the strongest guard against
bookkeeping drift in the adjacency/cache/edge-count logic.
"""

import networkx as nx
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph

NODES = st.integers(min_value=0, max_value=15)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ours = Graph()
        self.reference = nx.Graph()

    @rule(node=NODES)
    def add_node(self, node):
        self.ours.add_node(node)
        self.reference.add_node(node)

    @rule(u=NODES, v=NODES)
    def add_edge(self, u, v):
        if u == v:
            try:
                self.ours.add_edge(u, v)
            except GraphError:
                return
            raise AssertionError("self-loop accepted")
        self.ours.add_edge(u, v)
        self.reference.add_edge(u, v)

    @rule(u=NODES, v=NODES)
    def remove_edge(self, u, v):
        if self.reference.has_edge(u, v):
            self.ours.remove_edge(u, v)
            self.reference.remove_edge(u, v)
        else:
            try:
                self.ours.remove_edge(u, v)
            except GraphError:
                return
            raise AssertionError("removing a missing edge did not raise")

    @rule(node=NODES)
    def remove_node(self, node):
        if self.reference.has_node(node):
            self.ours.remove_node(node)
            self.reference.remove_node(node)
        else:
            try:
                self.ours.remove_node(node)
            except NodeNotFoundError:
                return
            raise AssertionError("removing a missing node did not raise")

    @invariant()
    def same_structure(self):
        assert self.ours.number_of_nodes() == self.reference.number_of_nodes()
        assert self.ours.number_of_edges() == self.reference.number_of_edges()
        assert set(self.ours.nodes()) == set(self.reference.nodes())
        for node in self.ours.nodes():
            assert set(self.ours.neighbors(node)) == set(
                self.reference.neighbors(node)
            )
            assert self.ours.degree(node) == self.reference.degree(node)


GraphMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestGraphAgainstNetworkx = GraphMachine.TestCase
