"""Property-based tests for estimators and OSN accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.aggregates import importance_weighted_mean, plain_mean
from repro.estimators.metrics import empirical_distribution
from repro.osn.accounting import QueryCounter


@st.composite
def values_with_weights(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    values = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50),
            min_size=n,
            max_size=n,
        )
    )
    return values, weights


@given(values_with_weights())
@settings(max_examples=80, deadline=None)
def test_weighted_mean_within_value_range(pair):
    values, weights = pair
    result = importance_weighted_mean(values, weights)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(values_with_weights())
@settings(max_examples=80, deadline=None)
def test_uniform_weights_reduce_to_plain_mean(pair):
    values, _ = pair
    weights = [2.5] * len(values)
    weighted = importance_weighted_mean(values, weights)
    assert weighted == pytest.approx(plain_mean(values), rel=1e-9, abs=1e-9)


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=300),
)
@settings(max_examples=80, deadline=None)
def test_empirical_distribution_is_distribution(nodes):
    pdf = empirical_distribution(nodes, 10)
    assert pdf.shape == (10,)
    assert np.all(pdf >= 0)
    assert np.isclose(pdf.sum(), 1.0)
    # Mass sits exactly on visited nodes.
    for node in range(10):
        assert (pdf[node] > 0) == (node in nodes)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=200))
@settings(max_examples=80, deadline=None)
def test_query_counter_unique_vs_raw(nodes):
    counter = QueryCounter()
    for node in nodes:
        counter.charge(node)
    assert counter.raw_calls == len(nodes)
    assert counter.unique_nodes == len(set(nodes))
    assert counter.unique_nodes <= counter.raw_calls
