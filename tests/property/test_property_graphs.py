"""Property-based tests over random graphs (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    bfs_distances,
    connected_components,
    degree_histogram,
    is_connected,
)


@st.composite
def random_edge_graphs(draw):
    """Arbitrary simple graphs from random edge lists."""
    n = draw(st.integers(min_value=2, max_value=25))
    edge_count = draw(st.integers(min_value=1, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    g = Graph()
    g.add_nodes_from(range(n))
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    return g


@given(random_edge_graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(g):
    assert sum(g.degrees().values()) == 2 * g.number_of_edges()


@given(random_edge_graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_is_symmetric(g):
    for u, v in g.edges():
        assert g.has_edge(v, u)
        assert u in g.neighbors(v)
        assert v in g.neighbors(u)


@given(random_edge_graphs())
@settings(max_examples=40, deadline=None)
def test_components_partition_nodes(g):
    components = connected_components(g)
    seen = set()
    for component in components:
        assert not (component & seen)
        seen |= component
    assert seen == set(g.nodes())


@given(random_edge_graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_distances_triangle_inequality(g):
    # d(s, v) <= d(s, u) + 1 for every edge (u, v).
    source = g.nodes()[0]
    distances = bfs_distances(g, source)
    for u, v in g.edges():
        if u in distances and v in distances:
            assert abs(distances[u] - distances[v]) <= 1


@given(random_edge_graphs())
@settings(max_examples=40, deadline=None)
def test_degree_histogram_counts_nodes(g):
    histogram = degree_histogram(g)
    assert sum(histogram.values()) == g.number_of_nodes()


@given(random_edge_graphs())
@settings(max_examples=30, deadline=None)
def test_relabeled_preserves_shape(g):
    r = g.relabeled()
    assert r.number_of_nodes() == g.number_of_nodes()
    assert r.number_of_edges() == g.number_of_edges()
    assert sorted(degree_histogram(r).items()) == sorted(
        degree_histogram(g).items()
    )


@given(
    st.integers(min_value=5, max_value=60),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_barabasi_albert_invariants(n, m, seed):
    if m >= n:
        return
    g = barabasi_albert_graph(n, m, seed=seed)
    assert g.number_of_nodes() == n
    assert g.number_of_edges() == m * (n - m)
    assert is_connected(g)


@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_erdos_renyi_is_simple(n, p, seed):
    g = erdos_renyi_graph(n, p, seed=seed)
    assert g.number_of_nodes() == n
    max_edges = n * (n - 1) // 2
    assert 0 <= g.number_of_edges() <= max_edges
    for u, v in g.edges():
        assert u != v


@given(
    st.integers(min_value=6, max_value=30),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_watts_strogatz_preserves_edges(n, beta, seed):
    g = watts_strogatz_graph(n, 4, beta, seed=seed)
    assert g.number_of_edges() == 2 * n
