"""DiscoveredGraph invariants under randomized interleaved operations.

The async pipeline turns the discovered graph into shared mutable state:
a crawler appends while a publisher compacts.  These properties pin what
must survive any interleaving of appends, membership marks, lookups, and
compactions — plus a genuinely threaded stress test of the locking
discipline the module documents.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.discovered import DiscoveredGraph

#: Node universe kept small so interleavings collide on purpose.
NODES = st.integers(min_value=0, max_value=40)


@st.composite
def operation_sequences(draw):
    """Random interleavings of record / mark / lookup / compact."""
    count = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["record", "mark", "lookup", "compact"]))
        if kind == "record":
            node = draw(NODES)
            row = tuple(sorted(set(draw(st.lists(NODES, min_size=0, max_size=8)))))
            ops.append(("record", node, row))
        elif kind == "mark":
            node = draw(NODES)
            extras = tuple(draw(st.lists(NODES, min_size=0, max_size=4)))
            ops.append(("mark", node, extras))
        elif kind == "lookup":
            probes = tuple(draw(st.lists(NODES, min_size=1, max_size=10)))
            ops.append(("lookup", probes))
        else:
            ops.append(("compact",))
    return ops


def replay(ops):
    """Run *ops*, checking the running invariants; return (store, model)."""
    store = DiscoveredGraph(name="prop")
    rows = {}
    members = set()
    for op in ops:
        if op[0] == "record":
            _, node, row = op
            store.record(node, row)
            rows[node] = row
            members.add(node)
            members.update(row)
        elif op[0] == "mark":
            _, node, extras = op
            store.mark(node, extras)
            members.add(node)
            members.update(extras)
        elif op[0] == "lookup":
            probes = np.asarray(op[1], dtype=np.int64)
            mask = store.fetched_mask(probes)
            degrees, known = store.try_degrees(probes)
            assert np.array_equal(mask, known)
            for probe, is_fetched, degree in zip(
                probes.tolist(), mask.tolist(), degrees.tolist()
            ):
                assert is_fetched == (probe in rows)
                if is_fetched:
                    assert degree == len(rows[probe])
        else:
            slab = store.compact()
            assert np.array_equal(slab.csr.node_ids, np.sort(slab.csr.node_ids))
        # Running invariants after every operation:
        assert store.membership_size == len(members)
        assert store.fetched_count == len(rows)
    return store, rows, members


@given(operation_sequences())
@settings(max_examples=60, deadline=None)
def test_membership_is_monotone_and_degrees_stable(ops):
    store = DiscoveredGraph(name="prop")
    seen_members = 0
    recorded = {}
    for op in ops:
        if op[0] == "record":
            _, node, row = op
            store.record(node, row)
            recorded[node] = row
        elif op[0] == "mark":
            store.mark(op[1], op[2])
        elif op[0] == "compact":
            store.compact()
        # Membership never shrinks, whatever the interleaving.
        assert store.membership_size >= seen_members
        seen_members = store.membership_size
        # Once fetched, a row answers with its latest recorded degree.
        if recorded:
            ids = np.fromiter(recorded, dtype=np.int64)
            degrees = store.degrees_of(ids)
            expected = np.fromiter((len(recorded[int(n)]) for n in ids), np.int64)
            assert np.array_equal(degrees, expected)


@given(operation_sequences())
@settings(max_examples=60, deadline=None)
def test_interleaved_lookups_always_consistent(ops):
    replay(ops)


@given(operation_sequences())
@settings(max_examples=60, deadline=None)
def test_compact_round_trips_against_from_scratch_build(ops):
    store, rows, members = replay(ops)
    slab = store.compact()
    # A from-scratch store fed only the final rows (then marked up to the
    # same membership) must compact to the identical slab.
    scratch = DiscoveredGraph(name="scratch")
    for node, row in rows.items():
        scratch.record(node, row)
    for node in members:
        scratch.mark(node)
    twin = scratch.compact()
    assert np.array_equal(slab.csr.node_ids, twin.csr.node_ids)
    assert np.array_equal(slab.csr.indptr, twin.csr.indptr)
    assert np.array_equal(slab.csr.indices, twin.csr.indices)
    assert np.array_equal(slab.fetched, twin.fetched)
    # And the slab itself reflects the model exactly.
    assert slab.csr.number_of_nodes() == len(members)
    assert set(slab.fetched_ids.tolist()) == set(rows)
    for node, row in rows.items():
        assert slab.csr.neighbors(node) == row


@given(operation_sequences())
@settings(max_examples=40, deadline=None)
def test_fetched_csr_is_the_fetched_induced_subgraph(ops):
    store, rows, members = replay(ops)
    induced = store.compact().fetched_csr()
    assert set(induced.node_ids.tolist()) == set(rows)
    for node, row in rows.items():
        expected = tuple(v for v in row if v in rows)
        assert induced.neighbors(node) == expected


def test_locking_discipline_under_threaded_producer_consumer():
    """Satellite pin: appends are safe under a concurrently compacting
    publisher — by locking, not by CPython luck.

    Four producer threads hammer disjoint row ranges while a consumer
    thread compacts and array-reads in a tight loop.  Every intermediate
    compaction must be internally consistent (CSRGraph validates its own
    arrays on construction); the final state must equal a serial build.
    """
    store = DiscoveredGraph(name="threaded")
    universe = 400
    producers = 4
    per_producer = universe // producers
    errors = []
    done = threading.Event()

    def produce(base):
        try:
            for node in range(base, base + per_producer):
                row = tuple(sorted({(node * 7 + k) % universe for k in range(1, 6)}))
                store.record(node, row)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def consume():
        try:
            while not done.is_set():
                slab = store.compact()
                # Reading the array interface mid-append must be coherent:
                ids = slab.fetched_ids
                if ids.size:
                    degrees = store.degrees_of(ids)
                    assert np.all(degrees > 0)
                store.fetched_mask(np.arange(universe))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=produce, args=(i * per_producer,))
        for i in range(producers)
    ]
    consumer = threading.Thread(target=consume)
    consumer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    done.set()
    consumer.join()
    assert not errors, errors
    assert store.fetched_count == universe
    # Final compaction equals a serial from-scratch build.
    serial = DiscoveredGraph(name="serial")
    for node in range(universe):
        row = tuple(sorted({(node * 7 + k) % universe for k in range(1, 6)}))
        serial.record(node, row)
    final, twin = store.compact(), serial.compact()
    assert np.array_equal(final.csr.node_ids, twin.csr.node_ids)
    assert np.array_equal(final.csr.indptr, twin.csr.indptr)
    assert np.array_equal(final.csr.indices, twin.csr.indices)
    assert np.array_equal(final.fetched, twin.fetched)
