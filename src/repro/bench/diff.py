"""Diff fresh benchmark envelopes against committed baselines.

:func:`check_directories` is the regression gate: for every artifact in
the suite it loads the committed baseline and the fresh run, diffs the
flat metric maps under the exact/timing policy, and folds everything
into one :class:`CheckReport` whose :attr:`~CheckReport.ok` decides the
process exit code.  The report renders as a readable per-metric table —
the thing a developer stares at when CI goes red.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.io import PathLike
from repro.bench.policy import (
    CheckPolicy,
    Direction,
    MetricKind,
    TimingMode,
    classify,
    timing_regression,
)
from repro.bench.schema import Envelope, hosts_match, load_artifact

FAIL = "fail"
WARN = "warn"
INFO = "info"


@dataclass(frozen=True)
class MetricDiff:
    """One reportable difference (or structural problem)."""

    artifact: str
    key: str
    kind: str  # "exact" | "timing" | "presence" | "structure"
    severity: str  # FAIL | WARN | INFO
    baseline: Optional[object]
    current: Optional[object]
    message: str

    def render(self) -> str:
        label = f"{self.severity.upper():4s} {self.kind:8s}"
        if self.key:
            return f"  {label} {self.key}: {self.message}"
        return f"  {label} {self.message}"


@dataclass
class ArtifactReport:
    """The comparison outcome for one ``BENCH_*.json``."""

    artifact: str
    diffs: List[MetricDiff] = field(default_factory=list)
    compared_exact: int = 0
    compared_timing: int = 0
    host_match: bool = False
    host_note: str = ""
    scale: Optional[str] = None

    def add(
        self,
        key: str,
        kind: str,
        severity: str,
        message: str,
        baseline: Optional[object] = None,
        current: Optional[object] = None,
    ) -> None:
        self.diffs.append(
            MetricDiff(self.artifact, key, kind, severity, baseline, current, message)
        )

    @property
    def failures(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.severity == FAIL]

    @property
    def warnings(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.severity == WARN]


@dataclass
class CheckReport:
    """Every artifact's report plus the run-level verdict."""

    baseline_dir: Path
    current_dir: Path
    artifacts: List[ArtifactReport] = field(default_factory=list)

    @property
    def failures(self) -> List[MetricDiff]:
        return [d for report in self.artifacts for d in report.failures]

    @property
    def warnings(self) -> List[MetricDiff]:
        return [d for report in self.artifacts for d in report.warnings]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines: List[str] = []
        for report in self.artifacts:
            lines.append(f"== {report.artifact} ==")
            lines.append(
                f"  compared {report.compared_exact} exact + "
                f"{report.compared_timing} timing metrics; "
                f"scale={report.scale or 'unknown'}; {report.host_note}"
            )
            for diff in report.diffs:
                lines.append(diff.render())
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"repro.bench check: {verdict} — {len(self.failures)} failure(s), "
            f"{len(self.warnings)} warning(s) across "
            f"{len(self.artifacts)} artifact(s) "
            f"(baseline={self.baseline_dir}, current={self.current_dir})"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "baseline_dir": str(self.baseline_dir),
            "current_dir": str(self.current_dir),
            "artifacts": [
                {
                    "artifact": report.artifact,
                    "scale": report.scale,
                    "host_match": report.host_match,
                    "compared_exact": report.compared_exact,
                    "compared_timing": report.compared_timing,
                    "diffs": [
                        {
                            "key": d.key,
                            "kind": d.kind,
                            "severity": d.severity,
                            "baseline": d.baseline,
                            "current": d.current,
                            "message": d.message,
                        }
                        for d in report.diffs
                    ],
                }
                for report in self.artifacts
            ],
        }


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def compare_envelopes(
    artifact: str,
    baseline: Envelope,
    current: Envelope,
    policy: CheckPolicy,
) -> ArtifactReport:
    """Diff one baseline/current envelope pair under *policy*."""
    report = ArtifactReport(artifact=artifact)
    report.scale = current.scale or baseline.scale
    report.host_match, report.host_note = hosts_match(baseline.host, current.host)

    if baseline.legacy:
        report.add(
            "",
            "structure",
            WARN,
            "baseline is a pre-envelope artifact (no scale/host metadata); "
            "timing metrics downgraded to warnings",
        )
    if (
        baseline.scale is not None
        and current.scale is not None
        and baseline.scale != current.scale
    ):
        report.add(
            "",
            "structure",
            FAIL,
            f"scale mismatch: baseline={baseline.scale!r} "
            f"current={current.scale!r} — records are not comparable; "
            "regenerate the baseline at the suite's pinned scale",
        )
        return report
    if baseline.benchmark != current.benchmark:
        report.add(
            "",
            "structure",
            FAIL,
            f"benchmark name changed: {baseline.benchmark!r} -> "
            f"{current.benchmark!r}",
        )
        return report

    for key in sorted(set(baseline.metrics) | set(current.metrics)):
        in_base = key in baseline.metrics
        in_current = key in current.metrics
        if in_base and not in_current:
            report.add(
                key,
                "presence",
                FAIL,
                f"metric disappeared (baseline {_format_value(baseline.metrics[key])})",
                baseline=baseline.metrics[key],
            )
            continue
        if in_current and not in_base:
            report.add(
                key,
                "presence",
                WARN,
                f"new metric with no baseline "
                f"(current {_format_value(current.metrics[key])})",
                current=current.metrics[key],
            )
            continue
        base_value = baseline.metrics[key]
        cur_value = current.metrics[key]
        kind, direction = classify(key)
        if kind is MetricKind.EXACT:
            report.compared_exact += 1
            if base_value != cur_value or (
                isinstance(base_value, bool) is not isinstance(cur_value, bool)
            ):
                report.add(
                    key,
                    "exact",
                    FAIL,
                    f"deterministic metric drifted: "
                    f"{_format_value(base_value)} -> {_format_value(cur_value)}",
                    baseline=base_value,
                    current=cur_value,
                )
            continue
        report.compared_timing += 1
        regression = timing_regression(float(base_value), float(cur_value), direction)
        if regression <= policy.tolerance:
            continue
        # The noise floor: a sub-floor baseline duration is jitter, not
        # signal, so its swings never gate — even on a matching host.
        sub_floor = (
            direction is Direction.LOWER_IS_BETTER
            and float(base_value) < policy.min_timing_seconds
        )
        gate = (
            policy.timing_mode is TimingMode.GATE
            and report.host_match
            and not sub_floor
        )
        if not report.host_match:
            note = f" [warn-only: {report.host_note}]"
        elif policy.timing_mode is TimingMode.WARN:
            note = " [warn-only: timing_mode=warn]"
        elif sub_floor:
            note = (
                f" [warn-only: baseline {_format_value(base_value)}s under "
                f"the {policy.min_timing_seconds:g}s min_timing_seconds floor]"
            )
        else:
            note = ""
        report.add(
            key,
            "timing",
            FAIL if gate else WARN,
            f"{_format_value(base_value)} -> {_format_value(cur_value)} "
            f"({regression:+.1%} regression, tolerance {policy.tolerance:.0%})"
            f"{note}",
            baseline=base_value,
            current=cur_value,
        )
    return report


def check_directories(
    baseline_dir: PathLike,
    current_dir: PathLike,
    artifacts: Sequence[str],
    policy: Optional[CheckPolicy] = None,
) -> CheckReport:
    """Compare every named artifact between two directories."""
    policy = policy or CheckPolicy()
    baseline_root = Path(baseline_dir)
    current_root = Path(current_dir)
    report = CheckReport(baseline_dir=baseline_root, current_dir=current_root)
    for artifact in artifacts:
        entry = ArtifactReport(artifact=artifact)
        baseline_path = baseline_root / artifact
        current_path = current_root / artifact
        if not current_path.is_file():
            entry.add(
                "",
                "presence",
                FAIL,
                f"current run produced no {artifact} (expected at {current_path})",
            )
            report.artifacts.append(entry)
            continue
        if not baseline_path.is_file():
            entry.add(
                "",
                "presence",
                WARN,
                f"no committed baseline at {baseline_path}; commit the fresh "
                "artifact to start gating this benchmark",
            )
            report.artifacts.append(entry)
            continue
        report.artifacts.append(
            compare_envelopes(
                artifact,
                load_artifact(baseline_path),
                load_artifact(current_path),
                policy,
            )
        )
    return report
