"""One entry point for the whole benchmark suite, at pinned scales.

``python -m repro.bench run --suite smoke --out bench_results/`` replaces
five ad-hoc CLI invocations: each :class:`BenchJob` names a writer script
under ``benchmarks/``, the pinned arguments for the suite's scale, and
the artifact it must produce.  Writers run as subprocesses (they already
are CLIs, and the sharded benchmarks spawn worker pools that want a
clean interpreter) with ``repro``'s own source tree prepended to
``PYTHONPATH`` so the child can import the envelope schema regardless of
how the parent was launched.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.bench.io import PathLike


class BenchRunError(RuntimeError):
    """At least one benchmark writer failed (exit code or missing output)."""


@dataclass(frozen=True)
class BenchJob:
    """One benchmark writer invocation inside a suite."""

    name: str
    script: str
    artifact: str
    argv: Tuple[str, ...] = ()


def _suite(*jobs: BenchJob) -> Tuple[BenchJob, ...]:
    return jobs


#: The pinned suites.  ``smoke`` mirrors the CI budget (tiny workloads,
#: deterministic seeds) — it is the scale the committed baselines are
#: recorded at.  ``full`` is each writer's paper-scale default.
SUITES: Dict[str, Tuple[BenchJob, ...]] = {
    "smoke": _suite(
        BenchJob(
            "throughput",
            "bench_throughput.py",
            "BENCH_throughput.json",
            ("--quick",),
        ),
        BenchJob(
            "querycost",
            "bench_querycost.py",
            "BENCH_querycost.json",
            ("--quick",),
        ),
        BenchJob(
            "parallel",
            "bench_parallel.py",
            "BENCH_parallel.json",
            ("--quick", "--workers", "1", "2"),
        ),
        BenchJob(
            "asynccrawl",
            "bench_async_crawl.py",
            "BENCH_asynccrawl.json",
            ("--quick", "--concurrency", "1", "4"),
        ),
        BenchJob(
            "service",
            "bench_service.py",
            "BENCH_service.json",
            ("--quick",),
        ),
    ),
    "full": _suite(
        BenchJob("throughput", "bench_throughput.py", "BENCH_throughput.json"),
        BenchJob("querycost", "bench_querycost.py", "BENCH_querycost.json"),
        BenchJob("parallel", "bench_parallel.py", "BENCH_parallel.json"),
        BenchJob(
            "asynccrawl", "bench_async_crawl.py", "BENCH_asynccrawl.json"
        ),
        BenchJob("service", "bench_service.py", "BENCH_service.json"),
    ),
}


def suite_artifacts(suite: str = "smoke") -> List[str]:
    """Artifact filenames a suite produces (the checker's default list)."""
    return [job.artifact for job in SUITES[suite]]


def _child_env() -> Dict[str, str]:
    """The writers' environment: inherit, plus repro's source on the path."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


def run_suite(
    jobs: Sequence[BenchJob],
    out_dir: PathLike,
    *,
    bench_dir: PathLike = "benchmarks",
    only: Optional[Sequence[str]] = None,
    echo: Callable[[str], None] = print,
) -> List[Path]:
    """Execute every job, writing artifacts into *out_dir*; return paths.

    Raises :class:`BenchRunError` naming every writer that exited
    non-zero or failed to produce its artifact — partial results stay on
    disk for inspection, but the run as a whole fails loudly.
    """
    bench_root = Path(bench_dir)
    out_root = Path(out_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    if only:
        unknown = sorted(set(only) - {job.name for job in jobs})
        if unknown:
            raise BenchRunError(
                f"unknown benchmark name(s) {unknown}; "
                f"suite has {sorted(job.name for job in jobs)}"
            )
        jobs = [job for job in jobs if job.name in set(only)]
    env = _child_env()
    produced: List[Path] = []
    errors: List[str] = []
    for job in jobs:
        script = bench_root / job.script
        if not script.is_file():
            errors.append(f"{job.name}: writer script {script} not found")
            continue
        artifact = out_root / job.artifact
        command = [sys.executable, str(script), *job.argv, "--out", str(artifact)]
        echo(f"[repro.bench] {job.name}: {' '.join(command)}")
        result = subprocess.run(command, env=env)
        if result.returncode != 0:
            errors.append(f"{job.name}: exited with code {result.returncode}")
            continue
        if not artifact.is_file():
            errors.append(f"{job.name}: completed but wrote no {artifact}")
            continue
        produced.append(artifact)
    if errors:
        raise BenchRunError(
            "benchmark suite failed: " + "; ".join(errors)
        )
    return produced
