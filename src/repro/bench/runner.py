"""One entry point for the whole benchmark suite, at pinned scales.

``python -m repro.bench run --suite smoke --out bench_results/`` replaces
five ad-hoc CLI invocations: each :class:`BenchJob` names a writer script
under ``benchmarks/``, the pinned arguments for the suite's scale, and
the artifact it must produce.  Writers run as subprocesses (they already
are CLIs, and the sharded benchmarks spawn worker pools that want a
clean interpreter) with ``repro``'s own source tree prepended to
``PYTHONPATH`` so the child can import the envelope schema regardless of
how the parent was launched.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.bench.io import PathLike

#: Trailing characters of a failed writer's stderr included in the error.
_STDERR_TAIL = 2000


class BenchRunError(RuntimeError):
    """At least one benchmark writer failed (exit code or missing output)."""


@dataclass(frozen=True)
class BenchJob:
    """One benchmark writer invocation inside a suite."""

    name: str
    script: str
    artifact: str
    argv: Tuple[str, ...] = ()


def _suite(*jobs: BenchJob) -> Tuple[BenchJob, ...]:
    return jobs


#: The pinned suites.  ``smoke`` mirrors the CI budget (tiny workloads,
#: deterministic seeds) — it is the scale the committed baselines are
#: recorded at.  ``full`` is each writer's paper-scale default.
SUITES: Dict[str, Tuple[BenchJob, ...]] = {
    "smoke": _suite(
        BenchJob(
            "throughput",
            "bench_throughput.py",
            "BENCH_throughput.json",
            ("--quick",),
        ),
        BenchJob(
            "querycost",
            "bench_querycost.py",
            "BENCH_querycost.json",
            ("--quick",),
        ),
        BenchJob(
            "parallel",
            "bench_parallel.py",
            "BENCH_parallel.json",
            ("--quick", "--workers", "1", "2"),
        ),
        BenchJob(
            "asynccrawl",
            "bench_async_crawl.py",
            "BENCH_asynccrawl.json",
            ("--quick", "--concurrency", "1", "4"),
        ),
        BenchJob(
            "service",
            "bench_service.py",
            "BENCH_service.json",
            ("--quick",),
        ),
        BenchJob(
            "faults",
            "bench_faults.py",
            "BENCH_faults.json",
            ("--quick",),
        ),
    ),
    "full": _suite(
        BenchJob("throughput", "bench_throughput.py", "BENCH_throughput.json"),
        BenchJob("querycost", "bench_querycost.py", "BENCH_querycost.json"),
        BenchJob("parallel", "bench_parallel.py", "BENCH_parallel.json"),
        BenchJob(
            "asynccrawl", "bench_async_crawl.py", "BENCH_asynccrawl.json"
        ),
        BenchJob("service", "bench_service.py", "BENCH_service.json"),
        BenchJob("faults", "bench_faults.py", "BENCH_faults.json"),
    ),
}


def suite_artifacts(suite: str = "smoke") -> List[str]:
    """Artifact filenames a suite produces (the checker's default list)."""
    return [job.artifact for job in SUITES[suite]]


def _child_env() -> Dict[str, str]:
    """The writers' environment: inherit, plus repro's source on the path."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


def _failure_detail(name: str, returncode: int, stderr: str) -> str:
    """One writer failure, with its captured stderr tail for diagnosis."""
    detail = f"{name}: exited with code {returncode}"
    tail = (stderr or "").strip()
    if tail:
        detail += f"; stderr: {tail[-_STDERR_TAIL:]}"
    return detail


def run_suite(
    jobs: Sequence[BenchJob],
    out_dir: PathLike,
    *,
    bench_dir: PathLike = "benchmarks",
    only: Optional[Sequence[str]] = None,
    echo: Callable[[str], None] = print,
) -> List[Path]:
    """Execute every job, writing artifacts into *out_dir*; return paths.

    Writers stage their artifacts into a temporary sibling of *out_dir*
    and the whole set is promoted only when every writer succeeds: a
    failed run never leaves a partial *out_dir* that ``repro.bench
    check`` could mistake for a clean one.  On failure the staging
    directory is kept for inspection and :class:`BenchRunError` names
    every writer that exited non-zero (with its captured stderr) or
    failed to produce its artifact.
    """
    bench_root = Path(bench_dir)
    out_root = Path(out_dir).resolve()
    out_root.parent.mkdir(parents=True, exist_ok=True)
    if only:
        unknown = sorted(set(only) - {job.name for job in jobs})
        if unknown:
            raise BenchRunError(
                f"unknown benchmark name(s) {unknown}; "
                f"suite has {sorted(job.name for job in jobs)}"
            )
        jobs = [job for job in jobs if job.name in set(only)]
    env = _child_env()
    staging = Path(
        tempfile.mkdtemp(prefix=f"{out_root.name}.", dir=str(out_root.parent))
    )
    staged: List[Path] = []
    errors: List[str] = []
    for job in jobs:
        script = bench_root / job.script
        if not script.is_file():
            errors.append(f"{job.name}: writer script {script} not found")
            continue
        artifact = staging / job.artifact
        command = [sys.executable, str(script), *job.argv, "--out", str(artifact)]
        echo(f"[repro.bench] {job.name}: {' '.join(command)}")
        result = subprocess.run(command, env=env, capture_output=True, text=True)
        if result.stdout:
            echo(result.stdout.rstrip("\n"))
        if result.returncode != 0:
            errors.append(
                _failure_detail(job.name, result.returncode, result.stderr)
            )
            continue
        if not artifact.is_file():
            errors.append(f"{job.name}: completed but wrote no {artifact}")
            continue
        staged.append(artifact)
    if errors:
        raise BenchRunError(
            "benchmark suite failed "
            f"(no artifacts promoted; staging kept at {staging}): "
            + "; ".join(errors)
        )
    out_root.mkdir(parents=True, exist_ok=True)
    produced: List[Path] = []
    for artifact in staged:
        destination = out_root / artifact.name
        os.replace(artifact, destination)
        produced.append(destination)
    shutil.rmtree(staging, ignore_errors=True)
    return produced
