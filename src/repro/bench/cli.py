"""The ``python -m repro.bench`` command line.

Three subcommands make up the regression-gating workflow::

    python -m repro.bench run --suite smoke --out bench_results/
    python -m repro.bench check --baseline . --current bench_results/
    python -m repro.bench append --results bench_results/ \\
        --trajectory BENCH_TRAJECTORY.json --label pr-7

``run`` executes every writer at the suite's pinned scale; ``check``
diffs the fresh artifacts against the committed baselines (deterministic
metrics exactly, timing metrics within tolerance, host-mismatch and
``--timing warn`` downgrading timing failures to warnings) and exits
non-zero on any failure; ``append`` folds the run into the per-PR
trajectory time series.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.diff import check_directories
from repro.bench.policy import CheckPolicy, TimingMode
from repro.bench.runner import SUITES, BenchRunError, run_suite, suite_artifacts
from repro.bench.trajectory import append_run


def build_parser() -> argparse.ArgumentParser:
    """The harness's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regression-gating benchmark harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute the benchmark suite at its pinned scale"
    )
    run.add_argument(
        "--suite", choices=sorted(SUITES), default="smoke", help="which scale"
    )
    run.add_argument(
        "--out",
        default="bench_results",
        help="directory the artifacts are written into",
    )
    run.add_argument(
        "--bench-dir",
        default="benchmarks",
        help="directory holding the bench_*.py writer scripts",
    )
    run.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these benchmarks (by suite job name)",
    )

    check = commands.add_parser(
        "check", help="diff fresh artifacts against committed baselines"
    )
    check.add_argument(
        "--baseline",
        default=".",
        help="directory holding the committed BENCH_*.json baselines",
    )
    check.add_argument(
        "--current",
        default=None,
        help=(
            "directory holding the fresh run (default: bench_results/ if it "
            "exists, else the baseline directory itself)"
        ),
    )
    check.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="smoke",
        help="suite whose artifact list is compared",
    )
    check.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression for timing metrics (default 0.20)",
    )
    check.add_argument(
        "--timing",
        choices=[mode.value for mode in TimingMode],
        default=TimingMode.GATE.value,
        help=(
            "'gate' fails on out-of-band timing metrics when hosts match; "
            "'warn' never fails on timing (shared/noisy runners). "
            "Deterministic metrics always gate."
        ),
    )
    check.add_argument(
        "--min-timing-seconds",
        type=float,
        default=0.01,
        help=(
            "noise floor: duration metrics with a baseline under this many "
            "seconds warn instead of failing, even in gate mode (default "
            "0.01; 0 disables)"
        ),
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of the readable table",
    )

    append = commands.add_parser(
        "append", help="fold one run into the BENCH_TRAJECTORY.json time series"
    )
    append.add_argument(
        "--results",
        default="bench_results",
        help="directory holding the run's artifacts",
    )
    append.add_argument(
        "--trajectory",
        default="BENCH_TRAJECTORY.json",
        help="trajectory document to append to (created if missing)",
    )
    append.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="smoke",
        help="suite whose artifact list is folded in",
    )
    append.add_argument(
        "--label", default=None, help="free-form tag (PR number, git sha, ...)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "run":
        try:
            produced = run_suite(
                SUITES[args.suite],
                args.out,
                bench_dir=args.bench_dir,
                only=args.only,
            )
        except BenchRunError as exc:
            print(f"repro.bench run: {exc}", file=sys.stderr)
            return 1
        print(f"repro.bench run: wrote {len(produced)} artifact(s) to {args.out}")
        return 0

    if args.command == "check":
        current = args.current
        if current is None:
            default_results = Path("bench_results")
            current = (
                str(default_results) if default_results.is_dir() else args.baseline
            )
        policy = CheckPolicy(
            tolerance=args.tolerance,
            timing_mode=TimingMode(args.timing),
            min_timing_seconds=args.min_timing_seconds,
        )
        report = check_directories(
            args.baseline, current, suite_artifacts(args.suite), policy
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    if args.command == "append":
        try:
            entry, appended = append_run(
                args.trajectory,
                args.results,
                suite_artifacts(args.suite),
                label=args.label,
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"repro.bench append: {exc}", file=sys.stderr)
            return 1
        if appended:
            print(
                f"repro.bench append: recorded run #{entry['sequence']} "
                f"({entry['scale']}) in {args.trajectory}"
            )
        else:
            print(
                f"repro.bench append: skipped duplicate of run "
                f"#{entry['sequence']} (label {entry['label']!r}, identical "
                f"artifacts) in {args.trajectory}"
            )
        return 0

    raise AssertionError(f"unreachable command {args.command!r}")
