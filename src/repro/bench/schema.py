"""The shared benchmark-artifact envelope.

Every bench writer (``benchmarks/bench_*.py``) wraps its nested record in
one normalized envelope before it hits disk::

    {
      "schema_version": 1,
      "benchmark": "walk_throughput",        # the record's own name
      "scale": "smoke" | "full",             # pinned workload size
      "host": {"cpu_count": ..., "platform": ..., "python": ...},
      "metrics": {"designs.srw.scalar.walks": 200, ...},  # flat map
      "record": {...}                        # the original nested record
    }

The flat ``metrics`` map is what the regression checker diffs: dotted
keys, numeric/boolean leaves only, host metadata excluded (host facts are
environment, not results — they live in ``host`` and drive the timing
warn-downgrade instead).  Pre-envelope artifacts (``schema_version``
absent) still load: the whole document is treated as the record, the
scale and host are unknown, and the checker downgrades accordingly.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.bench.io import PathLike, atomic_write_json, load_json

#: Version of the envelope layout itself (not of any benchmark).
SCHEMA_VERSION = 1

#: Workload-size tags the runner pins (free-form tags also load fine).
KNOWN_SCALES = ("smoke", "full")

#: Top-level record keys that never become metrics.
_EXCLUDED_SUBTREES = ("host",)

MetricValue = object  # int | float | bool at runtime; kept loose for JSON


def effective_cpu_count() -> int:
    """Scheduling-affinity-aware CPU count (cgroup limits included)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def host_metadata() -> Dict[str, object]:
    """The host facts the regression policy keys on.

    ``kernel_backend`` is the process-default walk-kernel backend
    (:mod:`repro.walks.kernels`) — an execution-environment fact, not a
    result, so it rides in the host block: timings from differently
    backed runs are no more comparable than timings from different CPUs,
    and :func:`hosts_match` downgrades them to warn the same way.
    """
    from repro.walks.kernels import default_backend_name

    return {
        "cpu_count": effective_cpu_count(),
        "pid_cpu_count": os.cpu_count(),
        "platform": f"{platform.system().lower()}-{platform.machine()}",
        "python": platform.python_version(),
        "kernel_backend": default_backend_name(),
    }


def flatten_metrics(record: object) -> Dict[str, MetricValue]:
    """Flatten *record* into dotted-key → numeric/bool leaf pairs.

    Dicts flatten by key, lists by index; strings, ``None``, and the
    excluded subtrees (host metadata) are skipped.  Booleans are kept as
    booleans — they diff exactly, like any deterministic metric.
    """
    flat: Dict[str, MetricValue] = {}

    def visit(prefix: str, value: object) -> None:
        if isinstance(value, dict):
            for key, item in value.items():
                if not prefix and key in _EXCLUDED_SUBTREES:
                    continue
                visit(f"{prefix}{key}." if prefix else f"{key}.", item)
            return
        if isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                visit(f"{prefix}{index}.", item)
            return
        if isinstance(value, bool) or isinstance(value, (int, float)):
            flat[prefix[:-1]] = value

    visit("", record)
    return flat


@dataclass(frozen=True)
class Envelope:
    """One loaded benchmark artifact, normalized or legacy."""

    benchmark: str
    scale: Optional[str]
    host: Optional[Dict[str, object]]
    metrics: Dict[str, MetricValue]
    record: Dict[str, object]
    schema_version: Optional[int] = SCHEMA_VERSION
    path: Optional[Path] = field(default=None, compare=False)

    @property
    def legacy(self) -> bool:
        """True for pre-envelope artifacts (bare nested records)."""
        return self.schema_version is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "host": self.host,
            "metrics": self.metrics,
            "record": self.record,
        }


def make_envelope(
    record: Dict[str, object],
    *,
    scale: str,
    host: Optional[Dict[str, object]] = None,
) -> Envelope:
    """Wrap one nested benchmark record in the normalized envelope."""
    if not isinstance(record, dict):
        raise TypeError(f"benchmark records must be dicts, got {type(record)!r}")
    return Envelope(
        benchmark=str(record.get("benchmark", "unknown")),
        scale=scale,
        host=dict(host) if host is not None else host_metadata(),
        metrics=flatten_metrics(record),
        record=record,
    )


def write_artifact(
    record: Dict[str, object],
    path: PathLike,
    *,
    scale: str,
    host: Optional[Dict[str, object]] = None,
) -> Envelope:
    """Envelope *record* and atomically write it to *path*.

    This is the single exit door for every bench writer: one schema, one
    atomic write, one loud failure mode on unwritable destinations.
    """
    envelope = make_envelope(record, scale=scale, host=host)
    atomic_write_json(path, envelope.to_dict())
    return replace(envelope, path=Path(path))


def load_artifact(path: PathLike) -> Envelope:
    """Load one artifact, accepting both envelope and legacy layouts."""
    document = load_json(path)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: benchmark artifacts must be JSON objects")
    if "schema_version" not in document:
        # Legacy bare record: unknown scale/host, metrics derived fresh.
        return Envelope(
            benchmark=str(document.get("benchmark", "unknown")),
            scale=None,
            host=None,
            metrics=flatten_metrics(document),
            record=document,
            schema_version=None,
            path=Path(path),
        )
    version = document["schema_version"]
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version {version!r} "
            f"(this checker understands {SCHEMA_VERSION})"
        )
    record = document.get("record")
    if not isinstance(record, dict):
        raise ValueError(f"{path}: envelope is missing its nested 'record'")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        metrics = flatten_metrics(record)
    return Envelope(
        benchmark=str(document.get("benchmark", "unknown")),
        scale=document.get("scale"),
        host=document.get("host"),
        metrics=metrics,
        record=record,
        schema_version=version,
        path=Path(path),
    )


def hosts_match(
    baseline: Optional[Dict[str, object]], current: Optional[Dict[str, object]]
) -> Tuple[bool, str]:
    """Whether two host blocks are timing-comparable, with the reason.

    Timing numbers only gate when the CPU budget and platform match; a
    1-core CI container must never hard-fail a multi-core baseline.
    Unknown hosts (legacy artifacts) never match.
    """
    if not baseline or not current:
        return False, "host metadata unavailable on one side"
    for key in ("cpu_count", "platform"):
        if baseline.get(key) != current.get(key):
            return False, (
                f"host {key} differs: "
                f"baseline={baseline.get(key)!r} current={current.get(key)!r}"
            )
    # Artifacts recorded before the backend field existed were all
    # NumPy-backed — default the missing key so they keep host-matching
    # numpy runs, while any cross-backend pair downgrades to warn.
    base_backend = baseline.get("kernel_backend", "numpy")
    cur_backend = current.get("kernel_backend", "numpy")
    if base_backend != cur_backend:
        return False, (
            f"host kernel_backend differs: "
            f"baseline={base_backend!r} current={cur_backend!r}"
        )
    # Same deal for the slab backend (shm vs mmap-file): page-cache
    # walks time differently from /dev/shm walks, so cross-storage
    # timings downgrade to warn.  Artifacts recorded before the axis
    # existed were all shm-backed.
    base_storage = baseline.get("slab_storage", "shm")
    cur_storage = current.get("slab_storage", "shm")
    if base_storage != cur_storage:
        return False, (
            f"host slab_storage differs: "
            f"baseline={base_storage!r} current={cur_storage!r}"
        )
    return True, "hosts match"
