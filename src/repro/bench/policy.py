"""Per-metric regression policy: what diffs exactly, what gets a band.

The split mirrors what the paper measures.  *Deterministic* metrics —
query cost, unique-node counts, simulated :class:`FakeClock` wall-clock,
ledger balances, sample counts, estimates — are functions of the pinned
seeds alone, so the checker compares them **exactly**: any drift is a
behavior change, not noise.  *Timing* metrics — steps/sec, walks/sec,
real (process) seconds, and the speedup ratios derived from them — are
functions of the machine, so they gate within a configurable tolerance
band and only when the hosts are actually comparable.

Classification is by key, not by benchmark: the flat dotted metric keys
the envelope schema produces carry their own kind in the last segment
(``*_per_sec``, ``*seconds``, ``speedup*`` are timing; ``simulated_*``
is explicitly carved back out as deterministic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MetricKind(enum.Enum):
    """How one metric is compared against its baseline."""

    EXACT = "exact"
    TIMING = "timing"


class Direction(enum.Enum):
    """Which way a timing metric regresses."""

    HIGHER_IS_BETTER = "higher"
    LOWER_IS_BETTER = "lower"
    NONE = "none"


class TimingMode(enum.Enum):
    """What a timing regression beyond tolerance does to the exit code."""

    GATE = "gate"  # fail the check (hosts must also match)
    WARN = "warn"  # report, never fail — for shared/noisy runners


def classify(key: str) -> tuple[MetricKind, Direction]:
    """Classify one flat metric key.

    ``designs.srw.batch.1024.steps_per_sec`` → timing, higher is better;
    ``ws_bw_batch.srw.scalar_seconds`` → timing, lower is better;
    ``serial.simulated_seconds`` / ``query_cost`` / counts → exact.
    """
    last = key.rsplit(".", 1)[-1]
    if "per_sec" in last or "speedup" in last:
        return MetricKind.TIMING, Direction.HIGHER_IS_BETTER
    if last.endswith("seconds") and "simulated" not in last:
        return MetricKind.TIMING, Direction.LOWER_IS_BETTER
    return MetricKind.EXACT, Direction.NONE


@dataclass(frozen=True)
class CheckPolicy:
    """Knobs for one check run.

    ``tolerance`` is the allowed relative regression of a timing metric
    (0.20 ⇒ a ≥20% steps/sec drop fails).  ``timing_mode`` decides
    whether an out-of-band timing metric fails the run or only warns;
    deterministic metrics always fail on any drift, regardless of mode
    or host.  Timing failures additionally require matching hosts —
    mismatched hosts downgrade them to warnings unconditionally.

    ``min_timing_seconds`` is the noise floor (the smoke-suite caveat
    made policy): a *duration* metric whose baseline is under the floor
    measures scheduler jitter more than code, so its regressions
    downgrade to warnings even in gate mode with matching hosts.  The
    floor only applies to lower-is-better duration keys (``*seconds``) —
    a rate (``*_per_sec``) or ratio (``speedup*``) carries no absolute
    duration to compare the floor against.  Set to 0 to disable.
    """

    tolerance: float = 0.20
    timing_mode: TimingMode = TimingMode.GATE
    min_timing_seconds: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.min_timing_seconds < 0.0:
            raise ValueError(
                f"min_timing_seconds must be >= 0, got {self.min_timing_seconds}"
            )


def timing_regression(
    baseline: float, current: float, direction: Direction
) -> float:
    """Relative regression magnitude (positive = worse, negative = better).

    A higher-is-better metric regresses when it drops; a lower-is-better
    one when it grows.  A non-positive baseline carries no information —
    the regression is reported as 0.0 (nothing to gate against).
    """
    if baseline <= 0:
        return 0.0
    if direction is Direction.HIGHER_IS_BETTER:
        return (baseline - current) / baseline
    return (current - baseline) / baseline
