"""``repro.bench`` — the regression-gating benchmark subsystem.

Four pieces, one workflow (ROADMAP open item 5):

* **Schema** (:mod:`repro.bench.schema`): every bench writer emits one
  normalized envelope — ``schema_version``, host metadata, a scale tag,
  and a flat ``metrics`` map — through :func:`write_artifact`, which
  also gives every artifact the same atomic write-temp-then-rename
  discipline (:mod:`repro.bench.io`).
* **Runner** (:mod:`repro.bench.runner`): ``python -m repro.bench run
  --suite smoke`` executes the whole suite at pinned scales through one
  entry point.
* **Checker** (:mod:`repro.bench.diff` + :mod:`repro.bench.policy`):
  ``python -m repro.bench check`` diffs fresh artifacts against the
  committed ``BENCH_*.json`` baselines — deterministic metrics exactly,
  timing metrics within a tolerance band, with host-mismatch downgrading
  timing failures to warnings — and exits non-zero on regression.
* **Trajectory** (:mod:`repro.bench.trajectory`): ``python -m repro.bench
  append`` folds each run into ``BENCH_TRAJECTORY.json``, the per-PR
  time series.
"""

from repro.bench.diff import (
    ArtifactReport,
    CheckReport,
    MetricDiff,
    check_directories,
    compare_envelopes,
)
from repro.bench.io import atomic_write_json, load_json
from repro.bench.policy import (
    CheckPolicy,
    Direction,
    MetricKind,
    TimingMode,
    classify,
    timing_regression,
)
from repro.bench.runner import (
    SUITES,
    BenchJob,
    BenchRunError,
    run_suite,
    suite_artifacts,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    Envelope,
    flatten_metrics,
    host_metadata,
    hosts_match,
    load_artifact,
    make_envelope,
    write_artifact,
)
from repro.bench.trajectory import append_run, artifacts_digest, load_trajectory

__all__ = [
    "SCHEMA_VERSION",
    "SUITES",
    "ArtifactReport",
    "BenchJob",
    "BenchRunError",
    "CheckPolicy",
    "CheckReport",
    "Direction",
    "Envelope",
    "MetricDiff",
    "MetricKind",
    "TimingMode",
    "append_run",
    "artifacts_digest",
    "atomic_write_json",
    "check_directories",
    "classify",
    "compare_envelopes",
    "flatten_metrics",
    "host_metadata",
    "hosts_match",
    "load_artifact",
    "load_json",
    "load_trajectory",
    "make_envelope",
    "run_suite",
    "suite_artifacts",
    "timing_regression",
    "write_artifact",
]
