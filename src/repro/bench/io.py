"""Atomic JSON artifact IO.

Every benchmark artifact and trajectory file in the repository is written
through :func:`atomic_write_json`: the document is serialized into a
temporary file *in the destination directory*, fsync'd, then moved over
the target with :func:`os.replace`.  A crash mid-dump therefore never
leaves a truncated or corrupt ``BENCH_*.json`` behind — the committed
baseline either keeps its old bytes or gets the complete new ones.

Failure behavior is deliberately loud: an unwritable or missing
destination directory raises immediately (no silent fallback path), and
non-finite floats are rejected (``allow_nan=False``) rather than being
smuggled into a file that a strict JSON parser would then refuse.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, os.PathLike]


def atomic_write_json(path: PathLike, document: object, *, indent: int = 2) -> Path:
    """Atomically serialize *document* as JSON to *path*; return the path.

    The temporary file lives next to the target so the final
    :func:`os.replace` is a same-filesystem rename (atomic on POSIX).
    On any failure the temporary file is removed and the original target
    is left untouched.
    """
    target = Path(path)
    directory = target.parent
    if not directory.is_dir():
        raise FileNotFoundError(
            f"cannot write {target}: directory {directory} does not exist"
        )
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=indent, allow_nan=False)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def load_json(path: PathLike) -> object:
    """Parse one JSON document; errors carry the offending path."""
    target = Path(path)
    try:
        with open(target, encoding="utf-8") as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{target} is not valid JSON: {exc}") from exc
