"""The per-PR benchmark time series (``BENCH_TRAJECTORY.json``).

Each gated run folds into one append-only document::

    {
      "schema_version": 1,
      "runs": [
        {"sequence": 1, "label": "...", "timestamp": "...",
         "scale": "smoke", "host": {...},
         "artifacts": {"BENCH_throughput.json": {"benchmark": ...,
                                                 "metrics": {...}}, ...}},
        ...
      ]
    }

This is the trajectory the roadmap re-anchors read: a metric's history
across PRs, not just its latest value.  Appends go through the same
atomic writer as every artifact, and a corrupt or foreign document fails
loudly instead of being silently replaced.

Appends are **idempotent** on ``(label, artifact digest)``: a re-run CI
job replaying ``repro.bench append`` on the same results under the same
label finds its entry already present and skips, instead of inflating
the series with duplicate sequence numbers.  The digest is computed over
the canonical JSON of the entry's artifacts map, so any metric change —
or a different label — still appends a genuinely new run.
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.io import PathLike, atomic_write_json, load_json
from repro.bench.schema import SCHEMA_VERSION, host_metadata, load_artifact

_EMPTY = {"schema_version": SCHEMA_VERSION, "runs": []}


def load_trajectory(path: PathLike) -> Dict[str, object]:
    """Load (or initialize) the trajectory document, validating its shape."""
    target = Path(path)
    if not target.exists():
        return {"schema_version": SCHEMA_VERSION, "runs": []}
    document = load_json(target)
    if (
        not isinstance(document, dict)
        or document.get("schema_version") != SCHEMA_VERSION
        or not isinstance(document.get("runs"), list)
    ):
        raise ValueError(
            f"{target} is not a repro.bench trajectory document "
            f"(expected schema_version={SCHEMA_VERSION} with a 'runs' list)"
        )
    return document


def artifacts_digest(entry_artifacts: Dict[str, object]) -> str:
    """Canonical digest of one entry's artifacts map (the dedupe key).

    Canonical JSON (sorted keys) so semantically identical maps hash
    identically whether freshly built or round-tripped through the
    trajectory file on disk.
    """
    canonical = json.dumps(entry_artifacts, sort_keys=True, allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def append_run(
    trajectory_path: PathLike,
    results_dir: PathLike,
    artifacts: Sequence[str],
    *,
    label: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> Tuple[Dict[str, object], bool]:
    """Fold one run's artifacts into the trajectory.

    Returns ``(entry, appended)``: the freshly appended entry and
    ``True``, or — when an existing run already carries the same label
    and the same artifacts digest — that existing entry and ``False``,
    with the document left untouched.
    """
    results_root = Path(results_dir)
    document = load_trajectory(trajectory_path)
    runs: List[dict] = document["runs"]  # type: ignore[assignment]
    entry_artifacts: Dict[str, object] = {}
    scales = set()
    for artifact in artifacts:
        path = results_root / artifact
        if not path.is_file():
            raise FileNotFoundError(
                f"cannot append trajectory entry: {path} is missing "
                "(run the suite first)"
            )
        envelope = load_artifact(path)
        scales.add(envelope.scale)
        entry_artifacts[artifact] = {
            "benchmark": envelope.benchmark,
            "scale": envelope.scale,
            "metrics": envelope.metrics,
        }
    if not entry_artifacts:
        raise ValueError("cannot append an empty trajectory entry (no artifacts)")
    digest = artifacts_digest(entry_artifacts)
    for run in runs:
        if run.get("label") == label and (
            artifacts_digest(run.get("artifacts", {})) == digest
        ):
            return dict(run), False
    entry = {
        "sequence": len(runs) + 1,
        "label": label,
        "timestamp": timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scales.pop() if len(scales) == 1 else "mixed",
        "host": host_metadata(),
        "artifacts": entry_artifacts,
    }
    runs.append(entry)
    atomic_write_json(trajectory_path, document)
    return entry, True
