"""The per-PR benchmark time series (``BENCH_TRAJECTORY.json``).

Each gated run folds into one append-only document::

    {
      "schema_version": 1,
      "runs": [
        {"sequence": 1, "label": "...", "timestamp": "...",
         "scale": "smoke", "host": {...},
         "artifacts": {"BENCH_throughput.json": {"benchmark": ...,
                                                 "metrics": {...}}, ...}},
        ...
      ]
    }

This is the trajectory the roadmap re-anchors read: a metric's history
across PRs, not just its latest value.  Appends go through the same
atomic writer as every artifact, and a corrupt or foreign document fails
loudly instead of being silently replaced.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.io import PathLike, atomic_write_json, load_json
from repro.bench.schema import SCHEMA_VERSION, host_metadata, load_artifact

_EMPTY = {"schema_version": SCHEMA_VERSION, "runs": []}


def load_trajectory(path: PathLike) -> Dict[str, object]:
    """Load (or initialize) the trajectory document, validating its shape."""
    target = Path(path)
    if not target.exists():
        return {"schema_version": SCHEMA_VERSION, "runs": []}
    document = load_json(target)
    if (
        not isinstance(document, dict)
        or document.get("schema_version") != SCHEMA_VERSION
        or not isinstance(document.get("runs"), list)
    ):
        raise ValueError(
            f"{target} is not a repro.bench trajectory document "
            f"(expected schema_version={SCHEMA_VERSION} with a 'runs' list)"
        )
    return document


def append_run(
    trajectory_path: PathLike,
    results_dir: PathLike,
    artifacts: Sequence[str],
    *,
    label: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, object]:
    """Fold one run's artifacts into the trajectory; return the new entry."""
    results_root = Path(results_dir)
    document = load_trajectory(trajectory_path)
    runs: List[dict] = document["runs"]  # type: ignore[assignment]
    entry_artifacts: Dict[str, object] = {}
    scales = set()
    for artifact in artifacts:
        path = results_root / artifact
        if not path.is_file():
            raise FileNotFoundError(
                f"cannot append trajectory entry: {path} is missing "
                "(run the suite first)"
            )
        envelope = load_artifact(path)
        scales.add(envelope.scale)
        entry_artifacts[artifact] = {
            "benchmark": envelope.benchmark,
            "scale": envelope.scale,
            "metrics": envelope.metrics,
        }
    if not entry_artifacts:
        raise ValueError("cannot append an empty trajectory entry (no artifacts)")
    entry = {
        "sequence": len(runs) + 1,
        "label": label,
        "timestamp": timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scales.pop() if len(scales) == 1 else "mixed",
        "host": host_metadata(),
        "artifacts": entry_artifacts,
    }
    runs.append(entry)
    atomic_write_json(trajectory_path, document)
    return entry
