"""Random walks over the restricted OSN interface.

Implements the paper's two baseline samplers — Simple Random Walk (SRW) and
Metropolis–Hastings Random Walk (MHRW), §2.2 — their two usage schemes
("many short runs" and "one long run", §6.1), and the Geweke convergence
monitor (§2.2.3) used to decide burn-in on the fly.
"""

from repro.walks.transitions import (
    BidirectionalWalk,
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    TransitionDesign,
)
from repro.walks.walker import WalkResult, run_walk
from repro.walks.batch import (
    BatchWalkResult,
    has_batch_kernel,
    run_nbrw_walk_batch,
    run_walk_batch,
    target_weights_batch,
    walk_attribute_matrix,
)
from repro.walks.kernels import (
    KernelBackend,
    available_backends,
    capability_report,
    default_backend_name,
    get_backend,
    register_backend,
    require_backend,
    resolve_backend,
    set_default_backend,
)
from repro.walks.samplers import BurnInSampler, LongRunSampler, SampleBatch
from repro.walks.baselines import BFSSampler, DFSSampler, SnowballSampler
from repro.walks.convergence import (
    BatchConvergenceReport,
    BatchGewekeResult,
    GewekeMonitor,
    diagnose_walk_batch,
    geweke_batch,
)
from repro.walks.frontier import FrontierSampler
from repro.walks.gelman_rubin import (
    GelmanRubinMonitor,
    ParallelBurnInSampler,
    psrf_matrix,
)
from repro.walks.parallel import RoundEvent, ShardedWalkEngine, default_worker_count
from repro.walks.raftery_lewis import RafteryLewisResult, raftery_lewis
from repro.walks.nonbacktracking import NonBacktrackingSampler, run_nbrw_walk
from repro.walks.autocorr import (
    autocorrelation,
    autocorrelation_matrix,
    effective_sample_size,
    effective_sample_size_matrix,
    integrated_autocorrelation_time,
    integrated_autocorrelation_time_matrix,
)

__all__ = [
    "TransitionDesign",
    "SimpleRandomWalk",
    "MetropolisHastingsWalk",
    "LazyWalk",
    "MaxDegreeWalk",
    "BidirectionalWalk",
    "run_walk",
    "WalkResult",
    "run_walk_batch",
    "run_nbrw_walk_batch",
    "BatchWalkResult",
    "has_batch_kernel",
    "KernelBackend",
    "available_backends",
    "capability_report",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "require_backend",
    "resolve_backend",
    "set_default_backend",
    "target_weights_batch",
    "walk_attribute_matrix",
    "ShardedWalkEngine",
    "RoundEvent",
    "default_worker_count",
    "BurnInSampler",
    "LongRunSampler",
    "SampleBatch",
    "BFSSampler",
    "DFSSampler",
    "SnowballSampler",
    "FrontierSampler",
    "GewekeMonitor",
    "BatchGewekeResult",
    "BatchConvergenceReport",
    "geweke_batch",
    "diagnose_walk_batch",
    "GelmanRubinMonitor",
    "ParallelBurnInSampler",
    "psrf_matrix",
    "raftery_lewis",
    "RafteryLewisResult",
    "NonBacktrackingSampler",
    "run_nbrw_walk",
    "autocorrelation",
    "autocorrelation_matrix",
    "effective_sample_size",
    "effective_sample_size_matrix",
    "integrated_autocorrelation_time",
    "integrated_autocorrelation_time_matrix",
]
