"""Gelman–Rubin convergence diagnostic for parallel chains.

The paper names Gelman–Rubin among the standard convergence monitors (§2.2.3
via [11]) and cites the many-parallel-walks idea [3]; this module provides
both: the potential-scale-reduction-factor (PSRF) diagnostic and a sampler
that runs several chains from distinct starts and only harvests once the
chains agree.

PSRF compares between-chain and within-chain variance of the monitored
scalar: values near 1 indicate the chains have forgotten their starts.

For batch-engine output there is an array-native path: feed a ``(K, n)``
attribute matrix (one row per walk, the shape
:func:`repro.walks.batch.walk_attribute_matrix` produces) to
:func:`psrf_matrix` — or to :meth:`GelmanRubinMonitor.observe_matrix`
when the incremental monitor interface is wanted — and the K walks are
diagnosed as K parallel chains without a Python loop over walks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node, TransitionDesign
from repro.walks.walker import step_once


class GelmanRubinMonitor:
    """Potential scale reduction factor over two or more chains."""

    def __init__(self, threshold: float = 1.1, min_samples_per_chain: int = 10) -> None:
        if threshold <= 1.0:
            raise ConfigurationError(f"threshold must exceed 1.0, got {threshold}")
        if min_samples_per_chain < 2:
            raise ConfigurationError(
                f"min_samples_per_chain must be >= 2, got {min_samples_per_chain}"
            )
        self.threshold = threshold
        self.min_samples_per_chain = min_samples_per_chain
        self._chains: Dict[int, List[float]] = {}

    def observe(self, chain: int, value: float) -> None:
        """Record one monitored observation for *chain*."""
        self._chains.setdefault(chain, []).append(float(value))

    def observe_matrix(self, matrix) -> None:
        """Record a ``(K, n)`` block of observations, row *i* into chain *i*.

        The batch-engine feeding path: append a
        :func:`repro.walks.batch.walk_attribute_matrix` result directly
        instead of looping ``observe`` per walk per step.
        """
        values = np.asarray(matrix, dtype=float)
        if values.ndim != 2:
            raise ConfigurationError(
                f"expected a (K, n) matrix, got shape {values.shape}"
            )
        for chain, row in enumerate(values):
            self._chains.setdefault(chain, []).extend(row.tolist())

    @property
    def chain_count(self) -> int:
        """Number of chains with at least one observation."""
        return len(self._chains)

    def psrf(self) -> float:
        """The potential scale reduction factor R̂.

        Uses the classic split-free formulation: with m chains of length n,
        within-chain variance W, between-chain variance of means B/n,

            R̂ = sqrt( ((n-1)/n · W + B/n) / W ).

        Raises
        ------
        ConvergenceError
            With fewer than 2 chains or short chains.
        """
        chains = [np.asarray(c) for c in self._chains.values()]
        if len(chains) < 2:
            raise ConvergenceError("Gelman-Rubin needs at least two chains")
        n = min(len(c) for c in chains)
        if n < self.min_samples_per_chain:
            raise ConvergenceError(
                f"need {self.min_samples_per_chain} samples per chain, have {n}"
            )
        trimmed = [c[-n:] for c in chains]  # align lengths on the tail
        means = np.array([c.mean() for c in trimmed])
        variances = np.array([c.var(ddof=1) for c in trimmed])
        within = float(variances.mean())
        if within <= 0.0:
            # All chains constant: identical means are converged, split
            # means can never reconcile.
            return 1.0 if np.allclose(means, means[0]) else float("inf")
        between_over_n = float(means.var(ddof=1))
        estimate = (n - 1) / n * within + between_over_n
        return float(np.sqrt(estimate / within))

    def is_converged(self) -> bool:
        """True once enough data exists and R̂ is under the threshold."""
        try:
            return self.psrf() <= self.threshold
        except ConvergenceError:
            return False

    def reset(self) -> None:
        """Drop all chains."""
        self._chains.clear()


def psrf_matrix(matrix) -> float:
    """Potential scale reduction factor of a ``(K, n)`` chain matrix.

    The array-native twin of :meth:`GelmanRubinMonitor.psrf` for
    equal-length chains — one row per chain, e.g. a batch walk's
    :func:`repro.walks.batch.walk_attribute_matrix`.  Same formulation
    (within-chain variance W, between-chain variance of means B/n,
    ``R̂ = sqrt(((n-1)/n · W + B/n) / W)``) and the same degenerate-case
    convention: all-constant chains give 1.0 when their means agree and
    ``inf`` when they cannot reconcile.

    Raises
    ------
    ConvergenceError
        With fewer than 2 chains (rows) or fewer than 2 samples (columns).
    """
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError(f"expected a (K, n) matrix, got shape {values.shape}")
    m, n = values.shape
    if m < 2:
        raise ConvergenceError("Gelman-Rubin needs at least two chains")
    if n < 2:
        raise ConvergenceError(f"need at least 2 samples per chain, have {n}")
    means = values.mean(axis=1)
    within = float(values.var(axis=1, ddof=1).mean())
    if within <= 0.0:
        return 1.0 if np.allclose(means, means[0]) else float("inf")
    between_over_n = float(means.var(ddof=1))
    estimate = (n - 1) / n * within + between_over_n
    return float(np.sqrt(estimate / within))


class ParallelBurnInSampler:
    """Many parallel chains with a shared Gelman–Rubin burn-in.

    Advances *chain_count* walks (from distinct starts) in lockstep until
    the PSRF of the monitored degree series drops under the threshold, then
    takes each chain's current node as a sample — yielding *chain_count*
    samples per burn-in instead of one, and guarding against a single chain
    being trapped in one region of the graph (the [3]/[14] argument the
    paper quotes in §6.1).
    """

    name = "parallel-burnin"

    def __init__(
        self,
        design: TransitionDesign,
        chain_count: int = 4,
        threshold: float = 1.1,
        check_every: int = 10,
        min_steps: int = 30,
        max_steps: int = 5000,
    ) -> None:
        if chain_count < 2:
            raise ConfigurationError(f"need >= 2 chains, got {chain_count}")
        if min_steps < 1 or max_steps < min_steps:
            raise ConfigurationError(
                f"need 1 <= min_steps <= max_steps, got {min_steps}, {max_steps}"
            )
        if check_every < 1:
            raise ConfigurationError(f"check_every must be >= 1, got {check_every}")
        self.design = design
        self.chain_count = chain_count
        self.threshold = threshold
        self.check_every = check_every
        self.min_steps = min_steps
        self.max_steps = max_steps

    def _advance_round(
        self, api: SocialNetworkAPI, starts: Sequence[Node], seed: RngLike
    ) -> tuple[list[Node], int]:
        rng = ensure_rng(seed)
        monitor = GelmanRubinMonitor(threshold=self.threshold)
        positions = list(starts)
        for chain, node in enumerate(positions):
            monitor.observe(chain, api.degree(node))
        steps = 0
        while steps < self.max_steps:
            for chain in range(len(positions)):
                positions[chain] = step_once(api, self.design, positions[chain], rng)
                monitor.observe(chain, api.degree(positions[chain]))
            steps += 1
            ready = steps >= self.min_steps and steps % self.check_every == 0
            if ready and monitor.is_converged():
                break
        return positions, steps * len(positions)

    def sample(
        self,
        api: SocialNetworkAPI,
        starts: Sequence[Node],
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* samples, ``chain_count`` per joint burn-in.

        *starts* must supply one node per chain; rounds reuse the same
        starts (each round is an independent joint burn-in).
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if len(starts) != self.chain_count:
            raise ConfigurationError(
                f"need {self.chain_count} starts, got {len(starts)}"
            )
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"{self.name}-{self.design.name}")
        while len(batch.nodes) < count:
            try:
                positions, steps = self._advance_round(api, starts, rng)
            except QueryBudgetExceededError:
                break
            batch.walk_steps += steps
            for node in positions:
                if len(batch.nodes) >= count:
                    break
                batch.nodes.append(node)
                batch.target_weights.append(self.design.target_weight(api, node))
            batch.query_cost = api.query_cost
        batch.query_cost = api.query_cost
        return batch
