"""Autocorrelation and effective sample size for one-long-run sampling.

The paper's Eq. 25 (§6.1) explains why one long run is not a free lunch:
consecutive nodes on a walk are correlated, so the *effective* sample size
is ``M = h / (1 + 2 Σ_k ρ_k)`` with ``ρ_k`` the lag-k autocorrelation of the
aggregated attribute along the walk.

Each statistic exists in two forms: a scalar one over a single series,
and a ``*_matrix`` twin over a ``(K, n)`` matrix — one row per walk, the
shape :func:`repro.walks.batch.walk_attribute_matrix` produces — that
diagnoses a whole batch with array passes instead of a Python loop over
walks.  The matrix forms reproduce the scalar results row for row
(including NaN propagation), which the batch-diagnostics tests pin.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def autocorrelation(series: Sequence[float], lag: int) -> float:
    """Lag-*k* sample autocorrelation ``ρ_k`` of *series*.

    Defined as the lag-k autocovariance normalized by the variance; a
    constant series is defined to have zero autocorrelation (its draws
    carry no extra information either way).
    """
    if lag < 0:
        raise ValueError(f"lag must be >= 0, got {lag}")
    values = np.asarray(series, dtype=float)
    n = len(values)
    if n < 2 or lag >= n:
        return 0.0
    centered = values - values.mean()
    variance = float(np.dot(centered, centered)) / n
    if variance <= 0.0:
        return 0.0
    covariance = float(np.dot(centered[: n - lag], centered[lag:])) / n
    return covariance / variance


def integrated_autocorrelation_time(
    series: Sequence[float], max_lag: int | None = None
) -> float:
    """``τ = 1 + 2 Σ_k ρ_k`` with Geyer-style truncation.

    The sum is truncated at the first non-positive autocorrelation (the
    standard initial-positive-sequence rule), which keeps the estimate
    stable on finite series.
    """
    values = np.asarray(series, dtype=float)
    n = len(values)
    if n < 2:
        return 1.0
    if max_lag is None:
        max_lag = n - 1
    tau = 1.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(values, lag)
        if rho <= 0.0:
            break
        tau += 2.0 * rho
    return tau


def effective_sample_size(series: Sequence[float], max_lag: int | None = None) -> float:
    """Paper Eq. 25: ``M = h / (1 + 2 Σ_k ρ_k)``.

    *series* is the attribute value at each collected (post burn-in) walk
    position; the result is how many i.i.d. samples it is worth.
    """
    n = len(series)
    if n == 0:
        return 0.0
    return n / integrated_autocorrelation_time(series, max_lag=max_lag)


# ----------------------------------------------------------------------
# Vectorized matrix forms: one row per walk, no Python loop over K
# ----------------------------------------------------------------------
def _as_matrix(matrix) -> np.ndarray:
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected a (K, n) matrix, got shape {values.shape}")
    return values


def autocorrelation_matrix(matrix, lag: int) -> np.ndarray:
    """Per-row lag-*k* autocorrelation of a ``(K, n)`` matrix, shape ``(K,)``.

    Row *i* equals ``autocorrelation(matrix[i], lag)``: the lag-k
    autocovariance normalized by the row variance, with constant rows
    defined to have zero autocorrelation.
    """
    if lag < 0:
        raise ValueError(f"lag must be >= 0, got {lag}")
    values = _as_matrix(matrix)
    k, n = values.shape
    if n < 2 or lag >= n:
        return np.zeros(k)
    centered = values - values.mean(axis=1, keepdims=True)
    variance = np.einsum("ij,ij->i", centered, centered) / n
    covariance = np.einsum("ij,ij->i", centered[:, : n - lag], centered[:, lag:]) / n
    degenerate = variance <= 0.0  # NaN variance fails this test -> NaN out
    safe = np.where(degenerate, 1.0, variance)
    return np.where(degenerate, 0.0, covariance / safe)


def integrated_autocorrelation_time_matrix(
    matrix, max_lag: int | None = None
) -> np.ndarray:
    """Per-row ``τ = 1 + 2 Σ_k ρ_k`` with Geyer truncation, shape ``(K,)``.

    Each row truncates its own sum at its first non-positive
    autocorrelation, exactly like the scalar
    :func:`integrated_autocorrelation_time` — rows leave the active set as
    they terminate, so the lag loop runs only as deep as the slowest-mixing
    walk needs.
    """
    values = _as_matrix(matrix)
    k, n = values.shape
    tau = np.ones(k)
    if n < 2:
        return tau
    if max_lag is None:
        max_lag = n - 1
    centered = values - values.mean(axis=1, keepdims=True)
    variance = np.einsum("ij,ij->i", centered, centered) / n
    # Rows with non-positive variance have rho = 0 at every lag and stop at
    # lag 1; NaN variance rows keep running and go NaN, as the scalar does.
    active = np.flatnonzero(~(variance <= 0.0))
    for lag in range(1, min(max_lag, n - 1) + 1):
        if active.size == 0:
            break
        rows = centered[active]
        covariance = np.einsum("ij,ij->i", rows[:, : n - lag], rows[:, lag:]) / n
        rho = covariance / variance[active]
        alive = ~(rho <= 0.0)
        tau[active[alive]] += 2.0 * rho[alive]
        active = active[alive]
    return tau


def effective_sample_size_matrix(matrix, max_lag: int | None = None) -> np.ndarray:
    """Per-row Eq. 25 effective sample size of a ``(K, n)`` matrix.

    The batch twin of :func:`effective_sample_size` over
    :func:`repro.walks.batch.walk_attribute_matrix` output: how many
    i.i.d. samples each walk's attribute series is worth.  Zero-length
    rows are worth 0 samples.
    """
    values = _as_matrix(matrix)
    k, n = values.shape
    if n == 0:
        return np.zeros(k)
    return n / integrated_autocorrelation_time_matrix(values, max_lag=max_lag)
