"""Autocorrelation and effective sample size for one-long-run sampling.

The paper's Eq. 25 (§6.1) explains why one long run is not a free lunch:
consecutive nodes on a walk are correlated, so the *effective* sample size
is ``M = h / (1 + 2 Σ_k ρ_k)`` with ``ρ_k`` the lag-k autocorrelation of the
aggregated attribute along the walk.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def autocorrelation(series: Sequence[float], lag: int) -> float:
    """Lag-*k* sample autocorrelation ``ρ_k`` of *series*.

    Defined as the lag-k autocovariance normalized by the variance; a
    constant series is defined to have zero autocorrelation (its draws
    carry no extra information either way).
    """
    if lag < 0:
        raise ValueError(f"lag must be >= 0, got {lag}")
    values = np.asarray(series, dtype=float)
    n = len(values)
    if n < 2 or lag >= n:
        return 0.0
    centered = values - values.mean()
    variance = float(np.dot(centered, centered)) / n
    if variance <= 0.0:
        return 0.0
    covariance = float(np.dot(centered[: n - lag], centered[lag:])) / n
    return covariance / variance


def integrated_autocorrelation_time(
    series: Sequence[float], max_lag: int | None = None
) -> float:
    """``τ = 1 + 2 Σ_k ρ_k`` with Geyer-style truncation.

    The sum is truncated at the first non-positive autocorrelation (the
    standard initial-positive-sequence rule), which keeps the estimate
    stable on finite series.
    """
    values = np.asarray(series, dtype=float)
    n = len(values)
    if n < 2:
        return 1.0
    if max_lag is None:
        max_lag = n - 1
    tau = 1.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(values, lag)
        if rho <= 0.0:
            break
        tau += 2.0 * rho
    return tau


def effective_sample_size(series: Sequence[float], max_lag: int | None = None) -> float:
    """Paper Eq. 25: ``M = h / (1 + 2 Σ_k ρ_k)``.

    *series* is the attribute value at each collected (post burn-in) walk
    position; the result is how many i.i.d. samples it is worth.
    """
    n = len(series)
    if n == 0:
        return 0.0
    return n / integrated_autocorrelation_time(series, max_lag=max_lag)
