"""Forward random-walk execution over a neighbor view.

:func:`run_walk` performs a *t*-step walk under a transition design and
returns the full trajectory.  It works over either a raw
:class:`~repro.graphs.Graph` (free) or a
:class:`~repro.osn.SocialNetworkAPI` (charged), because both satisfy the
``NeighborView`` protocol — WALK-ESTIMATE runs it over the API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.rng import RngLike, ensure_rng
from repro.walks.transitions import NeighborView, Node, TransitionDesign


@dataclass(frozen=True)
class WalkResult:
    """Trajectory of one forward walk.

    Attributes
    ----------
    path:
        Visited nodes, ``path[0]`` = start, ``path[t]`` = position after
        step ``t``; length ``steps + 1``.
    """

    path: tuple[Node, ...]

    @property
    def start(self) -> Node:
        """The starting node."""
        return self.path[0]

    @property
    def end(self) -> Node:
        """The final node — WALK's sample candidate."""
        return self.path[-1]

    @property
    def steps(self) -> int:
        """Number of transitions taken."""
        return len(self.path) - 1

    def position_at(self, t: int) -> Node:
        """Node occupied after step *t* (0 = start)."""
        return self.path[t]


def step_once(
    view: NeighborView,
    design: TransitionDesign,
    current: Node,
    rng: np.random.Generator,
) -> Node:
    """Draw the next node under *design*, with its native query footprint."""
    return design.step(view, current, rng)


def run_walk(
    view: NeighborView,
    design: TransitionDesign,
    start: Node,
    steps: int,
    seed: RngLike = None,
) -> WalkResult:
    """Run a *steps*-step random walk from *start* and return its trajectory.

    Each step queries the current node's neighbors (and, for MHRW, the
    proposed neighbor's degree) through *view* — so over an API this accrues
    query cost exactly as the paper accounts it.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    rng = ensure_rng(seed)
    path: List[Node] = [start]
    current = start
    for _ in range(steps):
        current = step_once(view, design, current, rng)
        path.append(current)
    return WalkResult(path=tuple(path))


def continue_walk(
    view: NeighborView,
    design: TransitionDesign,
    result: WalkResult,
    extra_steps: int,
    seed: RngLike = None,
) -> WalkResult:
    """Extend an existing trajectory by *extra_steps* more transitions.

    Used by the one-long-run sampler, which keeps walking after burn-in and
    harvests every visited node (paper §6.1).
    """
    if extra_steps < 0:
        raise ValueError(f"extra_steps must be >= 0, got {extra_steps}")
    rng = ensure_rng(seed)
    path = list(result.path)
    current = result.end
    for _ in range(extra_steps):
        current = step_once(view, design, current, rng)
        path.append(current)
    return WalkResult(path=tuple(path))


def walk_attribute_series(
    view, walk: WalkResult, attribute: str | None
) -> Sequence[float]:
    """Per-step attribute values along a trajectory.

    With ``attribute=None``, uses the visible degree — the typical monitored
    quantity for convergence diagnostics (paper §2.2.3: "a typical one is
    the degree of a node").
    """
    if attribute is None:
        return [float(view.degree(node)) for node in walk.path]
    return [float(view.attribute(node, attribute)) for node in walk.path]
