"""MCMC convergence monitors.

The paper uses the **Geweke diagnostic** (§2.2.3): compare the mean of a
monitored attribute (typically degree) over the first 10% of the walk
against the last 50%; the walk is declared converged when the two windows
are statistically indistinguishable,

    Z = |mean_A - mean_B| / sqrt(S_A + S_B)  <=  threshold,

with ``S`` the variance of the window mean.  The paper's default threshold
is ``Z <= 0.1`` (also tested at 0.01).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError


@dataclass(frozen=True)
class GewekeResult:
    """Outcome of one Geweke evaluation."""

    z_score: float
    converged: bool
    window_a_mean: float
    window_b_mean: float
    samples_used: int


class GewekeMonitor:
    """On-the-fly Geweke convergence monitor over a scalar series.

    Parameters
    ----------
    threshold:
        Declare convergence when ``Z <= threshold`` (paper default 0.1).
    first_fraction / last_fraction:
        Window sizes; paper uses the first 10% and the last 50%.
    min_samples:
        Observations required before any verdict is attempted — tiny walks
        make the Z statistic meaningless.
    """

    def __init__(
        self,
        threshold: float = 0.1,
        first_fraction: float = 0.1,
        last_fraction: float = 0.5,
        min_samples: int = 20,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
            raise ConfigurationError("window fractions must be in (0, 1)")
        if first_fraction + last_fraction > 1.0:
            raise ConfigurationError(
                "windows overlap: first_fraction + last_fraction must be <= 1"
            )
        if min_samples < 4:
            raise ConfigurationError(f"min_samples must be >= 4, got {min_samples}")
        self.threshold = threshold
        self.first_fraction = first_fraction
        self.last_fraction = last_fraction
        self.min_samples = min_samples
        self._series: List[float] = []

    def observe(self, value: float) -> None:
        """Append one monitored observation (e.g. current node's degree)."""
        self._series.append(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        """Append a batch of observations."""
        self._series.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return len(self._series)

    def evaluate(self) -> GewekeResult:
        """Compute the Geweke Z for the current series.

        Raises
        ------
        ConvergenceError
            If fewer than ``min_samples`` observations are available.
        """
        n = len(self._series)
        if n < self.min_samples:
            raise ConvergenceError(
                f"need at least {self.min_samples} observations, have {n}"
            )
        series = np.asarray(self._series)
        size_a = max(2, int(n * self.first_fraction))
        size_b = max(2, int(n * self.last_fraction))
        window_a = series[:size_a]
        window_b = series[n - size_b :]
        mean_a = float(window_a.mean())
        mean_b = float(window_b.mean())
        # Variance of each window *mean*; ddof=1 for the unbiased estimate.
        var_a = float(window_a.var(ddof=1)) / size_a
        var_b = float(window_b.var(ddof=1)) / size_b
        spread = var_a + var_b
        if spread <= 0.0:
            # Both windows are constant: identical means converge trivially,
            # different means can never reconcile (infinite Z).
            z = 0.0 if mean_a == mean_b else float("inf")
        else:
            z = abs(mean_a - mean_b) / float(np.sqrt(spread))
        return GewekeResult(
            z_score=z,
            converged=z <= self.threshold,
            window_a_mean=mean_a,
            window_b_mean=mean_b,
            samples_used=n,
        )

    def is_converged(self) -> bool:
        """True when enough data exists and the Z test passes."""
        if len(self._series) < self.min_samples:
            return False
        return self.evaluate().converged

    def reset(self) -> None:
        """Clear the observation series (new walk)."""
        self._series.clear()
