"""MCMC convergence monitors.

The paper uses the **Geweke diagnostic** (§2.2.3): compare the mean of a
monitored attribute (typically degree) over the first 10% of the walk
against the last 50%; the walk is declared converged when the two windows
are statistically indistinguishable,

    Z = |mean_A - mean_B| / sqrt(S_A + S_B)  <=  threshold,

with ``S`` the variance of the window mean.  The paper's default threshold
is ``Z <= 0.1`` (also tested at 0.01).

The batch engine gets an array-native path: :func:`geweke_batch` evaluates
every row of a ``(K, n)`` attribute matrix (the shape
:func:`repro.walks.batch.walk_attribute_matrix` produces) in one
vectorized pass, and :func:`diagnose_walk_batch` bundles it with the
per-walk effective sample size and the cross-walk Gelman–Rubin PSRF —
the full convergence picture of a K-walk batch without a Python loop
over walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.walks.autocorr import effective_sample_size_matrix


@dataclass(frozen=True)
class GewekeResult:
    """Outcome of one Geweke evaluation."""

    z_score: float
    converged: bool
    window_a_mean: float
    window_b_mean: float
    samples_used: int


class GewekeMonitor:
    """On-the-fly Geweke convergence monitor over a scalar series.

    Parameters
    ----------
    threshold:
        Declare convergence when ``Z <= threshold`` (paper default 0.1).
    first_fraction / last_fraction:
        Window sizes; paper uses the first 10% and the last 50%.
    min_samples:
        Observations required before any verdict is attempted — tiny walks
        make the Z statistic meaningless.
    """

    def __init__(
        self,
        threshold: float = 0.1,
        first_fraction: float = 0.1,
        last_fraction: float = 0.5,
        min_samples: int = 20,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
            raise ConfigurationError("window fractions must be in (0, 1)")
        if first_fraction + last_fraction > 1.0:
            raise ConfigurationError(
                "windows overlap: first_fraction + last_fraction must be <= 1"
            )
        if min_samples < 4:
            raise ConfigurationError(f"min_samples must be >= 4, got {min_samples}")
        self.threshold = threshold
        self.first_fraction = first_fraction
        self.last_fraction = last_fraction
        self.min_samples = min_samples
        self._series: List[float] = []

    def observe(self, value: float) -> None:
        """Append one monitored observation (e.g. current node's degree)."""
        self._series.append(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        """Append a batch of observations."""
        self._series.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return len(self._series)

    def evaluate(self) -> GewekeResult:
        """Compute the Geweke Z for the current series.

        Raises
        ------
        ConvergenceError
            If fewer than ``min_samples`` observations are available.
        """
        n = len(self._series)
        if n < self.min_samples:
            raise ConvergenceError(
                f"need at least {self.min_samples} observations, have {n}"
            )
        series = np.asarray(self._series)
        size_a = max(2, int(n * self.first_fraction))
        size_b = max(2, int(n * self.last_fraction))
        window_a = series[:size_a]
        window_b = series[n - size_b :]
        mean_a = float(window_a.mean())
        mean_b = float(window_b.mean())
        # Variance of each window *mean*; ddof=1 for the unbiased estimate.
        var_a = float(window_a.var(ddof=1)) / size_a
        var_b = float(window_b.var(ddof=1)) / size_b
        spread = var_a + var_b
        if spread <= 0.0:
            # Both windows are constant: identical means converge trivially,
            # different means can never reconcile (infinite Z).
            z = 0.0 if mean_a == mean_b else float("inf")
        else:
            z = abs(mean_a - mean_b) / float(np.sqrt(spread))
        return GewekeResult(
            z_score=z,
            converged=z <= self.threshold,
            window_a_mean=mean_a,
            window_b_mean=mean_b,
            samples_used=n,
        )

    def is_converged(self) -> bool:
        """True when enough data exists and the Z test passes."""
        if len(self._series) < self.min_samples:
            return False
        return self.evaluate().converged

    def reset(self) -> None:
        """Clear the observation series (new walk)."""
        self._series.clear()


# ----------------------------------------------------------------------
# Vectorized batch diagnostics: one row per walk, no Python loop over K
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchGewekeResult:
    """Per-walk outcome of one vectorized Geweke evaluation.

    Arrays are aligned by walk index (row of the input matrix).
    """

    z_scores: np.ndarray
    converged: np.ndarray
    window_a_means: np.ndarray
    window_b_means: np.ndarray
    samples_used: int

    @property
    def k(self) -> int:
        """Number of walks evaluated."""
        return self.z_scores.size

    @property
    def all_converged(self) -> bool:
        """True when every walk's Z test passes."""
        return bool(self.converged.all())

    @property
    def converged_fraction(self) -> float:
        """Fraction of walks whose Z test passes."""
        if self.converged.size == 0:
            return 0.0
        return float(self.converged.mean())


def geweke_batch(
    matrix,
    threshold: float = 0.1,
    first_fraction: float = 0.1,
    last_fraction: float = 0.5,
    min_samples: int = 20,
) -> BatchGewekeResult:
    """Geweke Z for every row of a ``(K, n)`` attribute matrix at once.

    The vectorized twin of :class:`GewekeMonitor` over
    :func:`repro.walks.batch.walk_attribute_matrix` output: row *i*'s
    Z score and verdict equal a monitor fed walk *i*'s series, window
    sizing, ddof and degenerate-window conventions included (two constant
    windows converge iff their means agree; NaN rows yield NaN scores and
    a not-converged verdict).

    Raises
    ------
    ConvergenceError
        If rows are shorter than *min_samples*.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive, got {threshold}")
    if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
        raise ConfigurationError("window fractions must be in (0, 1)")
    if first_fraction + last_fraction > 1.0:
        raise ConfigurationError(
            "windows overlap: first_fraction + last_fraction must be <= 1"
        )
    if min_samples < 4:
        raise ConfigurationError(f"min_samples must be >= 4, got {min_samples}")
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError(f"expected a (K, n) matrix, got shape {values.shape}")
    n = values.shape[1]
    if n < min_samples:
        raise ConvergenceError(f"need at least {min_samples} observations, have {n}")
    size_a = max(2, int(n * first_fraction))
    size_b = max(2, int(n * last_fraction))
    window_a = values[:, :size_a]
    window_b = values[:, n - size_b :]
    mean_a = window_a.mean(axis=1)
    mean_b = window_b.mean(axis=1)
    # Variance of each window *mean*; ddof=1 for the unbiased estimate.
    var_a = window_a.var(axis=1, ddof=1) / size_a
    var_b = window_b.var(axis=1, ddof=1) / size_b
    spread = var_a + var_b
    degenerate = spread <= 0.0  # NaN spread fails this test -> NaN z-score
    safe = np.where(degenerate, 1.0, spread)
    z = np.abs(mean_a - mean_b) / np.sqrt(safe)
    z[degenerate] = np.where(mean_a[degenerate] == mean_b[degenerate], 0.0, np.inf)
    return BatchGewekeResult(
        z_scores=z,
        converged=z <= threshold,
        window_a_means=mean_a,
        window_b_means=mean_b,
        samples_used=n,
    )


@dataclass(frozen=True)
class BatchConvergenceReport:
    """Joint convergence picture of one K-walk batch.

    Combines the three monitors the paper names (§2.2.3, §6.1): per-walk
    Geweke verdicts, per-walk effective sample sizes (Eq. 25), and the
    cross-walk Gelman–Rubin PSRF treating the K walks as parallel chains.
    """

    geweke: BatchGewekeResult
    ess: np.ndarray
    psrf: float

    @property
    def total_ess(self) -> float:
        """Batch-wide effective sample count (sum over walks)."""
        return float(self.ess.sum())

    def is_converged(self, psrf_threshold: float = 1.1) -> bool:
        """All Geweke tests pass and the PSRF is under *psrf_threshold*.

        A single-walk batch has no between-chain information; its NaN PSRF
        never passes — use more walks when mixing evidence matters.
        """
        return self.geweke.all_converged and bool(self.psrf <= psrf_threshold)


def diagnose_walk_batch(
    matrix,
    threshold: float = 0.1,
    min_samples: int = 20,
    max_lag: int | None = None,
) -> BatchConvergenceReport:
    """Convergence-diagnose a whole batch from its attribute matrix.

    One call covers the K-walk batch: feed it
    ``walk_attribute_matrix(csr, run_walk_batch(...))`` and read per-walk
    Geweke scores, per-walk ESS, and the cross-walk PSRF (NaN when the
    batch has a single walk — one chain carries no between-chain
    evidence).
    """
    # Imported here: gelman_rubin pulls in the sampler stack, which itself
    # imports this module for GewekeMonitor (samplers -> convergence).
    from repro.walks.gelman_rubin import psrf_matrix

    values = np.asarray(matrix, dtype=float)
    geweke = geweke_batch(values, threshold=threshold, min_samples=min_samples)
    ess = effective_sample_size_matrix(values, max_lag=max_lag)
    psrf = psrf_matrix(values) if values.shape[0] >= 2 else float("nan")
    return BatchConvergenceReport(geweke=geweke, ess=ess, psrf=psrf)
