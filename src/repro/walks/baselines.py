"""Crawling baselines: BFS, DFS, and snowball sampling.

The graph-sampling literature the paper builds on (§8, e.g. Leskovec &
Faloutsos [25]) repeatedly finds random-walk methods superior to crawl-order
baselines, whose samples are confined to the start's neighborhood and
heavily biased toward high-degree nodes.  These samplers exist so the claim
is testable here: they plug into the same harness as every other sampler
(``sample(api, start, count, seed)`` → :class:`SampleBatch`).

None of them produces samples from a known target distribution, so their
batches carry uniform target weights and the aggregate estimator treats
them as (wrongly) uniform — reproducing how naive crawls are typically
(ab)used in practice.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node


class BFSSampler:
    """Breadth-first crawl: take the first *count* nodes discovered."""

    name = "bfs"

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect the first *count* BFS-discovered nodes from *start*."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        batch = SampleBatch(sampler=self.name)
        visited = {start}
        queue = deque([start])
        try:
            while queue and len(batch.nodes) < count:
                current = queue.popleft()
                batch.nodes.append(current)
                batch.target_weights.append(1.0)
                for neighbor in api.neighbors(current):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        queue.append(neighbor)
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch


class DFSSampler:
    """Depth-first crawl: take the first *count* nodes visited."""

    name = "dfs"

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect the first *count* DFS-visited nodes from *start*."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        batch = SampleBatch(sampler=self.name)
        visited = {start}
        stack: List[Node] = [start]
        try:
            while stack and len(batch.nodes) < count:
                current = stack.pop()
                batch.nodes.append(current)
                batch.target_weights.append(1.0)
                # Reversed so the smallest-id neighbor is explored first,
                # keeping DFS order deterministic.
                for neighbor in reversed(api.neighbors(current)):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        stack.append(neighbor)
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch


class SnowballSampler:
    """Snowball sampling: expand *fanout* random neighbors per wave.

    The classical social-science design: each discovered node names up to
    *fanout* of its neighbors, wave after wave, until *count* nodes are
    gathered.
    """

    name = "snowball"

    def __init__(self, fanout: int = 3) -> None:
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self.fanout = fanout

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* nodes by fanout-limited wave expansion."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"{self.name}-{self.fanout}")
        visited = {start}
        wave: List[Node] = [start]
        try:
            while wave and len(batch.nodes) < count:
                next_wave: List[Node] = []
                for node in wave:
                    if len(batch.nodes) >= count:
                        break
                    batch.nodes.append(node)
                    batch.target_weights.append(1.0)
                    neighbors = list(api.neighbors(node))
                    rng.shuffle(neighbors)
                    for neighbor in neighbors[: self.fanout]:
                        if neighbor not in visited:
                            visited.add(neighbor)
                            next_wave.append(neighbor)
                wave = next_wave
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch
