"""Transition designs: the probability law of a single random-walk step.

A :class:`TransitionDesign` maps the current node to a probability
distribution over ``{current} ∪ N(current)`` (paper §2.2: the "transit
design").  Designs are written against a *neighbor view* — anything with
``neighbors(node)`` and ``degree(node)`` — so the same object drives

* the online walker over :class:`repro.osn.SocialNetworkAPI` (queries cost),
* the exact transition matrices in :mod:`repro.markov` (oracle, free), and
* the backward estimators in :mod:`repro.core`.

Query-cost realism shapes the interface.  ``step`` draws one transition
touching only the nodes a real crawler would (e.g. MHRW proposes one
neighbor and checks one degree, rather than materializing the whole row,
which would query *every* neighbor).  ``transition_probability`` computes a
single entry ``T(u, v)`` with the same parsimony.  ``transition_row`` — the
full distribution — exists for the oracle matrix builder and small-graph
work, where the view is a free in-memory graph.

Each design also declares its *target weight* ``target_weight(view, node)``:
the unnormalized stationary probability π(node).  WALK-ESTIMATE needs it
for acceptance–rejection, and the aggregate estimators use it to
importance-weight samples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Protocol, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.rng import choice_weighted

Node = int


class NeighborView(Protocol):
    """Minimal read interface shared by Graph and SocialNetworkAPI."""

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Sorted neighbors of *node*."""

    def degree(self, node: Node) -> int:
        """Number of neighbors of *node*."""


class TransitionDesign(ABC):
    """Abstract transit design of an MCMC random walk."""

    #: Short identifier used in reports and result records.
    name: str = "abstract"

    #: Whether T(u, u) can be positive for some node.  Backward estimation
    #: must include the node itself among predecessor candidates iff so.
    may_self_loop: bool = False

    @abstractmethod
    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        """Full distribution of the next step from *node* (oracle use).

        Returns a dict mapping candidate next nodes (neighbors, possibly
        including *node* itself) to probabilities summing to 1.
        """

    @abstractmethod
    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        """Single entry ``T(source, destination)``; 0 if not a candidate."""

    @abstractmethod
    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        """Draw the next node, touching as few nodes as the design allows."""

    @abstractmethod
    def target_weight(self, view: NeighborView, node: Node) -> float:
        """Unnormalized stationary probability π(node) of this design."""

    def uniform_target(self) -> bool:
        """True if the stationary distribution is uniform.

        Decides whether plain arithmetic means are unbiased for this
        design's samples (paper §7.1 uses arithmetic vs harmonic means).
        """
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _require_neighbors(view: NeighborView, node: Node) -> Tuple[Node, ...]:
    neighbors = view.neighbors(node)
    if not neighbors:
        raise GraphError(f"random walk stuck: node {node} has no neighbors")
    return neighbors


class SimpleRandomWalk(TransitionDesign):
    """Simple Random Walk (paper Definition 1).

    Uniform over neighbors; stationary probability proportional to degree.
    """

    name = "srw"
    may_self_loop = False

    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        neighbors = _require_neighbors(view, node)
        p = 1.0 / len(neighbors)
        return {neighbor: p for neighbor in neighbors}

    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        neighbors = _require_neighbors(view, source)
        if destination not in neighbors:
            return 0.0
        return 1.0 / len(neighbors)

    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        neighbors = _require_neighbors(view, node)
        return neighbors[int(rng.integers(0, len(neighbors)))]

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return float(view.degree(node))


class MetropolisHastingsWalk(TransitionDesign):
    """Metropolis–Hastings Random Walk with uniform target (paper Definition 2).

    Proposes a uniform neighbor ``v`` and accepts with probability
    ``min(1, d(u)/d(v))``; rejected proposals stay at ``u``.  A single step
    therefore queries only the current node and the proposed neighbor —
    the query cost profile real MHRW crawlers have.
    """

    name = "mhrw"
    may_self_loop = True

    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        neighbors = _require_neighbors(view, node)
        du = len(neighbors)
        row: Dict[Node, float] = {}
        moved_mass = 0.0
        for neighbor in neighbors:
            dv = view.degree(neighbor)
            p = (1.0 / du) * min(1.0, du / dv)
            row[neighbor] = p
            moved_mass += p
        self_loop = 1.0 - moved_mass
        if self_loop > 1e-15:
            row[node] = row.get(node, 0.0) + self_loop
        return row

    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        if destination == source:
            # The self-loop mass is the complement of all outgoing mass;
            # computing it genuinely requires every neighbor's degree.
            row = self.transition_row(view, source)
            return row.get(source, 0.0)
        neighbors = _require_neighbors(view, source)
        if destination not in neighbors:
            return 0.0
        du = len(neighbors)
        dv = view.degree(destination)
        return (1.0 / du) * min(1.0, du / dv)

    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        neighbors = _require_neighbors(view, node)
        proposal = neighbors[int(rng.integers(0, len(neighbors)))]
        du = len(neighbors)
        dv = view.degree(proposal)
        if dv <= du or rng.random() < du / dv:
            return proposal
        return node

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return 1.0

    def uniform_target(self) -> bool:
        return True


class LazyWalk(TransitionDesign):
    """Lazy version of another design: stay put with probability *laziness*.

    Laziness preserves the stationary distribution while guaranteeing
    aperiodicity — the standard fix for (near-)bipartite graphs (the
    paper's footnote 1 assumes a nonzero self-transition for exactly this
    reason).  The batch engine mirrors this design's draw order exactly
    (laziness coin first, inner draws only on a move) in
    :mod:`repro.walks.batch`, so lazy walks run vectorized whenever the
    inner design does.
    """

    name = "lazy"
    may_self_loop = True

    def __init__(self, inner: TransitionDesign, laziness: float = 0.5) -> None:
        if not 0.0 < laziness < 1.0:
            raise ConfigurationError(
                f"laziness must be strictly between 0 and 1, got {laziness}"
            )
        self.inner = inner
        self.laziness = laziness
        self.name = f"lazy-{inner.name}"

    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        inner_row = self.inner.transition_row(view, node)
        row = {
            candidate: (1.0 - self.laziness) * p for candidate, p in inner_row.items()
        }
        row[node] = row.get(node, 0.0) + self.laziness
        return row

    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        moving = (1.0 - self.laziness) * self.inner.transition_probability(
            view, source, destination
        )
        if destination == source:
            return self.laziness + moving
        return moving

    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        if rng.random() < self.laziness:
            return node
        return self.inner.step(view, node, rng)

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return self.inner.target_weight(view, node)

    def uniform_target(self) -> bool:
        return self.inner.uniform_target()

    def __repr__(self) -> str:
        return f"LazyWalk({self.inner!r}, laziness={self.laziness})"


class MaxDegreeWalk(TransitionDesign):
    """Max-degree walk: uniform stationary via a degree-capped self-loop.

    Moves to a uniform neighbor with probability ``d(u)/d_max`` and stays
    otherwise — equivalently, every node is padded with virtual self-loops
    up to degree ``d_max``, so dangling low-degree nodes mostly idle in
    place.  Requires a global degree bound; included as the classical
    alternative to MHRW for uniform sampling and to exercise
    WALK-ESTIMATE's design-transparency claim.  The vectorized twin in
    :mod:`repro.walks.batch` consumes the same conditional stream (move
    coin, then a neighbor index only on a move).
    """

    name = "maxdeg"
    may_self_loop = True

    def __init__(self, max_degree: int) -> None:
        if max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1, got {max_degree}")
        self.max_degree = max_degree

    def move_probability(self, degree):
        """Probability of leaving a node of the given degree, ``d/d_max``.

        Works elementwise on arrays — the batch kernel flips the same coin
        for a whole batch of degrees at once.
        """
        return degree / self.max_degree

    def _check_degree(self, view: NeighborView, node: Node, degree: int) -> None:
        if degree > self.max_degree:
            raise ConfigurationError(
                f"node {node} has degree {degree} > declared "
                f"max_degree {self.max_degree}"
            )

    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        neighbors = _require_neighbors(view, node)
        self._check_degree(view, node, len(neighbors))
        p = 1.0 / self.max_degree
        row = {neighbor: p for neighbor in neighbors}
        self_loop = 1.0 - p * len(neighbors)
        if self_loop > 1e-15:
            row[node] = row.get(node, 0.0) + self_loop
        return row

    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        neighbors = _require_neighbors(view, source)
        self._check_degree(view, source, len(neighbors))
        if destination == source:
            return 1.0 - len(neighbors) / self.max_degree
        if destination not in neighbors:
            return 0.0
        return 1.0 / self.max_degree

    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        neighbors = _require_neighbors(view, node)
        self._check_degree(view, node, len(neighbors))
        if rng.random() < self.move_probability(len(neighbors)):
            return neighbors[int(rng.integers(0, len(neighbors)))]
        return node

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return 1.0

    def uniform_target(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"MaxDegreeWalk(max_degree={self.max_degree})"


class BidirectionalWalk(TransitionDesign):
    """SRW over edges that pass the paper's bidirectional check (§6.3.1).

    Under call-stable neighbor restrictions (types 2/3), the visible edge
    relation is asymmetric: ``v ∈ N_vis(u)`` does not imply
    ``u ∈ N_vis(v)``, and a walk on that directed relation has no usable
    stationary distribution.  The paper's remedy is to only traverse an
    edge when both directions are visible; the mutual relation is symmetric
    by construction, so this design is an SRW on the *mutual graph* with
    stationary probability proportional to mutual degree.

    Each step verifies candidates by querying them — the genuine query
    price of the bidirectional check, paid exactly as a real crawler would.
    """

    name = "bidir-srw"
    may_self_loop = False

    def _mutual(self, view: NeighborView, node: Node) -> Tuple[Node, ...]:
        visible = view.neighbors(node)
        mutual = tuple(v for v in visible if node in view.neighbors(v))
        if not mutual:
            raise GraphError(
                f"node {node} has no mutual edges under the restriction; "
                "walk cannot proceed"
            )
        return mutual

    def transition_row(self, view: NeighborView, node: Node) -> Dict[Node, float]:
        mutual = self._mutual(view, node)
        p = 1.0 / len(mutual)
        return {neighbor: p for neighbor in mutual}

    def transition_probability(
        self, view: NeighborView, source: Node, destination: Node
    ) -> float:
        mutual = self._mutual(view, source)
        if destination not in mutual:
            return 0.0
        return 1.0 / len(mutual)

    def step(self, view: NeighborView, node: Node, rng: np.random.Generator) -> Node:
        mutual = self._mutual(view, node)
        return mutual[int(rng.integers(0, len(mutual)))]

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return float(len(self._mutual(view, node)))


def sample_from_row(row: Dict[Node, float], rng: np.random.Generator) -> Node:
    """Draw from an explicit transition row (generic fallback; oracle use)."""
    candidates = list(row)
    weights = [row[c] for c in candidates]
    return choice_weighted(rng, candidates, weights)
