"""Pluggable kernel backends for the batch-walk hot loop.

The NumPy batch engine (:mod:`repro.walks.batch`) advances K walks per
array operation, but still pays Python-level dispatch *per step*: every
transition re-enters the interpreter, re-slices ``degrees``/``indptr``,
and re-branches on the design.  That overhead is what left the K=1 batch
path ~3x behind the scalar engine and caps wide-batch throughput well
below memory bandwidth (ROADMAP open item 2).

This module makes the step executor pluggable:

* ``numpy`` — the reference backend.  Delegates to the per-step kernels
  in :mod:`repro.walks.batch`; always available; the semantics other
  backends are pinned against.
* ``native`` — a Numba ``@njit`` backend that compiles the **whole
  trajectory loop** (CSR neighbor lookup, transition draw, accept/
  reject, laziness chain, path writeback) into one nopython function
  with zero per-step Python dispatch.  Import-gated: without ``numba``
  (``pip install "walk-not-wait-repro[native]"``) the backend reports
  itself unavailable and soft resolution falls back to ``numpy`` with a
  one-time warning.
* ``python`` — the native trajectory loop executed *without* the JIT.
  Orders of magnitude slower than both others; it exists so the native
  loop's arithmetic and draw order stay verifiable bit for bit on hosts
  without numba (the parity suites run it unconditionally).

**Seed-stable parity across backends.**  Numba ≥ 0.57 implements
``np.random.Generator`` (PCG64) inside nopython code with bit-identical
streams, and NumPy's array draws consume the underlying bit stream
exactly as the equivalent sequence of scalar draws (``rng.integers(0,
high_array)`` ≡ one scalar bounded draw per element, in order;
``rng.random(n)`` ≡ n scalar uniforms).  The trajectory kernels below
therefore draw **phase-major within each step** — all laziness coins,
then the liveness/degree checks, then all proposal indices, then the
conditional acceptance coins — which is precisely the order the NumPy
kernels consume the stream in.  With the same seed every backend
produces the same trajectories *and* leaves the generator in the same
state, so calibration/main-round sequences that share one generator stay
reproducible when the backend changes.  The golden RNG fixtures
(``tests/walks/test_batch_rng_regression.py``) and the cross-backend
hypothesis suite (``tests/walks/test_kernel_backends.py``) pin this.

Backend selection: ``run_walk_batch(..., backend=...)`` per call,
``EngineConfig(kernel_backend=...)`` /
``WalkEstimateConfig(kernel_backend=...)`` for the front ends and the
service, or the ``REPRO_KERNEL_BACKEND`` environment variable for the
process default (soft resolution — falls back to ``numpy`` when the
requested backend is unavailable).
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graphs.csr import CSRGraph
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    TransitionDesign,
)

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the default CI matrix
    numba = None

#: Environment variable naming the process-default backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: How to get the JIT backend; quoted by every unavailability message.
NATIVE_INSTALL_HINT = 'pip install "walk-not-wait-repro[native]" (numba>=0.57)'

# Inner-design codes for the compiled trajectory loop.
_SRW, _MHRW, _MAXDEG = 0, 1, 2

# Kernel exit codes; the wrapper converts them back into the byte-exact
# errors the NumPy kernels raise.
_OK, _ERR_STUCK, _ERR_OVER_DEGREE = 0, 1, 2


def compile_design(
    design: TransitionDesign,
) -> Optional[Tuple[int, np.ndarray, int]]:
    """Flatten *design* into ``(inner_code, laziness_chain, max_degree)``.

    A :class:`LazyWalk` nest becomes a float64 chain (outermost coin
    first); the innermost design becomes an integer code.  Returns
    ``None`` for designs the trajectory loop cannot express — the same
    closure as :func:`repro.walks.batch.has_batch_kernel`.
    """
    chain: List[float] = []
    inner: TransitionDesign = design
    while isinstance(inner, LazyWalk):
        chain.append(inner.laziness)
        inner = inner.inner
    laziness = np.asarray(chain, dtype=np.float64)
    if isinstance(inner, SimpleRandomWalk):
        return _SRW, laziness, 0
    if isinstance(inner, MetropolisHastingsWalk):
        return _MHRW, laziness, 0
    if isinstance(inner, MaxDegreeWalk):
        return _MAXDEG, laziness, int(inner.max_degree)
    return None


# ----------------------------------------------------------------------
# Trajectory kernels: nopython-compatible bodies, shared verbatim by the
# ``python`` backend (as-is) and the ``native`` backend (njit-wrapped).
# ----------------------------------------------------------------------
def _walk_trajectory(
    indptr, indices, degrees, starts, steps, code, laziness, max_degree, rng
):
    """All K trajectories of a (possibly lazy) SRW/MHRW/MaxDeg walk.

    Phase-major within each step, walker-major within each phase — the
    exact stream order of the NumPy step kernels.  Returns ``(paths,
    err, err_node, err_degree)``; on error the paths array is partial
    and the caller raises without reading it.
    """
    k = starts.shape[0]
    paths = np.empty((k, steps + 1), dtype=np.int64)
    current = starts.copy()
    proposal = np.empty(k, dtype=np.int64)
    moving = np.empty(k, dtype=np.bool_)
    for i in range(k):
        paths[i, 0] = current[i]
    for t in range(steps):
        for i in range(k):
            moving[i] = True
        # Laziness chain: one coin per still-moving walker per layer,
        # outermost layer first (LazyWalk.step's order, per walker).
        for layer in range(laziness.shape[0]):
            stay = laziness[layer]
            for i in range(k):
                if moving[i] and rng.random() < stay:
                    moving[i] = False
        # Liveness pass over the movers, before any inner draw: a
        # lazily-parked walk on an isolated node survives until it
        # first tries to move.
        for i in range(k):
            if moving[i] and degrees[current[i]] == 0:
                return paths, _ERR_STUCK, current[i], np.int64(0)
        if code == _MAXDEG:
            for i in range(k):
                if moving[i] and degrees[current[i]] > max_degree:
                    node = current[i]
                    return paths, _ERR_OVER_DEGREE, node, degrees[node]
            # Virtual-degree coin for every mover, then the neighbor
            # index only for those whose coin said move.
            for i in range(k):
                if moving[i]:
                    d = degrees[current[i]]
                    if not (rng.random() < d / max_degree):
                        moving[i] = False
            for i in range(k):
                if moving[i]:
                    j = rng.integers(0, degrees[current[i]])
                    current[i] = indices[indptr[current[i]] + j]
        elif code == _MHRW:
            # Proposal phase for every mover, then the acceptance coin
            # only where the proposal has strictly higher degree.
            for i in range(k):
                if moving[i]:
                    j = rng.integers(0, degrees[current[i]])
                    proposal[i] = indices[indptr[current[i]] + j]
            for i in range(k):
                if moving[i]:
                    du = degrees[current[i]]
                    dv = degrees[proposal[i]]
                    if dv <= du or rng.random() < du / dv:
                        current[i] = proposal[i]
        else:
            for i in range(k):
                if moving[i]:
                    j = rng.integers(0, degrees[current[i]])
                    current[i] = indices[indptr[current[i]] + j]
        for i in range(k):
            paths[i, t + 1] = current[i]
    return paths, _OK, np.int64(0), np.int64(0)


def _nbrw_trajectory(indptr, indices, degrees, starts, steps, rng):
    """All K non-backtracking trajectories; same contract as above.

    One bounded draw per walker per step over ``degree - 1`` effective
    slots (degree-1 nodes may backtrack), with the arrival edge skipped
    by a binary search over the sorted row — the compiled twin of the
    vectorized ``_rows_searchsorted`` recipe.
    """
    k = starts.shape[0]
    paths = np.empty((k, steps + 1), dtype=np.int64)
    current = starts.copy()
    previous = np.full(k, -1, dtype=np.int64)
    for i in range(k):
        paths[i, 0] = current[i]
    for t in range(steps):
        for i in range(k):
            if degrees[current[i]] == 0:
                return paths, _ERR_STUCK, current[i], np.int64(0)
        for i in range(k):
            d = degrees[current[i]]
            excluded = previous[i] >= 0 and d > 1
            j = rng.integers(0, d - 1 if excluded else d)
            if excluded:
                base = indptr[current[i]]
                lo = np.int64(0)
                hi = d
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if indices[base + mid] < previous[i]:
                        lo = mid + 1
                    else:
                        hi = mid
                if j >= lo:
                    j += 1
            previous[i] = current[i]
            current[i] = indices[indptr[current[i]] + j]
            paths[i, t + 1] = current[i]
    return paths, _OK, np.int64(0), np.int64(0)


_TRAJECTORY_BODIES: Dict[str, Callable] = {
    "walk": _walk_trajectory,
    "nbrw": _nbrw_trajectory,
}

# Dispatcher builds (njit wraps, or plain-Python runner adoptions) since
# process start.  ShardedWalkEngine workers probe this across rounds to
# prove that a persistent pool compiles once and then only reuses.
_COMPILE_EVENTS = 0


def compilation_events() -> int:
    """Dispatcher builds in this process (diagnostics / amortization tests)."""
    return _COMPILE_EVENTS


def _shard_compilation_events(csr: CSRGraph) -> int:
    """``map_shards`` probe: dispatcher builds inside this worker."""
    return compilation_events()


def _raise_kernel_error(
    csr: CSRGraph, err: int, node: int, degree: int, max_degree: int
):
    """Convert a kernel exit code into the NumPy backend's exact error."""
    original = int(csr.ids_of(np.asarray([node], dtype=np.int64))[0])
    if err == _ERR_STUCK:
        raise GraphError(f"random walk stuck: node {original} has no neighbors")
    raise ConfigurationError(
        f"node {original} has degree {int(degree)} > declared "
        f"max_degree {max_degree}"
    )


class KernelBackend:
    """One way of executing the batch-walk trajectory loop.

    Subclasses implement :meth:`run_walks` / :meth:`run_nbrw` over CSR
    *positions* (the id round-trip stays in :mod:`repro.walks.batch`)
    and must consume the generator stream exactly as the ``numpy``
    reference does.
    """

    name: str = "abstract"
    jit: bool = False

    @property
    def available(self) -> bool:
        """Whether this backend can execute on this host."""
        return True

    def supports(self, design: TransitionDesign) -> bool:
        """Whether *design* has a trajectory kernel on this backend."""
        return compile_design(design) is not None

    def run_walks(
        self,
        csr: CSRGraph,
        design: TransitionDesign,
        starts: np.ndarray,
        steps: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All K trajectories as a ``(K, steps + 1)`` position array."""
        raise NotImplementedError

    def run_nbrw(
        self,
        csr: CSRGraph,
        starts: np.ndarray,
        steps: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Non-backtracking twin of :meth:`run_walks`."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """One capability-report row for this backend."""
        return {
            "available": self.available,
            "jit": self.jit,
            "designs": ["srw", "mhrw", "maxdeg", "lazy-*", "nbrw"],
        }


class NumpyKernelBackend(KernelBackend):
    """The reference backend: per-step vectorized NumPy kernels."""

    name = "numpy"
    jit = False

    def supports(self, design: TransitionDesign) -> bool:
        from repro.walks import batch

        return batch.has_batch_kernel(design)

    def run_walks(self, csr, design, starts, steps, rng):
        from repro.walks import batch

        kernel = batch._resolve_kernel(design)
        if kernel is None:  # pragma: no cover - run_walk_batch validates
            raise ConfigurationError(
                f"design {design.name!r} has no batch kernel"
            )
        current = starts
        paths = np.empty((current.size, steps + 1), dtype=np.int64)
        paths[:, 0] = current
        for t in range(steps):
            current = kernel(csr, design, current, rng)
            paths[:, t + 1] = current
        return paths

    def run_nbrw(self, csr, starts, steps, rng):
        from repro.walks import batch

        current = starts
        paths = np.empty((current.size, steps + 1), dtype=np.int64)
        paths[:, 0] = current
        previous = np.full(current.size, -1, dtype=np.int64)
        for t in range(steps):
            deg = csr.degrees[current]
            batch._require_alive(deg, current, csr)
            excluded = (previous >= 0) & (deg > 1)
            effective = deg - excluded
            idx = batch._uniform_indices(rng, effective)
            if excluded.any():
                slot = batch._rows_searchsorted(
                    csr, current[excluded], previous[excluded]
                )
                idx[excluded] += idx[excluded] >= slot
            nxt = csr.indices[csr.indptr[current] + idx]
            previous, current = current, nxt
            paths[:, t + 1] = current
        return paths

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row["note"] = "reference implementation; per-step vectorized kernels"
        return row


class TrajectoryLoopBackend(KernelBackend):
    """The whole-trajectory loop, JIT-compiled (``native``) or not (``python``).

    Both flavors share the kernel bodies above; the only difference is
    whether :mod:`numba` wraps them.  Dispatchers are built once per
    kernel kind and memoized on the instance — a persistent worker
    process (``ShardedWalkEngine``) therefore compiles on its first
    round and only reuses afterwards; ``cache=True`` additionally
    persists the machine code across processes.
    """

    def __init__(self, name: str, jit: bool) -> None:
        self.name = name
        self.jit = jit
        self._dispatchers: Dict[str, Callable] = {}

    @property
    def available(self) -> bool:
        return (not self.jit) or numba is not None

    def _dispatcher(self, kind: str) -> Callable:
        fn = self._dispatchers.get(kind)
        if fn is None:
            global _COMPILE_EVENTS
            body = _TRAJECTORY_BODIES[kind]
            if self.jit:
                if numba is None:  # pragma: no cover - require_backend gates
                    raise ConfigurationError(
                        f"kernel backend 'native' needs numba; {NATIVE_INSTALL_HINT}"
                    )
                fn = numba.njit(cache=True, nogil=True)(body)
            else:
                fn = body
            _COMPILE_EVENTS += 1
            self._dispatchers[kind] = fn
        return fn

    def run_walks(self, csr, design, starts, steps, rng):
        compiled = compile_design(design)
        if compiled is None:  # pragma: no cover - run_walk_batch validates
            raise ConfigurationError(
                f"design {design.name!r} has no trajectory kernel"
            )
        code, laziness, max_degree = compiled
        paths, err, node, degree = self._dispatcher("walk")(
            csr.indptr,
            csr.indices,
            csr.degrees,
            starts,
            steps,
            code,
            laziness,
            max_degree,
            rng,
        )
        if err != _OK:
            _raise_kernel_error(csr, err, int(node), int(degree), max_degree)
        return paths

    def run_nbrw(self, csr, starts, steps, rng):
        paths, err, node, degree = self._dispatcher("nbrw")(
            csr.indptr, csr.indices, csr.degrees, starts, steps, rng
        )
        if err != _OK:
            _raise_kernel_error(csr, err, int(node), int(degree), 0)
        return paths

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        if self.jit:
            row["requires"] = NATIVE_INSTALL_HINT
            row["numba"] = getattr(numba, "__version__", None)
            row["note"] = "whole-trajectory nopython loop; zero per-step dispatch"
        else:
            row["note"] = (
                "native loop without the JIT — verification only, very slow"
            )
        return row


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, KernelBackend] = {}
_DEFAULT_BACKEND = "numpy"
_WARNED_FALLBACK = False

BackendLike = Union[str, KernelBackend, None]


def register_backend(backend: KernelBackend, replace: bool = False) -> KernelBackend:
    """Add *backend* to the registry (``replace=True`` to override)."""
    if backend.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"kernel backend {backend.name!r} is already registered"
        )
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can execute on this host, sorted."""
    return tuple(name for name in backend_names() if _REGISTRY[name].available)


def get_backend(name: str) -> KernelBackend:
    """The registered backend called *name* (available or not)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; registered: "
            + ", ".join(backend_names())
        ) from None


def require_backend(name: str) -> KernelBackend:
    """Strict resolution: raise unless *name* exists **and** is available."""
    backend = get_backend(name)
    if not backend.available:
        raise ConfigurationError(
            f"kernel backend {name!r} is not available on this host: "
            f"numba is not installed — {NATIVE_INSTALL_HINT} — or use "
            "kernel_backend='numpy'"
        )
    return backend


def _warn_fallback_once(requested: str) -> None:
    global _WARNED_FALLBACK
    if not _WARNED_FALLBACK:
        _WARNED_FALLBACK = True
        warnings.warn(
            f"kernel backend {requested!r} is unavailable (numba not "
            f"installed; {NATIVE_INSTALL_HINT}); falling back to 'numpy'",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_backend(spec: BackendLike = None, strict: bool = True) -> KernelBackend:
    """Resolve a backend spec to an executable backend object.

    ``None`` means the process default; a string is looked up in the
    registry; a backend object passes through.  ``strict=True`` (the
    default for explicit per-call/config selection) raises when the
    request cannot be honored; ``strict=False`` falls back to ``numpy``
    with a one-time :class:`RuntimeWarning` — the import-time/env-var
    path, where failing would make the package unimportable.
    """
    if isinstance(spec, KernelBackend):
        return spec
    name = default_backend_name() if spec is None else spec
    if strict:
        return require_backend(name)
    backend = get_backend(name)
    if not backend.available:
        _warn_fallback_once(name)
        return _REGISTRY["numpy"]
    return backend


def default_backend_name() -> str:
    """The process-default backend name (``numpy`` unless overridden)."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> KernelBackend:
    """Set the process default (strict: the backend must be available)."""
    global _DEFAULT_BACKEND
    backend = require_backend(name)
    _DEFAULT_BACKEND = backend.name
    return backend


def capability_report() -> Dict[str, object]:
    """What this host can run: default backend plus one row per backend."""
    return {
        "default": default_backend_name(),
        "numba": getattr(numba, "__version__", None),
        "backends": {name: _REGISTRY[name].describe() for name in backend_names()},
    }


register_backend(NumpyKernelBackend())
register_backend(TrajectoryLoopBackend("native", jit=True))
register_backend(TrajectoryLoopBackend("python", jit=False))

# Honor the environment override softly: a numba-less host asking for
# ``native`` must still import (one-time warning, numpy fallback) — the
# same graceful degradation as the FastAPI-gated service adapter.
_env_default = os.environ.get(BACKEND_ENV_VAR)
if _env_default:
    _DEFAULT_BACKEND = resolve_backend(_env_default, strict=False).name
