"""Sharded walk engine: multiprocess fan-out over one shared CSR slab.

The batch engine (:mod:`repro.walks.batch`) advances K walks per NumPy
operation — one core's worth of throughput.  This module adds the next
axis: a :class:`ShardedWalkEngine` keeps a persistent pool of worker
processes, each attached to the *same* zero-copy shared-memory topology
(:mod:`repro.graphs.shm`), and fans a K-walk batch out as contiguous
per-worker shards.  Walks are embarrassingly parallel once the topology
is a frozen read-only slab, so W workers buy close to W× steps/sec on a
multi-core host — the "Walk, Not Wait" premise, scaled past one process.

**Sharding and determinism.**  A batch of K walks splits into
``min(n_workers, K)`` contiguous shards of near-equal size.  Each shard
runs the ordinary single-process kernels over its attached slab with its
own RNG stream, derived from the caller's seed via :func:`repro.rng.spawn`
— so results are deterministic for a fixed ``(seed, n_workers)`` and walk
*i* of the merged result always corresponds to ``starts[i]``.  With one
shard the caller's stream is used directly, which makes a one-worker
engine reproduce :func:`repro.walks.batch.run_walk_batch` trajectory for
trajectory — the parity hook the tests pin.  More workers legitimately
re-partition the randomness (each walk's law is unchanged; the joint
stream differs), exactly as the batch engine re-partitions the scalar
engine's.

**Lifetime.**  The engine owns one slab (a ``/dev/shm`` segment by
default, or a file-backed ``*.slab`` via ``slab_storage="file"``) and one
process pool; both live until :meth:`ShardedWalkEngine.close` (or the
``with`` block) releases them — workers detach first, then the owner
unlinks the slab, so no ``/dev/shm`` entry or slab file survives a closed
engine.  Creating an engine costs one topology copy plus worker startup;
amortize it by running many batches per engine, not one.

**Growing topologies.**  Every task ships the slab *spec* it must run
against, and workers re-attach lazily whenever the spec changes — so one
persistent pool can chase a topology that grows between rounds.  Build
the engine over an externally owned slab with
:meth:`ShardedWalkEngine.from_shared` and re-point it with
:meth:`ShardedWalkEngine.update_topology`; slab lifetime (create, retire,
unlink) then belongs to the caller — in the async crawl pipeline, to the
epoch/lease machinery of
:class:`repro.crawl.publisher.TopologyPublisher`, which keeps a
superseded slab alive until the last round holding it completes.  An
in-flight round is pinned to the spec its tasks carried: a concurrent
swap never tears it.

**Crash transparency.**  A worker process dying mid-round breaks the
whole :class:`~concurrent.futures.ProcessPoolExecutor`; the engine treats
that as a recoverable event.  Completed shards keep their results (and
their rows, already written at fixed offsets into the output slab);
:meth:`ShardedWalkEngine.map_shards` respawns the pool and re-executes
*only* the failed shards.  Because every shard's RNG is an independent
pickled copy (the parent's generators are never mutated by a submit) and
row writes are idempotent, the recovered round is bit-identical to a
crash-free run — the invariant ``tests/faults/test_crash_recovery.py``
pins, with crashes injected deterministically via
:meth:`ShardedWalkEngine.schedule_worker_crash`.  Recovery is bounded by
``max_shard_retries`` respawn cycles per round, after which
:class:`~repro.errors.WorkerCrashError` surfaces.

**Choosing K and worker count.**  See the ROADMAP's engine table: shard
width ``K / n_workers`` should stay large enough (≳256) that each worker
amortizes its per-step NumPy overhead, so prefer fewer workers for small
batches.  ``n_workers`` beyond the physical core count only adds
scheduling noise.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError
from repro.graphs.csr import CSRGraph
from repro.graphs.shm import CSRSlabSpec, SharedCSR
from repro.rng import RngLike, ensure_rng, spawn
from repro.walks.batch import (
    BatchWalkResult,
    GraphLike,
    as_csr,
    has_batch_kernel,
    run_nbrw_walk_batch,
    run_walk_batch,
)
from repro.walks.kernels import require_backend as require_kernel_backend
from repro.walks.transitions import TransitionDesign

# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
#: The worker's attached slab; set once per process by :func:`_worker_init`.
_WORKER_SLAB: Optional[SharedCSR] = None


def _worker_close() -> None:
    """Detach the slab at worker exit (owner keeps the unlink duty)."""
    global _WORKER_SLAB
    if _WORKER_SLAB is not None:
        _WORKER_SLAB.close()
        _WORKER_SLAB = None


def _ensure_worker_slab(spec: CSRSlabSpec) -> SharedCSR:
    """Attach (or re-attach) the worker to the slab *spec* names.

    The swap hook: when a task arrives carrying a different segment than
    the one currently mapped, the worker detaches the stale mapping first
    — so a retired epoch's memory is released as soon as every worker has
    moved on, and a worker never reads one epoch's arrays against
    another's spec.
    """
    global _WORKER_SLAB
    if (
        _WORKER_SLAB is None
        or _WORKER_SLAB.closed
        or _WORKER_SLAB.spec.segment != spec.segment
    ):
        if _WORKER_SLAB is not None:
            _WORKER_SLAB.close()
        _WORKER_SLAB = SharedCSR.attach(spec)
    return _WORKER_SLAB


def _worker_init(spec: CSRSlabSpec) -> None:
    """Pool initializer: register cleanup and warm-attach the initial slab.

    The warm attach is best-effort: a worker spawned after the engine's
    topology moved on (possible once slabs are externally owned and
    retired) finds the initial segment gone — harmless, because every
    task re-attaches from its own spec via :func:`_ensure_worker_slab`.
    """
    atexit.register(_worker_close)
    try:
        _ensure_worker_slab(spec)
    except FileNotFoundError:  # pragma: no cover - retired before spawn
        pass


def _run_shard(spec: CSRSlabSpec, fn: Callable, args: tuple):
    """Trampoline executed in the worker: hand *fn* the task's slab graph."""
    return fn(_ensure_worker_slab(spec).graph, *args)


def _crash_shard(csr: CSRGraph, *args) -> int:
    """Kill the hosting worker process dead — the scheduled-crash payload.

    ``os._exit`` bypasses every cleanup hook, exactly like a SIGKILL'd or
    OOM'd worker: no rows written, no result returned, the pool breaks.
    Substituted for a shard's real function by
    :meth:`ShardedWalkEngine.schedule_worker_crash`; the retry submits
    the real function, so recovery exercises the genuine path.
    """
    os._exit(1)


def _write_rows(segment: str, rows: np.ndarray, offset: int, total_rows: int) -> int:
    """Write a shard's path rows into the shared output slab.

    Returning the K×(steps+1) trajectory matrix through the executor's
    result pipe would pickle megabytes per round; writing rows straight
    into a caller-owned segment makes the merge a single parent-side
    copy.  Only the row count travels back.
    """
    shm = shared_memory.SharedMemory(name=segment)
    try:
        view = np.frombuffer(shm.buf, dtype=np.int64, count=total_rows * rows.shape[1])
        view.reshape(total_rows, rows.shape[1])[offset : offset + rows.shape[0]] = rows
        del view
    finally:
        shm.close()
    return rows.shape[0]


def _walk_shard(
    csr: CSRGraph,
    design: TransitionDesign,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    kernel_backend: Optional[str],
    segment: str,
    offset: int,
    total_rows: int,
) -> int:
    # The backend travels as its registry *name* (picklable); the worker
    # resolves it against its own process-local registry, so a JIT
    # backend compiles once per worker and persists across rounds.
    paths = run_walk_batch(
        csr, design, starts, steps, seed=rng, backend=kernel_backend
    ).paths
    return _write_rows(segment, paths, offset, total_rows)


def _nbrw_shard(
    csr: CSRGraph,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    kernel_backend: Optional[str],
    segment: str,
    offset: int,
    total_rows: int,
) -> int:
    paths = run_nbrw_walk_batch(
        csr, starts, steps, seed=rng, backend=kernel_backend
    ).paths
    return _write_rows(segment, paths, offset, total_rows)


def default_worker_count() -> int:
    """Worker count when none is given: the visible CPU count.

    Prefers the scheduling affinity (what the container/cgroup actually
    grants) over the raw core count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class RoundEvent:
    """One fan-out dispatched by a :class:`ShardedWalkEngine`.

    Delivered to round hooks (:meth:`ShardedWalkEngine.add_round_hook`)
    synchronously, just before the round's tasks are submitted — the
    observation point schedulers and metrics layers (the serving layer's
    gauges) attach to without wrapping every front end.
    """

    #: 1-based ordinal of this round within the engine's lifetime.
    round_index: int
    #: Number of shard tasks the round fans out.
    shards: int
    #: Backing segment of the topology the round is pinned to.
    segment: str


class ShardedWalkEngine:
    """Persistent multiprocess fan-out for the batch-walk front ends.

    Parameters
    ----------
    graph:
        A :class:`CSRGraph` (preferred) or mutable
        :class:`~repro.graphs.graph.Graph`, compiled on the fly.  The
        topology is copied once into shared memory; later mutations of
        the source are invisible to the engine.
    n_workers:
        Worker processes to keep alive; defaults to the visible CPU
        count (:func:`default_worker_count`).
    mp_context:
        :mod:`multiprocessing` start method.  ``"spawn"`` (default) is
        portable and genuinely exercises the attach path; ``"fork"``
        starts faster on Linux.
    slab_storage / slab_dir:
        Backend for the engine-owned slab — ``"shm"`` (default) or
        ``"file"`` with a slab directory (see :mod:`repro.graphs.shm`).
        Ignored when *shared* is given: a borrowed slab's storage was
        chosen by whoever created it, and workers attach either kind
        from the spec alone.

    Use as a context manager, or call :meth:`close` — the engine holds a
    slab and live processes until released.
    """

    def __init__(
        self,
        graph: Optional[GraphLike] = None,
        n_workers: Optional[int] = None,
        mp_context: str = "spawn",
        *,
        shared: Optional[SharedCSR] = None,
        slab_storage: str = "shm",
        slab_dir: Optional[str] = None,
    ) -> None:
        if (graph is None) == (shared is None):
            raise ConfigurationError(
                "provide exactly one of graph (engine-owned slab) or "
                "shared (externally owned slab)"
            )
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers if n_workers is not None else default_worker_count()
        # Resolve everything that can fail *before* allocating the
        # segment — a bad start method must not leave a half-constructed
        # engine holding a /dev/shm entry until GC.
        context = multiprocessing.get_context(mp_context)
        if shared is not None:
            if shared.closed:
                raise ConfigurationError("cannot build an engine on a closed slab")
            self._shared = shared
            self._owns_slab = False
        else:
            csr = as_csr(graph)
            self._shared = SharedCSR.create(
                csr, storage=slab_storage, slab_dir=slab_dir
            )
            self._owns_slab = True
        self._context = context
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(self._shared.spec,),
        )
        self._round_hooks: List[Callable[[RoundEvent], None]] = []
        self._rounds_dispatched = 0
        #: Respawn cycles allowed per round before giving up.
        self.max_shard_retries = 2
        #: Pool respawns performed over the engine's lifetime.
        self.worker_respawns = 0
        #: Shard tasks re-executed after a worker death.
        self.shard_retries = 0
        self._scheduled_crashes: Set[Tuple[int, int]] = set()

    @classmethod
    def from_shared(
        cls,
        shared: SharedCSR,
        n_workers: Optional[int] = None,
        mp_context: str = "spawn",
    ) -> "ShardedWalkEngine":
        """Engine over an externally owned slab (swap-capable, borrow-only).

        The engine never closes or unlinks *shared* — the caller (e.g. a
        :class:`~repro.crawl.publisher.TopologyPublisher`) keeps slab
        lifetime, and may re-point the engine at successive epochs via
        :meth:`update_topology` without restarting the worker pool.
        """
        return cls(shared=shared, n_workers=n_workers, mp_context=mp_context)

    def update_topology(self, shared: SharedCSR) -> None:
        """Point subsequent rounds at a different externally owned slab.

        Only valid for engines built with :meth:`from_shared` — an engine
        that owns its slab has nobody else to manage the old one's
        lifetime.  In-flight rounds are unaffected (their tasks carry the
        spec they started with); the caller must keep the old slab alive
        until those rounds complete, which the publisher's lease machinery
        does.
        """
        if self.closed:
            raise ConfigurationError("engine is closed")
        if self._owns_slab:
            raise ConfigurationError(
                "engine owns its slab; topology swaps require from_shared(...)"
            )
        if shared.closed:
            raise ConfigurationError("cannot swap to a closed slab")
        self._shared = shared

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The engine's own zero-copy view of the shared topology."""
        return self._shared.graph

    @property
    def segment_name(self) -> str:
        """Name of the backing shared-memory segment (for diagnostics)."""
        return self._shared.spec.segment

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released pool and segment."""
        return self._pool is None

    # ------------------------------------------------------------------
    # Round scheduling hooks
    # ------------------------------------------------------------------
    @property
    def rounds_dispatched(self) -> int:
        """Fan-out rounds this engine has dispatched over its lifetime."""
        return self._rounds_dispatched

    def add_round_hook(self, hook: Callable[[RoundEvent], None]) -> None:
        """Subscribe *hook* to every subsequent round dispatch.

        Hooks fire synchronously in :meth:`map_shards`, in registration
        order, *before* the round's tasks are submitted — deterministic
        relative to the round's work.  A hook must not raise: an exception
        aborts the round before any task is scheduled.
        """
        if not callable(hook):
            raise ConfigurationError("round hook must be callable")
        self._round_hooks.append(hook)

    def remove_round_hook(self, hook: Callable[[RoundEvent], None]) -> None:
        """Unsubscribe *hook*; unknown hooks raise."""
        try:
            self._round_hooks.remove(hook)
        except ValueError:
            raise ConfigurationError("round hook is not registered") from None

    # ------------------------------------------------------------------
    # Sharding machinery
    # ------------------------------------------------------------------
    def shard_slices(self, k: int) -> List[slice]:
        """Contiguous near-equal slices covering ``0..k-1``.

        ``min(n_workers, k)`` shards; the first ``k % shards`` shards take
        one extra walk, exactly like :func:`numpy.array_split`.
        """
        shards = min(self.n_workers, k)
        if shards <= 0:
            return []
        base, extra = divmod(k, shards)
        out: List[slice] = []
        cursor = 0
        for i in range(shards):
            size = base + (1 if i < extra else 0)
            out.append(slice(cursor, cursor + size))
            cursor += size
        return out

    def shard_rngs(self, shards: int, seed: RngLike) -> List[np.random.Generator]:
        """One independent generator per shard, deterministic per seed.

        A single shard consumes the caller's stream directly — the
        one-worker parity hook; multiple shards derive children via
        :func:`repro.rng.spawn`.
        """
        rng = ensure_rng(seed)
        if shards <= 1:
            return [rng]
        return spawn(rng, shards)

    def schedule_worker_crash(self, round_index: int, shard_index: int) -> None:
        """Arrange for one shard of one future round to kill its worker.

        Deterministic chaos for the recovery path: when round
        *round_index* (1-based, matching :attr:`rounds_dispatched` after
        dispatch) submits shard *shard_index* (0-based), the shard's
        function is replaced by :func:`_crash_shard`, which ``os._exit``\\ s
        the hosting process.  The schedule entry is consumed at submit
        time, so the post-respawn retry runs the real function — the
        recovered round must be bit-identical to a crash-free one.
        """
        if round_index < 1:
            raise ConfigurationError(
                f"round_index must be >= 1, got {round_index}"
            )
        if shard_index < 0:
            raise ConfigurationError(
                f"shard_index must be >= 0, got {shard_index}"
            )
        self._scheduled_crashes.add((round_index, shard_index))

    def _respawn_pool(self) -> None:
        """Replace a broken pool with a fresh one over the current slab."""
        assert self._pool is not None
        self._pool.shutdown(wait=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=self._context,
            initializer=_worker_init,
            initargs=(self._shared.spec,),
        )
        self.worker_respawns += 1

    def map_shards(self, fn: Callable, per_shard_args: Sequence[tuple]) -> list:
        """Run ``fn(csr, *args)`` in the pool, one task per shard, in order.

        The generic fan-out the estimator front ends build on: *fn* must
        be a picklable module-level function whose first parameter is the
        worker's attached :class:`CSRGraph`; results come back in
        submission order.

        A worker death mid-round (detected as the executor's broken-pool
        failure) is recovered transparently: shards whose futures already
        settled keep their results, the pool is respawned, and only the
        failed shards are resubmitted — with the *same* pickled arguments,
        so the retry consumes the same RNG stream and writes the same
        rows.  After :attr:`max_shard_retries` respawn cycles the round
        surfaces :class:`~repro.errors.WorkerCrashError`.
        """
        if self._pool is None:
            raise ConfigurationError("engine is closed")
        spec = self._shared.spec
        self._rounds_dispatched += 1
        round_index = self._rounds_dispatched
        if self._round_hooks:
            event = RoundEvent(
                round_index=round_index,
                shards=len(per_shard_args),
                segment=spec.segment,
            )
            for hook in list(self._round_hooks):
                hook(event)
        results: list = [None] * len(per_shard_args)
        pending = list(range(len(per_shard_args)))
        cycles = 0
        while pending:
            submitted = []
            for index in pending:
                task_fn = fn
                if (round_index, index) in self._scheduled_crashes:
                    self._scheduled_crashes.discard((round_index, index))
                    task_fn = _crash_shard
                submitted.append(
                    (
                        index,
                        self._pool.submit(
                            _run_shard, spec, task_fn, per_shard_args[index]
                        ),
                    )
                )
            failed: List[int] = []
            for index, future in submitted:
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    failed.append(index)
            if not failed:
                break
            cycles += 1
            if cycles > self.max_shard_retries:
                raise WorkerCrashError(
                    f"round {round_index}: {len(failed)} shard(s) still failing "
                    f"after {self.max_shard_retries} pool respawn(s)"
                )
            self._respawn_pool()
            self.shard_retries += len(failed)
            pending = failed
        return results

    def _gather_paths(
        self,
        shard_fn: Callable,
        tasks: List[tuple],
        slices: List[slice],
        k: int,
        steps: int,
    ) -> np.ndarray:
        """Fan tasks out and collect their rows via a shared output slab.

        Workers write their contiguous row ranges straight into one
        transient segment (see :func:`_write_rows`), so the merged
        ``(K, steps + 1)`` matrix costs one parent-side copy instead of
        pickling every trajectory through the result pipe.  The segment
        is unlinked before returning — worker failures included.
        """
        rows = steps + 1
        out = shared_memory.SharedMemory(create=True, size=k * rows * 8)
        try:
            written = self.map_shards(
                shard_fn,
                [task + (out.name, s.start, k) for task, s in zip(tasks, slices)],
            )
            assert sum(written) == k, "shards wrote an unexpected row count"
            carpet = np.frombuffer(out.buf, dtype=np.int64, count=k * rows)
            paths = carpet.reshape(k, rows).copy()
            del carpet
        finally:
            out.close()
            out.unlink()
        return paths

    # ------------------------------------------------------------------
    # Walk front ends
    # ------------------------------------------------------------------
    def run_walk_batch(
        self,
        design: TransitionDesign,
        starts,
        steps: int,
        seed: RngLike = None,
        kernel_backend: Optional[str] = None,
    ) -> BatchWalkResult:
        """Sharded :func:`repro.walks.batch.run_walk_batch`.

        Same contract and result type; walk *i* of the merged result
        started at ``starts[i]``.  ``kernel_backend`` names the kernel
        backend each worker executes its shard with (``None`` = the
        workers' process default); it is validated parent-side before
        any task is submitted, and a JIT backend compiles once per
        persistent worker — later rounds reuse the dispatcher.
        """
        if self.closed:
            raise ConfigurationError("engine is closed")
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if not has_batch_kernel(design):
            raise ConfigurationError(
                f"design {design.name!r} has no batch kernel; the sharded "
                "engine fans out the batch kernels only"
            )
        if kernel_backend is not None:
            kernel_backend = require_kernel_backend(kernel_backend).name
        starts = np.asarray(starts, dtype=np.int64)
        # Validate starts once, parent-side, so workers never see bad ids.
        self.graph.positions_of(starts)
        if starts.size == 0:
            return BatchWalkResult(paths=np.empty((0, steps + 1), dtype=np.int64))
        slices = self.shard_slices(starts.size)
        rngs = self.shard_rngs(len(slices), seed)
        return BatchWalkResult(
            paths=self._gather_paths(
                _walk_shard,
                [
                    (design, starts[s], steps, rng, kernel_backend)
                    for s, rng in zip(slices, rngs)
                ],
                slices,
                starts.size,
                steps,
            )
        )

    def run_nbrw_walk_batch(
        self,
        starts,
        steps: int,
        seed: RngLike = None,
        kernel_backend: Optional[str] = None,
    ) -> BatchWalkResult:
        """Sharded :func:`repro.walks.batch.run_nbrw_walk_batch`."""
        if self.closed:
            raise ConfigurationError("engine is closed")
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if kernel_backend is not None:
            kernel_backend = require_kernel_backend(kernel_backend).name
        starts = np.asarray(starts, dtype=np.int64)
        self.graph.positions_of(starts)
        if starts.size == 0:
            return BatchWalkResult(paths=np.empty((0, steps + 1), dtype=np.int64))
        slices = self.shard_slices(starts.size)
        rngs = self.shard_rngs(len(slices), seed)
        return BatchWalkResult(
            paths=self._gather_paths(
                _nbrw_shard,
                [
                    (starts[s], steps, rng, kernel_backend)
                    for s, rng in zip(slices, rngs)
                ],
                slices,
                starts.size,
                steps,
            )
        )

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down, then unlink an engine-owned segment.  Idempotent.

        Order matters: workers must detach before the owner unlinks, or
        their mappings would pin a nameless segment until process exit.
        Borrowed slabs (:meth:`from_shared`) are left untouched — their
        owner retires them.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_slab:
            self._shared.close()

    def __enter__(self) -> "ShardedWalkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"workers={self.n_workers}"
        return f"ShardedWalkEngine(segment={self._shared.spec.segment!r}, {state})"
