"""Raftery–Lewis convergence diagnostic.

The third monitor the paper names (§8 via [11]).  Unlike Geweke (a
converged-yet? test) it is *prescriptive*: given a target quantile ``q`` to
be estimated within ``±r`` with probability ``s``, it fits a two-state
Markov chain to the binary indicator series ``Z_t = 1{X_t ≤ x_q}`` and
returns how much thinning, burn-in, and total sampling the chain needs.

The classic recipe (Raftery & Lewis 1992):

1. find the smallest thinning ``k`` at which the thinned indicator series
   looks first-order Markov rather than second-order (here: the lag-2
   dependence beyond lag-1, measured on transition counts, drops below a
   tolerance);
2. estimate the thinned chain's transition probabilities α = P(0→1),
   β = P(1→0);
3. burn-in  ``M = k · ⌈log(ε·(α+β)/max(α,β)) / log(1-α-β)⌉`` — steps until
   the indicator chain forgets its start to within ε;
4. further draws ``N = k · ⌈ αβ(2-α-β)/(α+β)³ · (z_{(1+s)/2}/r)² ⌉``.

The ratio of ``M + N`` to the i.i.d. requirement ``N_min`` is the usual
dependence-factor diagnostic (values ≫ 1 flag slow mixing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import norm

from repro.errors import ConfigurationError, ConvergenceError


@dataclass(frozen=True)
class RafteryLewisResult:
    """Prescription returned by the diagnostic."""

    thinning: int
    burn_in: int
    further_samples: int
    minimum_iid_samples: int

    @property
    def total(self) -> int:
        """Total chain length required: burn-in plus kept draws."""
        return self.burn_in + self.further_samples

    @property
    def dependence_factor(self) -> float:
        """(M + N) / N_min — how much the correlation inflates the cost."""
        if self.minimum_iid_samples == 0:
            return float("inf")
        return self.total / self.minimum_iid_samples


def _transition_counts(indicator: np.ndarray, k: int) -> np.ndarray:
    thinned = indicator[::k]
    counts = np.zeros((2, 2))
    for a, b in zip(thinned[:-1], thinned[1:]):
        counts[a, b] += 1
    return counts


def _second_order_excess(indicator: np.ndarray, k: int) -> float:
    """How much the thinned series deviates from first-order Markov.

    Compares P(Z_t=1 | Z_{t-1}, Z_{t-2}) across the two values of
    Z_{t-2}; a first-order chain shows no difference.
    """
    thinned = indicator[::k]
    if len(thinned) < 8:
        return 0.0
    counts = np.zeros((2, 2, 2))
    for a, b, c in zip(thinned[:-2], thinned[1:-1], thinned[2:]):
        counts[a, b, c] += 1
    worst = 0.0
    for b in (0, 1):
        rows = counts[:, b, :]
        totals = rows.sum(axis=1)
        if np.all(totals > 0):
            p_given_0 = rows[0, 1] / totals[0]
            p_given_1 = rows[1, 1] / totals[1]
            worst = max(worst, abs(p_given_0 - p_given_1))
    return worst


def raftery_lewis(
    series: Sequence[float],
    quantile: float = 0.5,
    precision: float = 0.05,
    probability: float = 0.95,
    epsilon: float = 0.001,
    max_thinning: int = 32,
) -> RafteryLewisResult:
    """Run the Raftery–Lewis diagnostic on a pilot *series*.

    Parameters
    ----------
    series:
        Pilot chain of the monitored scalar (e.g. degrees along a walk).
    quantile / precision / probability:
        Estimate the *quantile*-th quantile to within ±*precision*
        (probability units) with coverage *probability*.
    epsilon:
        Burn-in tolerance on the indicator chain's start bias.
    max_thinning:
        Upper bound on the thinning search.

    Raises
    ------
    ConvergenceError
        If the pilot is too short or the indicator is degenerate (the
        chain never/always falls below the quantile — no information).
    """
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
    if not 0.0 < precision < 0.5:
        raise ConfigurationError(f"precision must be in (0, 0.5), got {precision}")
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    values = np.asarray(series, dtype=float)
    if len(values) < 50:
        raise ConvergenceError(
            f"pilot series too short for Raftery-Lewis: {len(values)} < 50"
        )
    threshold = float(np.quantile(values, quantile))
    indicator = (values <= threshold).astype(int)
    if indicator.min() == indicator.max():
        raise ConvergenceError("degenerate indicator series (constant)")

    z_score = float(norm.ppf(0.5 * (1.0 + probability)))
    minimum_iid = int(np.ceil(quantile * (1 - quantile) * (z_score / precision) ** 2))

    thinning = 1
    while thinning < max_thinning and _second_order_excess(indicator, thinning) > 0.1:
        thinning += 1

    counts = _transition_counts(indicator, thinning)
    row0, row1 = counts[0].sum(), counts[1].sum()
    if row0 == 0 or row1 == 0:
        raise ConvergenceError("thinned chain never leaves one state")
    alpha = counts[0, 1] / row0  # P(0 -> 1)
    beta = counts[1, 0] / row1  # P(1 -> 0)
    alpha = min(max(alpha, 1e-9), 1 - 1e-9)
    beta = min(max(beta, 1e-9), 1 - 1e-9)
    rate = alpha + beta
    lam = abs(1.0 - rate)  # second eigenvalue of the 2-state chain
    if lam >= 1.0 - 1e-12:
        raise ConvergenceError("indicator chain does not mix")
    burn_in_steps = int(
        np.ceil(np.log(epsilon * rate / max(alpha, beta)) / np.log(lam))
    )
    burn_in = thinning * max(0, burn_in_steps)
    further = thinning * int(
        np.ceil(alpha * beta * (2.0 - rate) / rate**3 * (z_score / precision) ** 2)
    )
    return RafteryLewisResult(
        thinning=thinning,
        burn_in=burn_in,
        further_samples=further,
        minimum_iid_samples=minimum_iid,
    )
