"""Frontier sampling (related work [33], Ribeiro & Towsley, SIGCOMM 2010).

An m-dimensional random walk: keep *m* walkers alive at once; at each step
pick the walker to advance with probability proportional to its current
node's degree, move it to a uniform neighbor, and record the traversed
edge.  The sampled *edges* are asymptotically uniform over the edge set,
so edge endpoints are degree-proportional node samples — the same target
law as SRW, but with far better behaviour on disconnected or loosely
connected graphs (walkers cover multiple regions simultaneously).

The paper cites frontier sampling as orthogonal related work (§8); it is
implemented here as an additional degree-proportional baseline that plugs
into the standard harness.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node


class FrontierSampler:
    """m-dimensional frontier sampler with degree-proportional output.

    Parameters
    ----------
    dimension:
        Number of simultaneous walkers *m* (paper [33] recommends
        tens; the default keeps quick experiments cheap).
    burn_in_steps:
        Edge traversals discarded before samples are recorded.
    """

    name = "frontier"

    def __init__(self, dimension: int = 8, burn_in_steps: int = 50) -> None:
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        if burn_in_steps < 0:
            raise ConfigurationError(
                f"burn_in_steps must be >= 0, got {burn_in_steps}"
            )
        self.dimension = dimension
        self.burn_in_steps = burn_in_steps

    def _seed_walkers(
        self, api: SocialNetworkAPI, start: Node, rng
    ) -> List[Node]:
        """Spread the walkers over the start's vicinity via short walks."""
        walkers = [start]
        current = start
        while len(walkers) < self.dimension:
            neighbors = api.neighbors(current)
            current = neighbors[int(rng.integers(0, len(neighbors)))]
            walkers.append(current)
        return walkers

    def _advance(self, api: SocialNetworkAPI, walkers: List[Node], rng) -> Node:
        """One frontier step; returns the node the chosen walker lands on."""
        degrees = [api.degree(node) for node in walkers]
        total = float(sum(degrees))
        draw = rng.random() * total
        acc = 0.0
        index = len(walkers) - 1
        for i, degree in enumerate(degrees):
            acc += degree
            if draw < acc:
                index = i
                break
        neighbors = api.neighbors(walkers[index])
        destination = neighbors[int(rng.integers(0, len(neighbors)))]
        walkers[index] = destination
        return destination

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* degree-proportional node samples."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"{self.name}-{self.dimension}")
        try:
            walkers = self._seed_walkers(api, start, rng)
            for _ in range(self.burn_in_steps):
                self._advance(api, walkers, rng)
                batch.walk_steps += 1
            while len(batch.nodes) < count:
                node = self._advance(api, walkers, rng)
                batch.walk_steps += 1
                batch.nodes.append(node)
                batch.target_weights.append(float(api.degree(node)))
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch

    def sample_from_seeds(
        self,
        api: SocialNetworkAPI,
        seeds: Sequence[Node],
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Like :meth:`sample` but with explicit walker seed nodes."""
        if len(seeds) != self.dimension:
            raise ConfigurationError(
                f"need {self.dimension} seeds, got {len(seeds)}"
            )
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"{self.name}-{self.dimension}")
        walkers = list(seeds)
        try:
            for _ in range(self.burn_in_steps):
                self._advance(api, walkers, rng)
                batch.walk_steps += 1
            while len(batch.nodes) < count:
                node = self._advance(api, walkers, rng)
                batch.walk_steps += 1
                batch.nodes.append(node)
                batch.target_weights.append(float(api.degree(node)))
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch
