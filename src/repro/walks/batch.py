"""Vectorized batch-walk engine: K independent walks per array operation.

The scalar walker (:mod:`repro.walks.walker`) advances one walk at a time
through Python-level neighbor tuples — the right shape for the charged
:class:`~repro.osn.api.SocialNetworkAPI`, where each step's query cost must
be accounted node by node, but interpreter-bound when the graph is free and
in memory.  This module advances **K walks per step** over a frozen
:class:`~repro.graphs.csr.CSRGraph`: one bounded-integer draw, one gather,
and (for MHRW) one masked uniform draw move every walk simultaneously.

**Seed-stable parity.**  Each kernel consumes the :mod:`repro.rng` stream
*exactly* as its scalar twin does per step — the same draws, in the same
order, conditioned the same way (MHRW's acceptance uniform only when the
proposal has higher degree, LazyWalk's inner draws only when the laziness
coin says move, MaxDegreeWalk's neighbor index only when the virtual-degree
coin says move) — so with the same seed and ``k = 1`` the batch engine
reproduces the scalar trajectory node for node.  The parity tests in
``tests/walks/test_batch.py`` and ``tests/walks/test_batch_parity.py`` pin
this property, and ``tests/walks/test_batch_rng_regression.py`` pins the
exact draw order against committed golden trajectories; together they are
what makes the batch engine a drop-in replacement rather than a
statistical cousin.

**When to use which.**  Scalar ``run_walk`` + ``SocialNetworkAPI`` for
anything that models query cost; ``run_walk_batch`` over a compiled
``CSRGraph`` for throughput work — calibration sweeps, variance studies,
benchmarks, and the batch WALK-ESTIMATE front ends
(:func:`repro.core.walk_estimate.walk_estimate_batch`,
:func:`repro.core.long_run_we.long_run_walk_estimate_batch`).

Supported designs: :class:`~repro.walks.transitions.SimpleRandomWalk`,
:class:`~repro.walks.transitions.MetropolisHastingsWalk`,
:class:`~repro.walks.transitions.MaxDegreeWalk`,
:class:`~repro.walks.transitions.LazyWalk` around any supported inner
design, and the non-backtracking walk (:func:`run_nbrw_walk_batch`).
Designs whose step law cannot be expressed as a fixed per-step array
recipe (e.g. the restriction-aware
:class:`~repro.walks.transitions.BidirectionalWalk`, whose mutual-edge
check is a per-candidate query) stay on the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.walks.kernels import BackendLike, resolve_backend
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    TransitionDesign,
)

GraphLike = Union[Graph, CSRGraph]


@dataclass(frozen=True)
class BatchWalkResult:
    """Trajectories of K forward walks, as one ``(K, steps + 1)`` array.

    Attributes
    ----------
    paths:
        Original node ids; ``paths[i, 0]`` is walk *i*'s start and
        ``paths[i, t]`` its position after step ``t``.
    """

    paths: np.ndarray

    @property
    def k(self) -> int:
        """Number of walks in the batch."""
        return self.paths.shape[0]

    @property
    def steps(self) -> int:
        """Number of transitions each walk took."""
        return self.paths.shape[1] - 1

    @property
    def starts(self) -> np.ndarray:
        """Starting node of every walk, shape ``(K,)``."""
        return self.paths[:, 0]

    @property
    def ends(self) -> np.ndarray:
        """Final node of every walk — the batch's sample candidates."""
        return self.paths[:, -1]

    def positions_at(self, t: int) -> np.ndarray:
        """Node occupied by every walk after step *t* (0 = start)."""
        return self.paths[:, t]


def as_csr(graph: GraphLike) -> CSRGraph:
    """Coerce to :class:`CSRGraph`, compiling a mutable graph on the fly.

    Call sites that walk repeatedly should compile once and reuse — the
    one-off compile here is a convenience, not a free operation.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, Graph):
        return graph.compile()
    raise ConfigurationError(
        f"batch walking needs a Graph or CSRGraph, got {type(graph).__name__}"
    )


def _start_positions(csr: CSRGraph, starts) -> np.ndarray:
    """Validate and map an array of starting node ids to CSR positions."""
    positions = csr.positions_of(starts)
    if positions.ndim != 1:
        raise ConfigurationError(
            f"starts must be 1-d, got shape {tuple(np.shape(starts))}"
        )
    return positions


def _require_alive(degrees: np.ndarray, current: np.ndarray, csr: CSRGraph) -> None:
    # ``all()`` short-circuits in C without materializing a comparison
    # array — this runs every step of every batch, so it is on the
    # narrow-batch critical path.
    if not degrees.all():
        stuck = int(csr.ids_of(current[degrees == 0][:1])[0])
        raise GraphError(f"random walk stuck: node {stuck} has no neighbors")


def _uniform_indices(rng: np.random.Generator, high: np.ndarray) -> np.ndarray:
    """``rng.integers(0, high)`` with a scalar fast path for one walk.

    NumPy's array-bounds path costs ~5x its scalar path in per-call
    overhead, which is what made narrow batches slower than the scalar
    engine.  Both paths run the same per-element Lemire rejection, so
    they consume identical generator bits — the K=1 parity and golden
    RNG-stream suites pin this equivalence.
    """
    if high.size == 1:
        return np.array([rng.integers(0, high[0])], dtype=np.int64)
    return rng.integers(0, high)


def _srw_step(
    csr: CSRGraph,
    design: TransitionDesign,
    current: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One vectorized SRW step: uniform neighbor per walk."""
    deg = csr.degrees[current]
    _require_alive(deg, current, csr)
    idx = _uniform_indices(rng, deg)
    return csr.indices[csr.indptr[current] + idx]


def _mhrw_step(
    csr: CSRGraph,
    design: TransitionDesign,
    current: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One vectorized MHRW step: uniform proposal, degree-ratio acceptance.

    The uniform acceptance draw happens only for walks whose proposal has
    strictly higher degree — the same conditional consumption as the
    scalar design, which is what keeps k=1 seed parity exact.
    """
    du = csr.degrees[current]
    _require_alive(du, current, csr)
    idx = _uniform_indices(rng, du)
    proposal = csr.indices[csr.indptr[current] + idx]
    dv = csr.degrees[proposal]
    contested = dv > du
    if not contested.any():
        return proposal
    accept = np.ones(current.size, dtype=bool)
    coins = rng.random(int(contested.sum()))
    accept[contested] = coins < du[contested] / dv[contested]
    return np.where(accept, proposal, current)


def _lazy_step(
    csr: CSRGraph,
    design: LazyWalk,
    current: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One vectorized lazy step: laziness coin, inner kernel for the movers.

    The inner kernel runs only on the sub-batch whose coin said "move", so
    per walk the stream sees one uniform plus — conditionally — the inner
    design's draws, exactly the scalar ``LazyWalk.step`` order.  Walks that
    stay put this step never touch their neighbor row, so (like the scalar
    twin) a lazily-parked walk on an isolated node only fails when it
    actually tries to move.
    """
    inner_kernel = _KERNELS[type(design.inner)]
    coins = rng.random(current.size)
    moving = coins >= design.laziness
    if moving.all():
        return inner_kernel(csr, design.inner, current, rng)
    nxt = current.copy()
    if moving.any():
        nxt[moving] = inner_kernel(csr, design.inner, current[moving], rng)
    return nxt


def check_max_degree(
    csr: CSRGraph,
    design: MaxDegreeWalk,
    positions: np.ndarray,
    degrees: np.ndarray,
) -> None:
    """Raise if any position's degree exceeds the design's declared bound.

    The vectorized twin of ``MaxDegreeWalk._check_degree`` — one message,
    shared by the step kernel and the batch backward estimator.
    """
    over = degrees > design.max_degree
    if np.any(over):
        raise ConfigurationError(
            f"node {int(csr.ids_of(positions[over][:1])[0])} has degree "
            f"{int(degrees[over][0])} > declared max_degree {design.max_degree}"
        )


def _maxdeg_step(
    csr: CSRGraph,
    design: MaxDegreeWalk,
    current: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One vectorized max-degree step: virtual-degree coin, masked move.

    Every node behaves as if padded with self-loops up to ``max_degree``:
    the walk moves with probability ``d(u)/d_max`` (one uniform per walk)
    and draws the uniform neighbor index only for the movers — the scalar
    design's exact conditional stream.
    """
    deg = csr.degrees[current]
    _require_alive(deg, current, csr)
    check_max_degree(csr, design, current, deg)
    coins = rng.random(current.size)
    moving = coins < design.move_probability(deg)
    if moving.all():
        idx = _uniform_indices(rng, deg)
        return csr.indices[csr.indptr[current] + idx]
    nxt = current.copy()
    if moving.any():
        idx = _uniform_indices(rng, deg[moving])
        nxt[moving] = csr.indices[csr.indptr[current[moving]] + idx]
    return nxt


_KERNELS = {
    SimpleRandomWalk: _srw_step,
    MetropolisHastingsWalk: _mhrw_step,
    LazyWalk: _lazy_step,
    MaxDegreeWalk: _maxdeg_step,
}


def _resolve_kernel(design: TransitionDesign):
    """The step kernel for *design*, or ``None`` if it has no batch form.

    A :class:`LazyWalk` is only batchable when its inner design is — the
    lazy kernel delegates the moving sub-batch to the inner kernel, however
    deeply the wrappers nest.
    """
    kernel = _KERNELS.get(type(design))
    if kernel is None:
        return None
    if isinstance(design, LazyWalk) and _resolve_kernel(design.inner) is None:
        return None
    return kernel


def has_batch_kernel(design: TransitionDesign) -> bool:
    """True if *design* has a vectorized step kernel."""
    return _resolve_kernel(design) is not None


def run_walk_batch(
    graph: GraphLike,
    design: TransitionDesign,
    starts,
    steps: int,
    seed: RngLike = None,
    backend: BackendLike = None,
) -> BatchWalkResult:
    """Run ``len(starts)`` independent *steps*-step walks simultaneously.

    Parameters
    ----------
    graph:
        A :class:`CSRGraph` (preferred) or a :class:`Graph`, compiled on
        the fly.
    design:
        A design with a batch kernel (SRW, MHRW, MaxDegreeWalk, or a
        LazyWalk over any of these; see :func:`has_batch_kernel`).
    starts:
        Array-like of starting node ids, one per walk; repeat a node to
        launch many walks from it (``np.full(k, start)``).
    steps:
        Transitions per walk; 0 returns the starts unchanged.
    backend:
        Kernel backend executing the trajectory loop — a name registered
        in :mod:`repro.walks.kernels` (``numpy``, ``native``,
        ``python``), a backend object, or ``None`` for the process
        default.  Every backend consumes the seed stream identically, so
        this changes throughput, never trajectories.

    Returns
    -------
    BatchWalkResult
        All K trajectories; ``result.ends`` are the sample candidates.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if _resolve_kernel(design) is None:
        raise ConfigurationError(
            f"design {design.name!r} has no batch kernel; use the scalar "
            "walker (run_walk) or one of: "
            + ", ".join(sorted(cls.name for cls in _KERNELS))
        )
    executor = resolve_backend(backend)
    csr = as_csr(graph)
    rng = ensure_rng(seed)
    current = _start_positions(csr, starts)
    paths = executor.run_walks(csr, design, current, steps, rng)
    if not csr.contiguous:
        paths = csr.node_ids[paths]
    return BatchWalkResult(paths=paths)


def _rows_searchsorted(
    csr: CSRGraph, rows: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Per-row ``searchsorted``: position of ``values[i]`` in row ``rows[i]``.

    A vectorized binary search over the ragged CSR rows — O(log d_max)
    array passes instead of a Python loop over walks.
    """
    lo = np.zeros(rows.size, dtype=np.int64)
    hi = csr.degrees[rows].copy()
    start = csr.indptr[rows]
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi) >> 1
        less = np.zeros(rows.size, dtype=bool)
        less[active] = csr.indices[start[active] + mid[active]] < values[active]
        lo = np.where(active & less, mid + 1, lo)
        hi = np.where(active & ~less, mid, hi)


def run_nbrw_walk_batch(
    graph: GraphLike,
    starts,
    steps: int,
    seed: RngLike = None,
    backend: BackendLike = None,
) -> BatchWalkResult:
    """K simultaneous non-backtracking walks (vectorized
    :func:`repro.walks.nonbacktracking.run_nbrw_walk`).

    Per step each walk draws uniformly among its current node's neighbors
    minus the one it arrived from (degree-1 nodes may backtrack — the only
    legal move).  The excluded neighbor's slot is skipped by index
    arithmetic over the sorted row, so the draw consumes exactly one
    bounded integer per walk, matching the scalar walker's stream.
    ``backend`` selects the trajectory executor as in
    :func:`run_walk_batch`.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    executor = resolve_backend(backend)
    csr = as_csr(graph)
    rng = ensure_rng(seed)
    current = _start_positions(csr, starts)
    paths = executor.run_nbrw(csr, current, steps, rng)
    if not csr.contiguous:
        paths = csr.node_ids[paths]
    return BatchWalkResult(paths=paths)


def target_weights_batch(
    graph: GraphLike, design: TransitionDesign, nodes
) -> np.ndarray:
    """Unnormalized stationary weights ``q̃(v)`` for an array of nodes.

    Vectorized counterpart of ``design.target_weight`` for the designs the
    batch engine supports: degree for SRW, 1 for the uniform-target designs
    (MHRW, MaxDegreeWalk); a LazyWalk inherits its inner design's target —
    laziness rescales the transition law without moving the stationary
    distribution.
    """
    if isinstance(design, LazyWalk):
        return target_weights_batch(graph, design.inner, nodes)
    csr = as_csr(graph)
    positions = csr.positions_of(nodes)
    if isinstance(design, SimpleRandomWalk):
        return csr.degrees[positions].astype(np.float64)
    if design.uniform_target():
        return np.ones(positions.size, dtype=np.float64)
    raise ConfigurationError(f"design {design.name!r} has no vectorized target weight")


def walk_attribute_matrix(
    graph: GraphLike, result: BatchWalkResult, attribute: str | None = None
) -> np.ndarray:
    """Per-step attribute values for every walk, shape ``(K, steps + 1)``.

    The batch twin of
    :func:`repro.walks.walker.walk_attribute_series`; ``attribute=None``
    reads degrees.  One gather replaces K × (steps + 1) Python lookups.
    """
    csr = as_csr(graph)
    positions = csr.positions_of(result.paths.ravel())
    if attribute is None:
        values = csr.degrees.astype(np.float64)[positions]
    else:
        values = csr.attribute_array(attribute)[positions]
    return values.reshape(result.paths.shape)
