"""Traditional random-walk samplers: the baselines WALK-ESTIMATE replaces.

Two schemes from the paper (§6.1, Figure 4):

* :class:`BurnInSampler` — "many short runs": per sample, walk from the
  start node until the Geweke monitor declares convergence, take the final
  node, repeat.  Produces (approximately) i.i.d. samples; this is the
  baseline the paper compares against.
* :class:`LongRunSampler` — "one long run": burn in once, then collect
  every node the continuing walk visits.  Cheap per sample but correlated;
  pair with :func:`repro.walks.autocorr.effective_sample_size`.

Both return :class:`SampleBatch`, which records the nodes, their target
weights (for importance-weighted estimation), and the query cost spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.convergence import GewekeMonitor
from repro.walks.transitions import Node, TransitionDesign
from repro.walks.walker import step_once


@dataclass
class SampleBatch:
    """Nodes sampled by some scheme plus the bookkeeping estimators need.

    Attributes
    ----------
    nodes:
        The sampled node ids (with multiplicity).
    target_weights:
        Unnormalized stationary weight of each sampled node under the
        design's target distribution — 1.0 for uniform targets (MHRW),
        degree for SRW.  Estimators divide by these to de-bias.
    query_cost:
        Unique-node queries spent producing this batch.
    walk_steps:
        Total forward transitions taken (the paper's Figure 5 y-axis).
    sampler:
        Human-readable producer name for reports.
    """

    nodes: List[Node] = field(default_factory=list)
    target_weights: List[float] = field(default_factory=list)
    query_cost: int = 0
    walk_steps: int = 0
    sampler: str = ""

    def __len__(self) -> int:
        return len(self.nodes)

    def extend(self, other: "SampleBatch") -> None:
        """Merge another batch produced under the same scheme."""
        self.nodes.extend(other.nodes)
        self.target_weights.extend(other.target_weights)
        self.query_cost = max(self.query_cost, other.query_cost)
        self.walk_steps += other.walk_steps


class BurnInSampler:
    """Many-short-runs sampler with a Geweke-monitored burn-in.

    Parameters
    ----------
    design:
        The transit design (SRW, MHRW, ...).
    geweke_threshold:
        Z threshold declaring convergence (paper default 0.1).
    check_every:
        Steps between monitor evaluations.
    min_steps / max_steps:
        Walk-length floor and safety ceiling per sample.
    """

    def __init__(
        self,
        design: TransitionDesign,
        geweke_threshold: float = 0.1,
        check_every: int = 10,
        min_steps: int = 30,
        max_steps: int = 5000,
    ) -> None:
        if check_every < 1:
            raise ConfigurationError(f"check_every must be >= 1, got {check_every}")
        if min_steps < 1 or max_steps < min_steps:
            raise ConfigurationError(
                f"need 1 <= min_steps <= max_steps, got {min_steps}, {max_steps}"
            )
        self.design = design
        self.geweke_threshold = geweke_threshold
        self.check_every = check_every
        self.min_steps = min_steps
        self.max_steps = max_steps

    def sample_once(
        self, api: SocialNetworkAPI, start: Node, seed: RngLike = None
    ) -> tuple[Node, int]:
        """Walk from *start* until converged; return (sample, steps taken)."""
        rng = ensure_rng(seed)
        monitor = GewekeMonitor(threshold=self.geweke_threshold)
        current = start
        monitor.observe(api.degree(current))
        steps = 0
        while steps < self.max_steps:
            current = step_once(api, self.design, current, rng)
            monitor.observe(api.degree(current))
            steps += 1
            ready = steps >= self.min_steps and steps % self.check_every == 0
            if ready and monitor.is_converged():
                break
        return current, steps

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* samples via independent monitored walks.

        Stops early (with the samples gathered so far) if the API budget is
        exhausted — partial results are still usable for error-vs-cost
        curves.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"burnin-{self.design.name}")
        for _ in range(count):
            try:
                node, steps = self.sample_once(api, start, seed=rng)
            except QueryBudgetExceededError:
                break
            batch.nodes.append(node)
            batch.target_weights.append(self.design.target_weight(api, node))
            batch.walk_steps += steps
            batch.query_cost = api.query_cost
        batch.query_cost = api.query_cost
        return batch


class LongRunSampler:
    """One-long-run sampler: burn in once, then harvest every position.

    Parameters
    ----------
    design:
        The transit design.
    burn_in_steps:
        Fixed burn-in prefix length (use :class:`BurnInSampler`-style
        monitoring upstream to choose it; a fixed number keeps the scheme's
        cost accounting transparent).
    thin:
        Keep every ``thin``-th node after burn-in (1 = keep all).
    """

    def __init__(
        self, design: TransitionDesign, burn_in_steps: int = 100, thin: int = 1
    ) -> None:
        if burn_in_steps < 0:
            raise ConfigurationError(f"burn_in_steps must be >= 0, got {burn_in_steps}")
        if thin < 1:
            raise ConfigurationError(f"thin must be >= 1, got {thin}")
        self.design = design
        self.burn_in_steps = burn_in_steps
        self.thin = thin

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* (correlated) samples from one continuing walk."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=f"longrun-{self.design.name}")
        current = start
        try:
            for _ in range(self.burn_in_steps):
                current = step_once(api, self.design, current, rng)
                batch.walk_steps += 1
            collected = 0
            since_last = 0
            while collected < count:
                current = step_once(api, self.design, current, rng)
                batch.walk_steps += 1
                since_last += 1
                if since_last >= self.thin:
                    batch.nodes.append(current)
                    batch.target_weights.append(
                        self.design.target_weight(api, current)
                    )
                    collected += 1
                    since_last = 0
        except QueryBudgetExceededError:
            pass
        batch.query_cost = api.query_cost
        return batch
