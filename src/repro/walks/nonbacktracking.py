"""Non-backtracking random walk (related work [24], Lee/Xu/Eun 2012).

A non-backtracking random walk (NBRW) moves uniformly among the current
node's neighbors *excluding the one it just came from* (unless it is stuck
at a degree-1 node).  The chain lives on directed edges; its stationary
distribution there is uniform, so the *node* marginal remains proportional
to degree — identical to SRW's target — while mixing strictly faster on
most graphs (backtracking wastes steps).

The walk is stateful (it remembers its previous node), so it does not fit
the memoryless :class:`~repro.walks.transitions.TransitionDesign` protocol;
it ships as a dedicated walker plus a burn-in sampler compatible with the
experiment harness.  WALK-ESTIMATE does not wrap NBRW (its backward
estimator assumes a first-order chain over nodes), which is precisely the
kind of input-design boundary §1.2's "any random walk sampler" glosses
over — worth having in the repo as a counterexample.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, GraphError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.convergence import GewekeMonitor
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import NeighborView, Node
from repro.walks.walker import WalkResult


def nbrw_step(
    view: NeighborView,
    current: Node,
    previous: Node | None,
    rng: np.random.Generator,
) -> Node:
    """One NBRW transition: uniform over neighbors minus *previous*.

    Degree-1 nodes are allowed to backtrack (the only legal move), which is
    the standard convention keeping the chain irreducible.
    """
    neighbors = view.neighbors(current)
    if not neighbors:
        raise GraphError(f"random walk stuck: node {current} has no neighbors")
    if previous is not None and len(neighbors) > 1:
        choices = tuple(n for n in neighbors if n != previous)
    else:
        choices = neighbors
    return choices[int(rng.integers(0, len(choices)))]


def run_nbrw_walk(
    view: NeighborView, start: Node, steps: int, seed: RngLike = None
) -> WalkResult:
    """Run a *steps*-step non-backtracking walk from *start*."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    rng = ensure_rng(seed)
    path = [start]
    previous: Node | None = None
    current = start
    for _ in range(steps):
        nxt = nbrw_step(view, current, previous, rng)
        previous, current = current, nxt
        path.append(current)
    return WalkResult(path=tuple(path))


class NonBacktrackingSampler:
    """Geweke-monitored burn-in sampler over the NBRW.

    Target weights are node degrees (NBRW's node marginal is
    degree-proportional), so batches feed the same importance-weighted
    estimators as SRW's.
    """

    name = "nbrw"

    def __init__(
        self,
        geweke_threshold: float = 0.1,
        check_every: int = 10,
        min_steps: int = 30,
        max_steps: int = 5000,
    ) -> None:
        if check_every < 1:
            raise ConfigurationError(f"check_every must be >= 1, got {check_every}")
        if min_steps < 1 or max_steps < min_steps:
            raise ConfigurationError(
                f"need 1 <= min_steps <= max_steps, got {min_steps}, {max_steps}"
            )
        self.geweke_threshold = geweke_threshold
        self.check_every = check_every
        self.min_steps = min_steps
        self.max_steps = max_steps

    def sample_once(
        self, api: SocialNetworkAPI, start: Node, seed: RngLike = None
    ) -> tuple[Node, int]:
        """Walk until the Geweke monitor fires; return (sample, steps)."""
        rng = ensure_rng(seed)
        monitor = GewekeMonitor(threshold=self.geweke_threshold)
        previous: Node | None = None
        current = start
        monitor.observe(api.degree(current))
        steps = 0
        while steps < self.max_steps:
            nxt = nbrw_step(api, current, previous, rng)
            previous, current = current, nxt
            monitor.observe(api.degree(current))
            steps += 1
            ready = steps >= self.min_steps and steps % self.check_every == 0
            if ready and monitor.is_converged():
                break
        return current, steps

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* samples via independent monitored NBRW walks."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        batch = SampleBatch(sampler=self.name)
        for _ in range(count):
            try:
                node, steps = self.sample_once(api, start, seed=rng)
            except QueryBudgetExceededError:
                break
            batch.nodes.append(node)
            batch.target_weights.append(float(api.degree(node)))
            batch.walk_steps += steps
            batch.query_cost = api.query_cost
        batch.query_cost = api.query_cost
        return batch
