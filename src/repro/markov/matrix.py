"""Dense transition matrices for a (graph, transition design) pair.

Node ids must be ``0..n-1`` (use :meth:`repro.graphs.Graph.relabeled`);
row/column *i* of the matrix then corresponds to node *i*, which keeps the
mapping between linear algebra and graph language trivial.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.walks.transitions import TransitionDesign

_ROW_SUM_TOLERANCE = 1e-9


class TransitionMatrix:
    """Row-stochastic matrix ``T`` with ``T[u, v] = Pr{next = v | now = u}``.

    Parameters
    ----------
    graph:
        Graph with contiguous node ids ``0..n-1``.
    design:
        The transit design whose matrix to build.

    Raises
    ------
    GraphError
        If node ids are not contiguous or any row fails to sum to 1.
    """

    def __init__(self, graph: Graph, design: TransitionDesign) -> None:
        nodes = graph.nodes()
        n = len(nodes)
        if n == 0:
            raise GraphError("cannot build a transition matrix for an empty graph")
        if nodes != tuple(range(n)):
            raise GraphError(
                "node ids must be 0..n-1; call graph.relabeled() first"
            )
        matrix = np.zeros((n, n), dtype=float)
        for u in range(n):
            row = design.transition_row(graph, u)
            for v, p in row.items():
                matrix[u, v] = p
            row_sum = matrix[u].sum()
            if abs(row_sum - 1.0) > _ROW_SUM_TOLERANCE:
                raise GraphError(
                    f"transition row of node {u} sums to {row_sum!r}, expected 1"
                )
        self.graph = graph
        self.design = design
        self.matrix = matrix
        self._power_cache: Dict[int, np.ndarray] = {1: matrix}

    @property
    def size(self) -> int:
        """Number of states (nodes)."""
        return self.matrix.shape[0]

    def power(self, t: int) -> np.ndarray:
        """``T**t`` with memoized exponentiation-by-squaring.

        ``t = 0`` returns the identity.  Powers are cached because the
        IDEAL-WALK sweeps evaluate many consecutive ``t`` on one matrix.
        """
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return np.eye(self.size)
        cached = self._power_cache.get(t)
        if cached is not None:
            return cached
        half = self.power(t // 2)
        result = half @ half
        if t % 2 == 1:
            result = result @ self.matrix
        self._power_cache[t] = result
        return result

    def step_distribution(self, start: int, t: int) -> np.ndarray:
        """Exact ``p_t``: distribution of the walk position after *t* steps.

        This is the oracle version of the quantity WALK-ESTIMATE estimates
        online (the probability ``p_t(v)`` of paper §1.2).
        """
        if not 0 <= start < self.size:
            raise GraphError(f"start node {start} out of range 0..{self.size - 1}")
        initial = np.zeros(self.size)
        initial[start] = 1.0
        if t == 0:
            return initial
        return initial @ self.power(t)

    def evolve(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Advance an arbitrary start distribution *steps* steps."""
        result = np.asarray(distribution, dtype=float)
        if result.shape != (self.size,):
            raise ValueError(
                f"distribution shape {result.shape} != ({self.size},)"
            )
        for _ in range(steps):
            result = result @ self.matrix
        return result

    def stationary_distribution(self) -> np.ndarray:
        """Stationary π solving πT = π, Σπ = 1.

        Computed from the design's target weights when available (exact and
        cheap), falling back to the dominant left eigenvector otherwise.
        """
        weights = np.array(
            [self.design.target_weight(self.graph, v) for v in range(self.size)],
            dtype=float,
        )
        total = weights.sum()
        if total > 0:
            candidate = weights / total
            # Trust, but verify: the design's claimed target must be invariant.
            if np.allclose(candidate @ self.matrix, candidate, atol=1e-8):
                return candidate
        return self._eigen_stationary()

    def _eigen_stationary(self) -> np.ndarray:
        eigenvalues, eigenvectors = np.linalg.eig(self.matrix.T)
        index = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vector = np.real(eigenvectors[:, index])
        vector = np.abs(vector)
        total = vector.sum()
        if total <= 0:
            raise GraphError("failed to extract a stationary distribution")
        return vector / total

    def second_largest_eigenvalue_modulus(self) -> float:
        """|λ₂|: modulus of the second-largest eigenvalue of T."""
        eigenvalues = np.linalg.eigvals(self.matrix)
        moduli = np.sort(np.abs(eigenvalues))[::-1]
        if len(moduli) < 2:
            return 0.0
        return float(moduli[1])

    def spectral_gap(self) -> float:
        """``λ = 1 - |λ₂|`` (paper §2.2.3); controls mixing speed."""
        return 1.0 - self.second_largest_eigenvalue_modulus()
