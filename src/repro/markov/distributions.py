"""Probability-vector utilities and distances between distributions.

The paper measures sample bias as a distance between the achieved sampling
distribution and the target (§2.4): ℓ∞ for theory, and ℓ∞ + KL divergence
for the exact-bias experiment (Table 1).  Total variation is included
because much of the mixing-time literature the paper cites states bounds in
TV terms.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.markov.matrix import TransitionMatrix

_EPSILON = 1e-300


def _as_distribution(vector: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be a 1-D vector, got shape {array.shape}")
    if np.any(array < -1e-12):
        raise ValueError(f"{name} has negative entries")
    total = array.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"{name} sums to {total!r}, expected 1")
    return np.clip(array, 0.0, None)


def step_distribution(matrix: TransitionMatrix, start: int, t: int) -> np.ndarray:
    """Exact ``p_t`` for a walk from *start* (delegates to the matrix)."""
    return matrix.step_distribution(start, t)


def step_distributions(
    matrix: TransitionMatrix, start: int, max_t: int
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(t, p_t)`` for ``t = 0..max_t`` with one matrix-vector product per step."""
    if max_t < 0:
        raise ValueError(f"max_t must be >= 0, got {max_t}")
    current = np.zeros(matrix.size)
    current[start] = 1.0
    yield 0, current.copy()
    for t in range(1, max_t + 1):
        current = current @ matrix.matrix
        yield t, current.copy()


def l_infinity_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``max_v |p(v) - q(v)|`` — the paper's variation-distance measure."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(np.max(np.abs(p - q)))


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``(1/2) Σ_v |p(v) - q(v)|``."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.sum(np.abs(p - q)))


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``KL(p || q) = Σ_v p(v) log(p(v)/q(v))`` in nats.

    Zero-mass states of *p* contribute nothing; *q* is floored at a tiny
    epsilon so empirical distributions with unvisited nodes yield a large
    finite divergence instead of ``inf`` (matching how Table 1's numbers
    can be computed from finite sampling runs).
    """
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    support = p > 0
    return float(
        np.sum(
            p[support]
            * (np.log(p[support]) - np.log(np.maximum(q[support], _EPSILON)))
        )
    )
