"""Dense Markov-chain machinery for oracle computations.

Everything here assumes full knowledge of the graph — the opposite of the
sampling setting — and exists to (a) power IDEAL-WALK and the Theorem 1 /
case-study analysis, (b) compute exact sampling distributions and burn-in
lengths for the bias experiments (Figure 12, Table 1), and (c) cross-check
the online estimators in tests.
"""

from repro.markov.matrix import TransitionMatrix
from repro.markov.distributions import (
    kl_divergence,
    l_infinity_distance,
    step_distribution,
    step_distributions,
    total_variation_distance,
)
from repro.markov.mixing import (
    burn_in_length,
    relative_pointwise_distance,
    spectral_gap,
)
from repro.markov.hitting import (
    expected_hitting_times,
    expected_return_time,
    mean_hitting_time_to_ball,
)

__all__ = [
    "TransitionMatrix",
    "step_distribution",
    "step_distributions",
    "l_infinity_distance",
    "total_variation_distance",
    "kl_divergence",
    "relative_pointwise_distance",
    "burn_in_length",
    "spectral_gap",
    "expected_hitting_times",
    "expected_return_time",
    "mean_hitting_time_to_ball",
]
