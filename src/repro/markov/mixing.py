"""Mixing diagnostics: relative point-wise distance, burn-in, spectral gap.

These implement the *definitional* quantities of paper §2.2.3 exactly, by
dense linear algebra.  They quantify how long the traditional random walks
must "wait" — the cost WALK-ESTIMATE avoids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.markov.matrix import TransitionMatrix


def relative_pointwise_distance(matrix: TransitionMatrix, t: int) -> float:
    """Paper Definition 3: ``Δ(t) = max_{u; v ∈ N(u)} |T^t_{uv} - π(v)| / π(v)``.

    Following the definition verbatim, the maximum ranges over ordered pairs
    ``(u, v)`` with ``v`` a neighbor of ``u``.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    stationary = matrix.stationary_distribution()
    powered = matrix.power(t)
    worst = 0.0
    for u in range(matrix.size):
        for v in matrix.graph.neighbors(u):
            pi_v = stationary[v]
            if pi_v <= 0:
                raise ConvergenceError(
                    f"stationary probability of node {v} is zero; Δ(t) undefined"
                )
            worst = max(worst, abs(powered[u, v] - pi_v) / pi_v)
    return float(worst)


def burn_in_length(
    matrix: TransitionMatrix,
    epsilon: float,
    max_steps: int = 100_000,
    measure: str = "relative",
    start: int | None = None,
) -> int:
    """Minimum ``t`` with distance(t) <= epsilon — the burn-in period.

    Parameters
    ----------
    measure:
        ``"relative"`` uses the paper's relative point-wise distance over
        all starts; ``"linf"`` uses the ℓ∞ distance of ``p_t`` from π for
        the given *start* (or the worst start when *start* is None).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if measure not in ("relative", "linf"):
        raise ValueError(f"unknown measure {measure!r}")
    stationary = matrix.stationary_distribution()
    for t in range(1, max_steps + 1):
        if measure == "relative":
            distance = relative_pointwise_distance(matrix, t)
        else:
            powered = matrix.power(t)
            if start is None:
                distance = float(np.max(np.abs(powered - stationary[None, :])))
            else:
                distance = float(np.max(np.abs(powered[start] - stationary)))
        if distance <= epsilon:
            return t
    raise ConvergenceError(
        f"walk did not mix to {measure} distance {epsilon} within {max_steps} steps"
    )


def spectral_gap(matrix: TransitionMatrix) -> float:
    """``λ = 1 - |λ₂|`` of the transition matrix (paper §2.2.3)."""
    return matrix.spectral_gap()


def linf_mixing_bound(spectral_gap_value: float, start_degree: int, t: int) -> float:
    """The mixing bound the paper leans on: ``|p_t(u) - π(u)| ≤ (1-λ)^t · d(v₀)``.

    (Paper Eq. 9, tight in the worst case.)  Used by Theorem 1's cost model.
    """
    if not 0.0 <= spectral_gap_value <= 1.0:
        raise ValueError(f"spectral gap must be in [0, 1], got {spectral_gap_value}")
    if start_degree < 0:
        raise ValueError(f"degree must be >= 0, got {start_degree}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return (1.0 - spectral_gap_value) ** t * start_degree
