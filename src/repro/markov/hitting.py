"""Hitting times: how long until a walk reaches a target set.

Two uses inside this project:

* **Backward-walk feasibility.**  A backward estimation run succeeds when
  it reaches the start's crawled zone; the expected hitting time of that
  zone (from a candidate node) is exactly the quantity that explodes on
  long-diameter graphs — the §6.2 limitation quantified (Figure 5's
  mechanism).
* **Burn-in intuition.**  Expected return/hitting times relate to mixing
  through standard identities (e.g. π(v)·E[return to v] = 1), giving the
  test suite independent cross-checks of the stationary machinery.

All solvers are dense linear-algebra over the oracle transition matrix —
small-graph analysis tools, like the rest of :mod:`repro.markov`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.markov.matrix import TransitionMatrix


def expected_hitting_times(
    matrix: TransitionMatrix, targets: Iterable[int]
) -> np.ndarray:
    """E[steps until the walk first enters *targets*], for every start.

    Solves ``(I - Q) h = 1`` where ``Q`` is the transition matrix
    restricted to non-target states; target states get 0.  States that
    cannot reach the target set yield ``inf``.

    Raises
    ------
    GraphError
        If *targets* is empty or contains unknown states.
    """
    target_set = set(targets)
    n = matrix.size
    if not target_set:
        raise GraphError("need at least one target state")
    for t in target_set:
        if not 0 <= t < n:
            raise GraphError(f"target state {t} out of range 0..{n - 1}")
    others = [v for v in range(n) if v not in target_set]
    result = np.zeros(n)
    if not others:
        return result
    index = {state: i for i, state in enumerate(others)}
    q = np.zeros((len(others), len(others)))
    for i, state in enumerate(others):
        for successor, probability in enumerate(matrix.matrix[state]):
            if probability > 0 and successor in index:
                q[i, index[successor]] = probability
    system = np.eye(len(others)) - q
    try:
        h = np.linalg.solve(system, np.ones(len(others)))
    except np.linalg.LinAlgError:
        # Singular: some states never reach the targets.
        h = np.full(len(others), np.inf)
        # Identify reachable states by iterating expectations to a fixpoint
        # on the reachable sub-block.
        reachable = _states_reaching(matrix, target_set)
        reachable_others = [s for s in others if s in reachable]
        if reachable_others:
            sub_index = {s: i for i, s in enumerate(reachable_others)}
            q_sub = np.zeros((len(reachable_others), len(reachable_others)))
            for i, state in enumerate(reachable_others):
                for successor, probability in enumerate(matrix.matrix[state]):
                    if probability > 0 and successor in sub_index:
                        q_sub[i, sub_index[successor]] = probability
            h_sub = np.linalg.solve(
                np.eye(len(reachable_others)) - q_sub,
                np.ones(len(reachable_others)),
            )
            for state, value in zip(reachable_others, h_sub):
                h[index[state]] = value
    for state, i in index.items():
        result[state] = h[i]
    return result


def _states_reaching(matrix: TransitionMatrix, targets: set[int]) -> set[int]:
    """States with a positive-probability path into *targets*."""
    reaching = set(targets)
    changed = True
    while changed:
        changed = False
        for state in range(matrix.size):
            if state in reaching:
                continue
            row = matrix.matrix[state]
            if any(row[s] > 0 for s in reaching):
                reaching.add(state)
                changed = True
    return reaching


def expected_return_time(matrix: TransitionMatrix, state: int) -> float:
    """E[steps for a walk started at *state* to come back to it].

    Computed via Kac's formula ``E[return] = 1/π(state)`` — exact for
    irreducible chains and the cheapest cross-check of the stationary
    distribution.
    """
    if not 0 <= state < matrix.size:
        raise GraphError(f"state {state} out of range 0..{matrix.size - 1}")
    pi = matrix.stationary_distribution()
    if pi[state] <= 0:
        return float("inf")
    return float(1.0 / pi[state])


def mean_hitting_time_to_ball(
    matrix: TransitionMatrix,
    center: int,
    hops: int,
    starts: Sequence[int] | None = None,
) -> float:
    """Average hitting time of the *hops*-hop ball around *center*.

    This is the backward-walk feasibility number: a backward estimation
    from a typical node terminates when it reaches the initial crawl's
    zone, and its expected effort is the stationary-weighted mean hitting
    time of that ball.  On small-diameter graphs it is a few steps; on
    long cycles it grows with the diameter squared (the §6.2 limitation).
    """
    from repro.graphs.properties import k_hop_neighborhood

    ball = set(k_hop_neighborhood(matrix.graph, center, hops))
    times = expected_hitting_times(matrix, ball)
    pi = matrix.stationary_distribution()
    if starts is None:
        weights = pi
        values = times
    else:
        weights = np.array([pi[s] for s in starts])
        values = np.array([times[s] for s in starts])
        total = weights.sum()
        if total <= 0:
            raise GraphError("start set has zero stationary mass")
        weights = weights / total
        return float(np.dot(weights, values))
    return float(np.dot(weights, values))
