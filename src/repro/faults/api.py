"""The fault-injecting API wrapper: a scripted unreliable network.

:class:`FaultyAPI` sits between a caller (crawler, resilient layer,
service) and a real charged :class:`~repro.osn.api.SocialNetworkAPI`,
consulting a :class:`~repro.faults.plan.FaultPlan` on every batch call.
Matched calls fail or slow down exactly as scripted; unmatched calls
delegate untouched.  Everything else — accounting, cache, budget, rate
limiter, metadata — is pure delegation, so the wrapper is invisible to
the §2.4 cost model:

* a ``before``-phase fault raises *before* the inner call, so the failed
  attempt charges nothing — the retry pays, once;
* an ``after``-phase fault lets the inner call settle (rows cached,
  counter charged) and then "loses" the response — the retry is a free
  cache hit, so the batch still charges exactly once;
* a ``slow`` fault completes the call and accumulates its extra latency
  in the mirror-wait channel (:meth:`FaultyAPI.consume_mirror_wait`),
  which the async crawler drains onto its simulated clock — slow
  responses cost time, never money.

Per-run execution state (the call counter and the seeded jitter stream)
lives here, not in the plan, so one plan document drives any number of
bit-identical replays through fresh wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import (
    APITimeoutError,
    ConfigurationError,
    RateLimitExceededError,
    TransientAPIError,
)
from repro.faults.plan import FaultPlan, InjectedFault
from repro.rng import ensure_rng


class FaultyAPI:
    """Inject a :class:`FaultPlan` into a charged API's batch calls.

    Parameters
    ----------
    api:
        The wrapped :class:`~repro.osn.api.SocialNetworkAPI` (or any
        object with its batch surface).
    plan:
        The fault script.
    clock:
        Optional object with a ``now`` attribute (a
        :class:`~repro.crawl.clock.FakeClock` or
        :class:`~repro.osn.ratelimit.VirtualClock`) the plan's
        virtual-time windows read; rules without time windows never need
        one.
    """

    def __init__(self, api, plan: FaultPlan, clock=None) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"plan must be a FaultPlan, got {type(plan).__name__}"
            )
        self.api = api
        self.plan = plan
        self.clock = clock
        self._rng = ensure_rng(plan.seed)
        #: Wrapper-level batch calls made so far (every attempt counts).
        self.calls = 0
        #: Injection counts by fault kind (diagnostics / assertions).
        self.injected: Dict[str, int] = {}
        #: Full injection history: ``(call_index, op, fault)`` per event.
        self.history: List[Tuple[int, str, InjectedFault]] = []
        self._mirror_wait = 0.0

    # ------------------------------------------------------------------
    # Injection machinery
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    def _intercept(self, op: str, fn, nodes):
        index = self.calls
        self.calls += 1
        fault = self.plan.resolve(index, op, self._now(), self._rng)
        if fault is None:
            return fn(nodes)
        self.injected[fault.kind] = self.injected.get(fault.kind, 0) + 1
        self.history.append((index, op, fault))
        if fault.kind == "slow":
            result = fn(nodes)
            self._mirror_wait += fault.delay
            return result
        if fault.phase == "after":
            # The backend processed the batch — rows cached, charges
            # booked — and the response was lost on the way back.
            fn(nodes)
        if fault.kind == "timeout":
            raise APITimeoutError(
                f"injected timeout on {op} call {index} "
                f"(rule {fault.rule_index}, phase {fault.phase})"
            )
        if fault.kind == "rate_limit":
            raise RateLimitExceededError(retry_after=fault.delay)
        raise TransientAPIError(
            f"injected transient error on {op} call {index} "
            f"(rule {fault.rule_index}, phase {fault.phase})"
        )

    def consume_mirror_wait(self) -> float:
        """Simulated seconds of injected slowness accrued since last drain.

        The async crawler's mirror hook: after each settled batch it
        drains this and sleeps the amount on its own clock, so scripted
        slow responses stretch the campaign exactly like scripted latency.
        """
        waited, self._mirror_wait = self._mirror_wait, 0.0
        return waited

    # ------------------------------------------------------------------
    # The intercepted batch surface
    # ------------------------------------------------------------------
    def neighbors_batch(self, nodes):
        """Delegate :meth:`~repro.osn.api.SocialNetworkAPI.neighbors_batch`
        through the fault script."""
        return self._intercept("neighbors", self.api.neighbors_batch, nodes)

    def degrees_batch(self, nodes):
        """Delegate :meth:`~repro.osn.api.SocialNetworkAPI.degrees_batch`
        through the fault script."""
        return self._intercept("degrees", self.api.degrees_batch, nodes)

    # ------------------------------------------------------------------
    # Pure delegation (the wrapper is invisible to the cost model)
    # ------------------------------------------------------------------
    def neighbors(self, node):
        """Scalar pass-through (fault rules cover the batch grain only)."""
        return self.api.neighbors(node)

    def degree(self, node) -> int:
        """Scalar pass-through."""
        return self.api.degree(node)

    def attribute(self, node, name: str):
        """Scalar pass-through."""
        return self.api.attribute(node, name)

    def has_node(self, node) -> bool:
        """Free existence check, delegated."""
        return self.api.has_node(node)

    @property
    def discovered(self):
        """The inner API's shared discovered graph."""
        return self.api.discovered

    @property
    def counter(self):
        """The inner API's query counter."""
        return self.api.counter

    @property
    def budget(self):
        """The inner API's query budget."""
        return self.api.budget

    @property
    def rate_limiter(self):
        """The inner API's token bucket (or None)."""
        return self.api.rate_limiter

    @property
    def cacheable(self) -> bool:
        """Whether the inner API's responses are call-stable."""
        return self.api.cacheable

    @property
    def query_cost(self) -> int:
        """The inner API's unique-node cost."""
        return self.api.query_cost

    @property
    def raw_calls(self) -> int:
        """The inner API's raw invocation count."""
        return self.api.raw_calls

    def snapshot(self):
        """The inner counter's snapshot (phase attribution)."""
        return self.api.snapshot()

    def __repr__(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
        return (
            f"FaultyAPI(calls={self.calls}, injected=[{kinds}], "
            f"rules={len(self.plan.rules)})"
        )
