"""Deterministic fault injection: chaos scripts on the simulated clock.

The recovery machinery of the crawl/walk/serving stack —
:class:`~repro.osn.resilience.ResilientAPI` retries, the
:class:`~repro.walks.parallel.ShardedWalkEngine` worker respawn path,
:meth:`~repro.service.server.SamplingService.resume` — is only worth
trusting if the failures it recovers from replay bit for bit.  This
package provides those failures:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultRule`
  — a seeded, JSON-round-trippable script of timeouts, transient
  5xx-style errors, rate-limit storms, and slow responses, keyed by call
  index and virtual time;
* :class:`~repro.faults.api.FaultyAPI` — the wrapper that executes a plan
  against a charged :class:`~repro.osn.api.SocialNetworkAPI`, preserving
  the §2.4 exactly-once accounting across every fault phase.

``tests/faults/`` pins the contract: a chaos run recovered by the
resilience layer is bit-identical — estimates, trajectories, counter and
ledger state — to its fault-free twin.
"""

from repro.faults.api import FaultyAPI
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_OPS,
    FAULT_PHASES,
    FaultPlan,
    FaultRule,
    InjectedFault,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_OPS",
    "FAULT_PHASES",
    "FaultPlan",
    "FaultRule",
    "FaultyAPI",
    "InjectedFault",
]
