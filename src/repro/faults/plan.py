"""Scripted fault plans: chaos as data, replayable bit for bit.

A live OSN fails in ways the rest of this repository never had to model:
requests time out, the service returns transient 5xx-style errors, rate
limiters go into storm mode, responses arrive late.  Testing recovery
machinery against *real* nondeterministic failures would forfeit the
bit-for-bit replay discipline PR 5–6 established for latency — so this
module makes failures part of the script instead.

A :class:`FaultPlan` is a pure value object: an ordered tuple of
:class:`FaultRule` entries plus a seed, JSON-round-trippable exactly like
:class:`~repro.core.dispatch.EstimationJobSpec` (``to_dict``/``from_dict``
with unknown keys rejected).  Rules match on the *wrapper call index* —
the 0-based count of batch calls made through the injecting wrapper — and
optionally on a virtual-time window read from whatever clock the wrapper
is bound to (:class:`~repro.crawl.clock.FakeClock` in the crawl stack).
Both coordinates are deterministic functions of the campaign, so the same
``(plan, campaign)`` pair injects the same faults at the same points,
run after run, machine after machine.

The plan itself never mutates during execution: per-run state (the call
counter, the seeded jitter stream) lives in the executing wrapper
(:class:`~repro.faults.api.FaultyAPI`), which is why one plan document can
drive the chaos run and its replay-determinism twin from the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Failure modes a rule can inject.  ``timeout``/``error``/``rate_limit``
#: raise (the retry layer's food); ``slow`` lets the call succeed but adds
#: simulated seconds the caller must mirror onto its clock.
FAULT_KINDS = ("timeout", "error", "rate_limit", "slow")

#: When a raising fault fires relative to the real invocation.  ``before``
#: models a request that never reached the network (nothing charged);
#: ``after`` models a response lost on the wire — the backend processed
#: and cached the batch, then the caller saw a failure.  Either way a
#: retried batch settles its accounting exactly once (§2.4: the ``after``
#: retry is a free cache hit; the ``before`` attempt charged nothing).
FAULT_PHASES = ("before", "after")

#: Which wrapper entry points a rule covers.
FAULT_OPS = ("any", "neighbors", "degrees")


def _checked_fields(cls, data: Mapping[str, Any]) -> Dict[str, Any]:
    valid = set(cls.__dataclass_fields__)
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} keys: {sorted(unknown)}; valid: {sorted(valid)}"
        )
    return dict(data)


@dataclass(frozen=True)
class InjectedFault:
    """One resolved injection: what a matched rule does to one call."""

    kind: str
    phase: str
    #: Simulated seconds attached to the fault — the added latency of a
    #: ``slow`` response, or the ``retry_after`` of a rate-limit rejection.
    delay: float
    #: Index of the matched rule in the plan (diagnostics / assertions).
    rule_index: int


@dataclass(frozen=True)
class FaultRule:
    """One scripted failure window.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    first_call / last_call:
        Inclusive window of wrapper call indices the rule covers
        (``last_call=None`` leaves it open-ended).  Every attempt counts —
        a retried batch re-enters the wrapper under a fresh index, which
        is how a finite window models a storm that eventually clears.
    op:
        Restrict the rule to ``neighbors`` or ``degrees`` calls
        (``any`` covers both).
    phase:
        ``before`` or ``after`` (see :data:`FAULT_PHASES`); meaningless
        for ``slow``, which always completes the call.
    after_time / before_time:
        Optional virtual-time window ``[after_time, before_time)`` on the
        wrapper's bound clock; a rule with both ``None`` matches at any
        time.
    delay:
        Base simulated seconds (slow-response latency / rate-limit
        ``retry_after``).
    jitter:
        Fractional perturbation of *delay*, drawn per injection from the
        wrapper's seeded stream — scripted chaos can still have texture
        without giving up replay.
    """

    kind: str
    first_call: int = 0
    last_call: Optional[int] = None
    op: str = "any"
    phase: str = "before"
    after_time: Optional[float] = None
    before_time: Optional[float] = None
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; valid: {', '.join(FAULT_KINDS)}"
            )
        if self.phase not in FAULT_PHASES:
            raise ConfigurationError(
                f"unknown fault phase {self.phase!r}; valid: "
                f"{', '.join(FAULT_PHASES)}"
            )
        if self.op not in FAULT_OPS:
            raise ConfigurationError(
                f"unknown fault op {self.op!r}; valid: {', '.join(FAULT_OPS)}"
            )
        if self.first_call < 0:
            raise ConfigurationError(
                f"first_call must be >= 0, got {self.first_call}"
            )
        if self.last_call is not None and self.last_call < self.first_call:
            raise ConfigurationError(
                f"last_call ({self.last_call}) must be >= first_call "
                f"({self.first_call})"
            )
        if self.delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if (
            self.after_time is not None
            and self.before_time is not None
            and self.before_time <= self.after_time
        ):
            raise ConfigurationError(
                f"before_time ({self.before_time}) must be > after_time "
                f"({self.after_time})"
            )

    def matches(self, call_index: int, op: str, now: float) -> bool:
        """Whether this rule covers one wrapper call."""
        if call_index < self.first_call:
            return False
        if self.last_call is not None and call_index > self.last_call:
            return False
        if self.op != "any" and self.op != op:
            return False
        if self.after_time is not None and now < self.after_time:
            return False
        if self.before_time is not None and now >= self.before_time:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        return cls(**_checked_fields(cls, data))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered script of failure windows.

    First matching rule wins per call; no rule means the call proceeds
    untouched.  The plan is immutable — execution state (call counter,
    jitter stream) belongs to :class:`~repro.faults.api.FaultyAPI` — so
    the same plan object can drive any number of identical replays.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ConfigurationError(
                    f"rules must be FaultRule instances, got {type(rule).__name__}"
                )

    def resolve(
        self,
        call_index: int,
        op: str,
        now: float,
        rng: Optional[np.random.Generator] = None,
    ) -> Optional[InjectedFault]:
        """The fault (if any) the plan injects into one wrapper call.

        *rng* supplies the jitter stream — the executing wrapper passes
        its own seeded generator so successive injections draw in call
        order.  A rule with zero jitter never touches the stream, so
        plans without jitter resolve identically with or without one.
        """
        for index, rule in enumerate(self.rules):
            if not rule.matches(call_index, op, now):
                continue
            delay = rule.delay
            if rule.jitter > 0.0:
                if rng is None:
                    raise ConfigurationError(
                        "a jittered rule needs the executing wrapper's rng"
                    )
                delay *= 1.0 + rule.jitter * float(rng.uniform(-1.0, 1.0))
            return InjectedFault(
                kind=rule.kind, phase=rule.phase, delay=delay, rule_index=index
            )
        return None

    def with_overrides(self, **changes) -> "FaultPlan":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form — the chaos-scenario file format."""
        return {"rules": [rule.to_dict() for rule in self.rules], "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; nested rules rebuild and re-validate."""
        fields = _checked_fields(cls, data)
        rules = fields.get("rules", ())
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise ConfigurationError(
                f"rules must be a list of rule mappings, got {type(rules).__name__}"
            )
        built = []
        for rule in rules:
            if isinstance(rule, FaultRule):
                built.append(rule)
            elif isinstance(rule, Mapping):
                built.append(FaultRule.from_dict(rule))
            else:
                raise ConfigurationError(
                    f"each rule must be a mapping, got {type(rule).__name__}"
                )
        fields["rules"] = tuple(built)
        return cls(**fields)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON (one plan per document)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a :meth:`to_json` document."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
