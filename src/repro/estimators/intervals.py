"""Bootstrap confidence intervals for AVG aggregate estimates.

The paper reports point estimates averaged over 100 runs; a practitioner
running one campaign needs an uncertainty statement from that single
sample.  The percentile bootstrap over the (value, weight) pairs handles
both the arithmetic and the importance-weighted estimator uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimators.aggregates import importance_weighted_mean
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap interval for an AVG estimate."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    replicates: int

    @property
    def width(self) -> float:
        """Interval width (a resolution summary)."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """True if *value* lies inside the interval."""
        return self.lower <= value <= self.upper


def bootstrap_interval(
    batch: SampleBatch,
    values: Sequence[float],
    confidence: float = 0.95,
    replicates: int = 1000,
    seed: RngLike = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the batch's AVG aggregate estimate.

    Resamples (value, target-weight) pairs with replacement and recomputes
    the self-normalized weighted mean per replicate; with all-equal weights
    this reduces to the plain-mean bootstrap.

    Raises
    ------
    EstimationError
        On an empty batch, mismatched lengths, or fewer than 2 samples
        (no resampling variability to measure).
    """
    if len(batch) == 0:
        raise EstimationError("empty sample batch")
    if len(values) != len(batch):
        raise EstimationError(
            f"{len(values)} values for a batch of {len(batch)} samples"
        )
    if len(batch) < 2:
        raise EstimationError("need at least 2 samples for a bootstrap CI")
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    if replicates < 10:
        raise EstimationError(f"need >= 10 replicates, got {replicates}")
    rng = ensure_rng(seed)
    values_arr = np.asarray(values, dtype=float)
    weights_arr = np.asarray(batch.target_weights, dtype=float)
    point = importance_weighted_mean(values_arr, weights_arr)
    n = len(values_arr)
    replicate_means = np.empty(replicates)
    inverse = 1.0 / weights_arr
    for r in range(replicates):
        index = rng.integers(0, n, size=n)
        inv = inverse[index]
        replicate_means[r] = float(np.dot(values_arr[index], inv) / inv.sum())
    tail = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicate_means, [tail, 1.0 - tail])
    return ConfidenceInterval(
        estimate=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        replicates=replicates,
    )
