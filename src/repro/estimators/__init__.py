"""Turning samples into analytics: AVG estimators, error and bias metrics.

The paper's end goal is third-party analytics (§1): estimate AVG aggregates
(degree, stars, self-description length, …) from sampled nodes, and measure
quality as relative error of the estimate (§2.4) or — on small graphs —
as the distance between the achieved sampling distribution and the target
(Table 1, Figure 12).
"""

from repro.estimators.aggregates import (
    average_estimate,
    average_estimate_arrays,
    importance_weighted_mean,
    plain_mean,
)
from repro.estimators.metrics import (
    empirical_distribution,
    kl_bias,
    l_infinity_bias,
    relative_error,
    total_variation_bias,
)
from repro.estimators.distribution import (
    DistributionComparison,
    sampling_distribution_comparison,
)
from repro.estimators.intervals import ConfidenceInterval, bootstrap_interval

__all__ = [
    "plain_mean",
    "importance_weighted_mean",
    "average_estimate",
    "average_estimate_arrays",
    "relative_error",
    "empirical_distribution",
    "l_infinity_bias",
    "kl_bias",
    "total_variation_bias",
    "DistributionComparison",
    "sampling_distribution_comparison",
    "ConfidenceInterval",
    "bootstrap_interval",
]
