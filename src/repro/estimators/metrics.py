"""Quality metrics: relative error and sampling-distribution bias.

Relative error ``|x̃ - x| / x`` scores aggregate estimates against ground
truth (the paper's large-graph measure, §2.4/§7.1).  The bias metrics score
an *empirical sampling distribution* — node visit frequencies over many
sampler runs — against the target distribution (the paper's small-graph
"exact bias" measure, Table 1).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.markov.distributions import (
    kl_divergence,
    l_infinity_distance,
    total_variation_distance,
)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|``.

    Raises
    ------
    EstimationError
        If *truth* is zero — relative error is undefined there, and the
        aggregates the paper evaluates (degrees, stars, lengths) are never
        zero on real graphs.
    """
    if truth == 0:
        raise EstimationError("relative error undefined for zero ground truth")
    return abs(estimate - truth) / abs(truth)


def empirical_distribution(nodes: Sequence[int], n: int) -> np.ndarray:
    """Visit-frequency distribution over node ids ``0..n-1``.

    Raises
    ------
    EstimationError
        If the sample is empty or references ids outside ``0..n-1``.
    """
    if len(nodes) == 0:
        raise EstimationError("cannot build a distribution from zero samples")
    counts = np.zeros(n, dtype=float)
    for node in nodes:
        if not 0 <= node < n:
            raise EstimationError(f"node id {node} outside 0..{n - 1}")
        counts[node] += 1.0
    return counts / counts.sum()


def l_infinity_bias(sampled: np.ndarray, target: np.ndarray) -> float:
    """ℓ∞ distance between sampling and target distributions (Table 1)."""
    return l_infinity_distance(sampled, target)


def kl_bias(sampled: np.ndarray, target: np.ndarray) -> float:
    """KL(sampled ‖ target) (Table 1's second row)."""
    return kl_divergence(sampled, target)


def total_variation_bias(sampled: np.ndarray, target: np.ndarray) -> float:
    """Total-variation distance (supporting metric)."""
    return total_variation_distance(sampled, target)


def bias_report(sampled: np.ndarray, target: np.ndarray) -> Dict[str, float]:
    """All three bias metrics in one dict (keys: linf, kl, tv)."""
    return {
        "linf": l_infinity_bias(sampled, target),
        "kl": kl_bias(sampled, target),
        "tv": total_variation_bias(sampled, target),
    }
