"""AVG aggregate estimators for uniform and non-uniform samples.

Paper §7.1: "We used arithmetic and harmonic mean for the uniform and
non-uniform samples respectively."  In estimator language:

* uniform-target samples (MHRW, or WE with a uniform target) — the plain
  arithmetic mean is unbiased;
* degree-proportional samples (SRW at stationarity, or WE with SRW's
  target) — use self-normalized importance weighting with weights
  ``1/q̃(v)``:

      mean(f) ≈ Σ f(v_i)/q̃(v_i)  /  Σ 1/q̃(v_i),

  which for ``f = degree`` and ``q̃ = degree`` reduces exactly to the
  harmonic mean of sampled degrees — the paper's estimator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.walks.samplers import SampleBatch


def plain_mean(values: Sequence[float]) -> float:
    """Arithmetic mean; unbiased for uniform samples."""
    if len(values) == 0:
        raise EstimationError("cannot average an empty sample")
    return float(np.mean(values))


def importance_weighted_mean(
    values: Sequence[float], target_weights: Sequence[float]
) -> float:
    """Self-normalized importance-weighted mean for non-uniform samples.

    *target_weights* are the unnormalized stationary weights ``q̃(v_i)``
    the sample was drawn with (degree for SRW).  Weighting by their
    reciprocals de-biases toward the node-uniform population mean.
    """
    if len(values) == 0:
        raise EstimationError("cannot average an empty sample")
    if len(values) != len(target_weights):
        raise EstimationError(f"{len(values)} values but {len(target_weights)} weights")
    weights = np.asarray(target_weights, dtype=float)
    if np.any(weights <= 0):
        raise EstimationError("target weights must be positive")
    inverse = 1.0 / weights
    return float(np.dot(np.asarray(values, dtype=float), inverse) / inverse.sum())


def average_estimate_arrays(values, target_weights) -> float:
    """AVG estimate from aligned NumPy arrays, no Python-loop fan-in.

    The array-native twin of :func:`average_estimate` for the batch
    pipeline: ``values[i]`` is the measured quantity of sample *i* and
    ``target_weights[i]`` its unnormalized stationary weight ``q̃`` (e.g.
    :attr:`~repro.core.walk_estimate.BatchWalkEstimateResult.weights`).
    All-equal weights (uniform target) select the arithmetic mean;
    otherwise self-normalized importance weighting — the same
    arithmetic/harmonic rule, decided and computed vectorized.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(target_weights, dtype=float)
    if values.size == 0:
        raise EstimationError("cannot average an empty sample")
    if values.shape != weights.shape:
        raise EstimationError(f"{values.size} values but {weights.size} weights")
    if np.any(weights <= 0):
        raise EstimationError("target weights must be positive")
    if np.allclose(weights, weights.flat[0]):
        return float(values.mean())
    inverse = 1.0 / weights
    return float(np.dot(values, inverse) / inverse.sum())


def average_estimate(batch: SampleBatch, values: Sequence[float]) -> float:
    """AVG estimate from a :class:`SampleBatch` and per-sample values.

    Chooses the estimator from the batch's recorded target weights: all-
    equal weights (uniform target) → arithmetic mean; otherwise importance
    weighting.  This mirrors the paper's arithmetic/harmonic rule without
    the caller having to know which sampler produced the batch.
    """
    if len(batch) == 0:
        raise EstimationError("empty sample batch")
    if len(values) != len(batch):
        raise EstimationError(
            f"{len(values)} values for a batch of {len(batch)} samples"
        )
    weights = np.asarray(batch.target_weights, dtype=float)
    if np.allclose(weights, weights[0]):
        return plain_mean(values)
    return importance_weighted_mean(values, batch.target_weights)


def attribute_average_estimate(api, batch: SampleBatch, attribute: str | None) -> float:
    """AVG of a node attribute over a batch, fetched through the API.

    ``attribute=None`` aggregates the visible degree.  Fetching through the
    API charges queries for nodes not already seen — consistent with how a
    real campaign would pay to read profile values of its samples.
    """
    if len(batch) == 0:
        raise EstimationError("empty sample batch")
    if attribute is None:
        values = [float(api.degree(node)) for node in batch.nodes]
    else:
        values = [float(api.attribute(node, attribute)) for node in batch.nodes]
    return average_estimate(batch, values)
