"""Sampling-distribution comparison series (paper Figure 12).

Figure 12 plots, for a small scale-free graph, the PDF and CDF of three
distributions over nodes ordered by descending degree: the theoretical
target, SRW's achieved sampling distribution, and WE's.  This module builds
those series from empirical node samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimators.metrics import bias_report, empirical_distribution
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DistributionComparison:
    """PDF/CDF series over degree-ordered nodes plus bias metrics.

    Attributes
    ----------
    node_order:
        Node ids sorted by descending degree — the Figure 12 x-axis.
    target_pdf / sampled_pdfs:
        Probability mass in that node order; ``sampled_pdfs`` maps a
        sampler label to its series.
    biases:
        Per-sampler ``{linf, kl, tv}`` against the target (Table 1's rows).
    """

    node_order: tuple[int, ...]
    target_pdf: np.ndarray
    sampled_pdfs: dict[str, np.ndarray]
    biases: dict[str, dict[str, float]]

    def cdf(self, label: str | None = None) -> np.ndarray:
        """Cumulative series for a sampler label (None = target)."""
        pdf = self.target_pdf if label is None else self.sampled_pdfs[label]
        return np.cumsum(pdf)


def sampling_distribution_comparison(
    graph: Graph,
    target: np.ndarray,
    samples: dict[str, Sequence[int]],
) -> DistributionComparison:
    """Build the Figure 12 comparison from raw per-sampler node samples.

    Parameters
    ----------
    graph:
        The (relabeled) graph — supplies node count and degrees.
    target:
        The theoretical target distribution over ``0..n-1``.
    samples:
        Mapping of sampler label to the node ids it drew.
    """
    n = graph.number_of_nodes()
    target = np.asarray(target, dtype=float)
    if target.shape != (n,):
        raise EstimationError(f"target shape {target.shape} != ({n},)")
    order = tuple(
        sorted(range(n), key=lambda v: (-graph.degree(v), v))
    )
    index = np.array(order)
    sampled_pdfs: dict[str, np.ndarray] = {}
    biases: dict[str, dict[str, float]] = {}
    for label, nodes in samples.items():
        pdf = empirical_distribution(nodes, n)
        biases[label] = bias_report(pdf, target)
        sampled_pdfs[label] = pdf[index]
    return DistributionComparison(
        node_order=order,
        target_pdf=target[index],
        sampled_pdfs=sampled_pdfs,
        biases=biases,
    )
