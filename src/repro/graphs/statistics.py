"""Distributional graph statistics: power-law fit, assortativity, summary.

The dataset surrogates must match the paper's graphs in *shape* — heavy
tails, degree correlations, clustering, small diameter — for the
WE-vs-baseline comparisons to transfer.  This module provides the
quantities that check sits on:

* :func:`power_law_alpha` — discrete maximum-likelihood exponent
  (Clauset–Shalizi–Newman's estimator) for the degree tail; BA graphs
  should land near the theoretical α = 3;
* :func:`degree_assortativity` — Pearson correlation of degrees across
  edges (social graphs: mildly positive; BA: slightly negative);
* :func:`GraphSummary` / :func:`summarize` — the one-stop report used by
  dataset tests and the CLI's ``datasets`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    average_clustering,
    average_degree,
    connected_components,
    estimate_diameter,
)
from repro.rng import RngLike


def power_law_alpha(graph: Graph, d_min: int = 2) -> float:
    """Discrete MLE of the power-law exponent of the degree distribution.

    Uses the Clauset–Shalizi–Newman approximation for discrete data,

        α ≈ 1 + n · ( Σ_i ln( d_i / (d_min - 0.5) ) )⁻¹,

    over all degrees ``d_i ≥ d_min``.  Not a goodness-of-fit test — just
    the tail-heaviness summary used to compare surrogates against the
    scale-free shape the paper's graphs have.

    Raises
    ------
    GraphError
        If no node has degree ≥ d_min.
    """
    if d_min < 1:
        raise GraphError(f"d_min must be >= 1, got {d_min}")
    degrees = np.array(
        [d for d in graph.degrees().values() if d >= d_min], dtype=float
    )
    if len(degrees) == 0:
        raise GraphError(f"no node has degree >= {d_min}")
    log_terms = np.log(degrees / (d_min - 0.5))
    total = log_terms.sum()
    if total <= 0:
        raise GraphError("degenerate degree distribution (all at d_min)")
    return float(1.0 + len(degrees) / total)


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over all edges.

    Positive: hubs attach to hubs (social networks); negative: hubs attach
    to leaves (BA model, technological networks); 0 for a regular graph by
    convention (no variance to correlate).
    """
    x, y = [], []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # Each undirected edge contributes both orientations, making the
        # measure symmetric.
        x.extend((du, dv))
        y.extend((dv, du))
    if not x:
        raise GraphError("assortativity of an edgeless graph is undefined")
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.std() == 0 or y_arr.std() == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative sequence (degree inequality).

    0 = perfectly equal (regular graph), → 1 = extreme concentration.
    """
    array = np.sort(np.asarray(list(values), dtype=float))
    if len(array) == 0:
        raise GraphError("Gini of an empty sequence is undefined")
    if np.any(array < 0):
        raise GraphError("Gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    n = len(array)
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.dot(ranks, array)) / (n * total) - (n + 1.0) / n)


@dataclass(frozen=True)
class GraphSummary:
    """One-line-per-metric structural fingerprint of a graph."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    max_degree: int
    degree_gini: float
    power_law_alpha: float
    assortativity: float
    clustering: float
    diameter_estimate: int
    components: int

    def as_rows(self) -> list[tuple[str, object]]:
        """(metric, value) rows for tabular rendering."""
        return [
            ("nodes", self.nodes),
            ("edges", self.edges),
            ("average degree", round(self.average_degree, 3)),
            ("max degree", self.max_degree),
            ("degree Gini", round(self.degree_gini, 3)),
            ("power-law alpha", round(self.power_law_alpha, 3)),
            ("assortativity", round(self.assortativity, 3)),
            ("avg clustering", round(self.clustering, 4)),
            ("diameter (est.)", self.diameter_estimate),
            ("components", self.components),
        ]


def summarize(graph: Graph, seed: RngLike = 0) -> GraphSummary:
    """Compute the full structural fingerprint of *graph*.

    Costs a handful of BFS sweeps plus one pass per metric; intended for
    dataset-sized graphs (≤ ~100k nodes).
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("cannot summarize an empty graph")
    return GraphSummary(
        name=graph.name,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        average_degree=average_degree(graph),
        max_degree=graph.max_degree(),
        degree_gini=gini_coefficient(graph.degrees().values()),
        power_law_alpha=power_law_alpha(graph),
        assortativity=degree_assortativity(graph),
        clustering=average_clustering(graph),
        diameter_estimate=estimate_diameter(graph, probes=8, seed=seed),
        components=len(connected_components(graph)),
    )
