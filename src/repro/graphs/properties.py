"""Structural graph properties: BFS, diameter, clustering, components.

These back three needs: validating generators in tests, computing ground
truth for the paper's AVG aggregates (degree, shortest-path length, local
clustering coefficient), and sizing walk lengths (the WALK step keys off the
graph diameter, paper §4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, Node
from repro.rng import RngLike, ensure_rng


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distance from *source* to every reachable node (BFS)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def k_hop_neighborhood(graph: Graph, source: Node, hops: int) -> Dict[Node, int]:
    """Nodes within *hops* of *source*, mapped to their distance."""
    if hops < 0:
        raise GraphError(f"hops must be >= 0, got {hops}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        if distances[current] == hops:
            continue
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def connected_components(graph: Graph) -> List[set[Node]]:
    """Connected components, largest first."""
    seen: set[Node] = set()
    components: List[set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(bfs_distances(graph, node))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """True if the graph is non-empty and has a single component."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    first = graph.nodes()[0]
    return len(bfs_distances(graph, first)) == n


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest component (relabeled 0..n-1).

    The paper's Yelp experiment uses "the largest connected component of
    the user-user graph"; surrogates apply the same normalization.
    """
    components = connected_components(graph)
    if not components:
        raise GraphError("graph has no nodes")
    return graph.subgraph(components[0], name=f"{graph.name}-lcc").relabeled()


def eccentricity(graph: Graph, node: Node) -> int:
    """Greatest hop distance from *node* to any node of its component."""
    return max(bfs_distances(graph, node).values())


def diameter(graph: Graph, require_connected: bool = True) -> int:
    """Exact diameter via all-pairs BFS.

    ``O(|V| * (|V| + |E|))`` — fine for the paper's case-study graphs;
    use :func:`estimate_diameter` on the large surrogates.
    """
    nodes = graph.nodes()
    if not nodes:
        raise GraphError("diameter of an empty graph is undefined")
    if require_connected and not is_connected(graph):
        raise GraphError("graph is disconnected; diameter is infinite")
    return max(eccentricity(graph, node) for node in nodes)


def estimate_diameter(graph: Graph, probes: int = 16, seed: RngLike = None) -> int:
    """Lower-bound diameter estimate via random double-sweep BFS probes.

    Mirrors the practical setting of the paper (§4.3): third parties cannot
    compute the exact diameter, but "8 to 10 is a safe bet" upper bounds —
    this estimator supplies the data-driven counterpart used when building
    experiment configurations.
    """
    nodes = graph.nodes()
    if not nodes:
        raise GraphError("diameter of an empty graph is undefined")
    rng = ensure_rng(seed)
    best = 0
    for _ in range(probes):
        start = nodes[int(rng.integers(0, len(nodes)))]
        first = bfs_distances(graph, start)
        far_node = max(first, key=lambda n: first[n])
        second = bfs_distances(graph, far_node)
        best = max(best, max(second.values()))
    return best


def local_clustering(graph: Graph, node: Node) -> float:
    """Local clustering coefficient of *node*.

    Fraction of neighbor pairs that are themselves connected; 0.0 for
    degree < 2 (the usual convention).
    """
    neighbors = graph.neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        # Count each pair once by only looking at later neighbors of u.
        for v in neighbors[i + 1 :]:
            if v in neighbor_set and graph.has_edge(u, v):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    nodes = graph.nodes()
    if not nodes:
        raise GraphError("average clustering of an empty graph is undefined")
    return sum(local_clustering(graph, node) for node in nodes) / len(nodes)


def average_degree(graph: Graph) -> float:
    """Mean degree ``2|E| / |V|``."""
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("average degree of an empty graph is undefined")
    return 2.0 * graph.number_of_edges() / n


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def shortest_path_lengths(graph: Graph, source: Node) -> Dict[Node, int]:
    """Alias of :func:`bfs_distances` under the paper's terminology."""
    return bfs_distances(graph, source)


def mean_shortest_path_lengths(
    graph: Graph,
    landmarks: Optional[Iterable[Node]] = None,
    landmark_count: int = 32,
    seed: RngLike = None,
) -> Dict[Node, float]:
    """Per-node mean hop distance to a set of landmark nodes.

    The paper's Yelp/Twitter experiments estimate "average shortest path
    length" as a node-associated measure.  Computing exact all-pairs means is
    quadratic, so datasets precompute the mean distance to a fixed random
    landmark set — an unbiased estimate of each node's mean distance whose
    per-node values serve as the aggregate attribute.
    """
    nodes = graph.nodes()
    if not nodes:
        raise GraphError("no nodes")
    if landmarks is None:
        rng = ensure_rng(seed)
        count = min(landmark_count, len(nodes))
        picked = rng.choice(len(nodes), size=count, replace=False)
        landmarks = [nodes[int(i)] for i in picked]
    landmarks = list(landmarks)
    if not landmarks:
        raise GraphError("need at least one landmark")
    totals = {node: 0.0 for node in nodes}
    counts = {node: 0 for node in nodes}
    for landmark in landmarks:
        distances = bfs_distances(graph, landmark)
        for node, dist in distances.items():
            totals[node] += dist
            counts[node] += 1
    means: Dict[Node, float] = {}
    for node in nodes:
        if counts[node] == 0:
            raise GraphError(
                f"node {node} unreachable from all landmarks; "
                "run on a connected graph or pass reachable landmarks"
            )
        means[node] = totals[node] / counts[node]
    return means
