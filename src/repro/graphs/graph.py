"""A simple undirected graph with node attributes.

The class is intentionally small: adjacency sets keyed by integer node ids,
plus named per-node attribute maps.  Two design points are load-bearing for
the rest of the library:

* **Deterministic neighbor order.**  ``neighbors()`` returns a sorted tuple
  (cached until the node's adjacency changes).  Random walks draw from this
  tuple with a seeded generator, so a (graph, seed) pair fully determines a
  walk — a property the test suite and the experiment harness rely on.

* **Simple graphs only.**  The paper's model (§2.1) is a simple undirected
  graph; self-loops and parallel edges are rejected at insertion so that
  degree always equals ``len(neighbors)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import GraphError, NodeNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.csr import CSRGraph

Node = int


class Graph:
    """Simple undirected graph over hashable integer node ids.

    Parameters
    ----------
    name:
        Optional human-readable label used in experiment reports.

    Examples
    --------
    >>> g = Graph(name="triangle")
    >>> g.add_edges_from([(0, 1), (1, 2), (2, 0)])
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(0))
    [1, 2]
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._adjacency: Dict[Node, set[Node]] = {}
        self._neighbor_cache: Dict[Node, Tuple[Node, ...]] = {}
        self._edge_count = 0
        self._attributes: Dict[str, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add *node* if absent; adding an existing node is a no-op."""
        if node not in self._adjacency:
            self._adjacency[node] = set()

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in *nodes*."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not part of the paper's model;
            lazy self-loop behaviour belongs to the *transition design*,
            not the graph).
        """
        if u == v:
            raise GraphError(f"self-loop ({u}, {v}) not allowed in a simple graph")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._edge_count += 1
            self._neighbor_cache.pop(u, None)
            self._neighbor_cache.pop(v, None)

    def add_edges_from(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Add every edge in *edges* (duplicates are ignored)."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1
        self._neighbor_cache.pop(u, None)
        self._neighbor_cache.pop(v, None)

    def remove_node(self, node: Node) -> None:
        """Remove *node* and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If *node* is not in the graph.
        """
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        self._neighbor_cache.pop(node, None)
        for values in self._attributes.values():
            values.pop(node, None)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[Node, ...]:
        """All node ids in sorted order."""
        return tuple(sorted(self._adjacency))

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate edges once each, as ``(min, max)`` pairs in sorted order."""
        for u in sorted(self._adjacency):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Sorted tuple of *node*'s neighbors.

        Raises
        ------
        NodeNotFoundError
            If *node* is not in the graph.
        """
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        ordered = tuple(sorted(self._adjacency[node]))
        self._neighbor_cache[node] = ordered
        return ordered

    def degree(self, node: Node) -> int:
        """Number of neighbors of *node*."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return len(self._adjacency[node])

    def degrees(self) -> Dict[Node, int]:
        """Mapping of every node to its degree."""
        return {node: len(adj) for node, adj in self._adjacency.items()}

    def has_node(self, node: Node) -> bool:
        """True if *node* is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if the undirected edge ``(u, v)`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def number_of_nodes(self) -> int:
        """Node count ``|V|``."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Edge count ``|E|`` (each undirected edge counted once)."""
        return self._edge_count

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(adj) for adj in self._adjacency.values())

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return min(len(adj) for adj in self._adjacency.values())

    # ------------------------------------------------------------------
    # Node attributes
    # ------------------------------------------------------------------
    def set_attribute(self, name: str, values: Dict[Node, float]) -> None:
        """Attach attribute *name* with per-node *values*.

        Raises
        ------
        NodeNotFoundError
            If any key of *values* is not a node of the graph.
        """
        for node in values:
            if node not in self._adjacency:
                raise NodeNotFoundError(node)
        self._attributes[name] = dict(values)

    def get_attribute(self, name: str, node: Node) -> float:
        """Value of attribute *name* at *node*.

        Raises
        ------
        GraphError
            If the attribute is not defined.
        NodeNotFoundError
            If the node exists but carries no value for the attribute.
        """
        if name not in self._attributes:
            raise GraphError(f"attribute {name!r} is not defined on {self.name!r}")
        values = self._attributes[name]
        if node not in values:
            raise NodeNotFoundError(node)
        return values[node]

    def attribute_names(self) -> Tuple[str, ...]:
        """Names of all defined attributes, sorted."""
        return tuple(sorted(self._attributes))

    def attribute_values(self, name: str) -> Dict[Node, float]:
        """Copy of the full value map for attribute *name*."""
        if name not in self._attributes:
            raise GraphError(f"attribute {name!r} is not defined on {self.name!r}")
        return dict(self._attributes[name])

    def attribute_mean(self, name: str) -> float:
        """Exact population mean of attribute *name* over all nodes.

        This is the ground truth against which sampled AVG estimates are
        scored (the paper's relative-error measure, §2.4).
        """
        values = self.attribute_values(name)
        if len(values) != self.number_of_nodes():
            raise GraphError(
                f"attribute {name!r} is defined on {len(values)} of "
                f"{self.number_of_nodes()} nodes; mean would be misleading"
            )
        return float(sum(values.values())) / len(values)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )

    def copy(self, name: Optional[str] = None) -> "Graph":
        """Deep copy of structure and attributes."""
        clone = Graph(name=name if name is not None else self.name)
        clone.add_nodes_from(self._adjacency)
        for u, adj in self._adjacency.items():
            for v in adj:
                if u < v:
                    clone.add_edge(u, v)
        for attr, values in self._attributes.items():
            clone.set_attribute(attr, values)
        return clone

    def subgraph(self, nodes: Iterable[Node], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on *nodes* (attributes restricted accordingly)."""
        keep = set(nodes)
        for node in keep:
            if node not in self._adjacency:
                raise NodeNotFoundError(node)
        sub = Graph(name=name if name is not None else f"{self.name}-sub")
        sub.add_nodes_from(keep)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        for attr, values in self._attributes.items():
            restricted = {n: x for n, x in values.items() if n in keep}
            if restricted:
                sub.set_attribute(attr, restricted)
        return sub

    def compile(self) -> "CSRGraph":
        """Freeze into a :class:`~repro.graphs.csr.CSRGraph` for batch walking.

        The CSR form is a read-only snapshot: later mutations of this graph
        do not propagate to it.  Compile once the topology is final and the
        workload shifts to throughput (many walks, vectorized estimation).
        """
        from repro.graphs.csr import CSRGraph

        return CSRGraph.from_graph(self)

    def relabeled(self, name: Optional[str] = None) -> "Graph":
        """Copy with nodes relabeled to ``0..n-1`` in sorted-id order.

        The dense Markov machinery indexes matrices by node id, so
        experiments normalize graphs through this method first.
        """
        mapping = {node: index for index, node in enumerate(self.nodes())}
        out = Graph(name=name if name is not None else self.name)
        out.add_nodes_from(mapping.values())
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        for attr, values in self._attributes.items():
            out.set_attribute(attr, {mapping[n]: x for n, x in values.items()})
        return out
