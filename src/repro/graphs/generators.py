"""Graph generators for every model used in the paper, plus supports.

The paper's case studies (§4.2, Figures 2–3) use cycle, hypercube, barbell,
balanced binary tree, and Barabási–Albert graphs; its synthetic experiments
(§7, Figure 11 and Figure 12 / Table 1) use Barabási–Albert graphs.  The
remaining generators back tests, property-based fuzzing, and the dataset
surrogates.

All generators take explicit sizes and an optional seed and return a
:class:`~repro.graphs.graph.Graph` with nodes labeled ``0..n-1``.
"""

from __future__ import annotations

import itertools

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng


def cycle_graph(n: int) -> Graph:
    """Cycle of *n* nodes; diameter ``floor(n/2)`` (paper §4.2)."""
    if n < 3:
        raise ConfigurationError(f"a cycle needs at least 3 nodes, got {n}")
    g = Graph(name=f"cycle-{n}")
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def complete_graph(n: int) -> Graph:
    """Complete graph on *n* nodes."""
    if n < 1:
        raise ConfigurationError(f"need at least 1 node, got {n}")
    g = Graph(name=f"complete-{n}")
    g.add_node(0)
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def hypercube_graph(k: int) -> Graph:
    """*k*-dimensional hypercube: ``2**k`` nodes, diameter *k* (paper §4.2).

    Nodes are the integers ``0..2**k - 1`` read as k-bit strings; two nodes
    are adjacent iff their labels differ in exactly one bit.
    """
    if k < 1:
        raise ConfigurationError(f"hypercube dimension must be >= 1, got {k}")
    g = Graph(name=f"hypercube-{k}")
    for node in range(2**k):
        g.add_node(node)
        for bit in range(k):
            neighbor = node ^ (1 << bit)
            if neighbor > node:
                g.add_edge(node, neighbor)
    return g


def barbell_graph(n: int) -> Graph:
    """Paper-style barbell: two cliques of size ``(n-1)/2`` joined by a node.

    The paper (§4.2) defines the barbell on *n* nodes as two copies of a
    complete graph of size ``(n-1)/2`` connected through one central node,
    giving diameter 3.  *n* must therefore be odd and at least 5.
    """
    if n < 5 or n % 2 == 0:
        raise ConfigurationError(
            f"paper barbell needs odd n >= 5 (two cliques plus a center), got {n}"
        )
    clique = (n - 1) // 2
    g = Graph(name=f"barbell-{n}")
    left = list(range(clique))
    right = list(range(clique, 2 * clique))
    center = 2 * clique
    for u, v in itertools.combinations(left, 2):
        g.add_edge(u, v)
    for u, v in itertools.combinations(right, 2):
        g.add_edge(u, v)
    g.add_edge(left[0], center)
    g.add_edge(right[0], center)
    return g


def balanced_tree_graph(height: int) -> Graph:
    """Balanced binary tree of the given *height*; diameter ``2 * height``.

    Height 0 is a single root.  A tree of height ``h`` has ``2**(h+1) - 1``
    nodes (paper §4.2).
    """
    if height < 0:
        raise ConfigurationError(f"height must be >= 0, got {height}")
    g = Graph(name=f"tree-h{height}")
    g.add_node(0)
    total = 2 ** (height + 1) - 1
    for child in range(1, total):
        parent = (child - 1) // 2
        g.add_edge(parent, child)
    return g


def star_graph(n: int) -> Graph:
    """Star: one hub (node 0) connected to ``n-1`` leaves."""
    if n < 2:
        raise ConfigurationError(f"a star needs at least 2 nodes, got {n}")
    g = Graph(name=f"star-{n}")
    for leaf in range(1, n):
        g.add_edge(0, leaf)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` 4-neighbor lattice."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid needs positive dimensions, got {rows}x{cols}")
    g = Graph(name=f"grid-{rows}x{cols}")
    g.add_node(0)

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(node_id(r, c), node_id(r, c + 1))
            if r + 1 < rows:
                g.add_edge(node_id(r, c), node_id(r + 1, c))
    return g


def regular_graph(n: int, k: int, seed: RngLike = None) -> Graph:
    """Random *k*-regular graph on *n* nodes via configuration + repair.

    Pairs degree stubs randomly, then repairs self-loops and duplicate
    edges by double-edge swaps with randomly chosen good edges (swapping
    preserves all degrees).  Rejecting whole matchings would take
    ``exp(Θ(k²))`` retries for larger *k*; repair is near-linear.
    Feasibility requires ``n*k`` even and ``k < n``.
    """
    if k < 0 or k >= n or (n * k) % 2 != 0:
        raise ConfigurationError(
            f"no simple {k}-regular graph on {n} nodes (need n*k even, k < n)"
        )
    rng = ensure_rng(seed)
    for _ in range(50):
        stubs = [node for node in range(n) for _ in range(k)]
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        edges: set[tuple[int, int]] = set()
        bad: list[tuple[int, int]] = []
        for u, v in pairs:
            key = (min(u, v), max(u, v))
            if u == v or key in edges:
                bad.append((u, v))
            else:
                edges.add(key)
        repairs_left = 200 * (len(bad) + 1)
        edge_list = list(edges)
        while bad and repairs_left > 0 and edge_list:
            repairs_left -= 1
            u, v = bad[-1]
            x, y = edge_list[int(rng.integers(0, len(edge_list)))]
            # Swap (u,v)+(x,y) -> (u,x)+(v,y); accept only if both new
            # edges are valid and currently absent.
            a = (min(u, x), max(u, x))
            b = (min(v, y), max(v, y))
            if u == x or v == y or a in edges or b in edges or a == b:
                continue
            bad.pop()
            edges.discard((min(x, y), max(x, y)))
            edge_list.remove((min(x, y), max(x, y)))
            edges.add(a)
            edges.add(b)
            edge_list.extend((a, b))
        if not bad:
            g = Graph(name=f"regular-{n}-{k}")
            g.add_nodes_from(range(n))
            g.add_edges_from(edges)
            return g
    raise ConfigurationError(
        f"failed to build a simple {k}-regular graph on {n} nodes"
    )


def erdos_renyi_graph(n: int, p: float, seed: RngLike = None) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = Graph(name=f"er-{n}-{p:g}")
    g.add_nodes_from(range(n))
    for u in range(n):
        # Vectorized draw per row keeps this O(n^2) loop usable at n ~ 10^4.
        draws = rng.random(n - u - 1)
        for offset, draw in enumerate(draws):
            if draw < p:
                g.add_edge(u, u + 1 + offset)
    return g


def watts_strogatz_graph(n: int, k: int, beta: float, seed: RngLike = None) -> Graph:
    """Watts–Strogatz small-world graph (ring of *k* neighbors, rewire prob *beta*)."""
    if k % 2 != 0 or k < 2 or k >= n:
        raise ConfigurationError(f"k must be even with 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    rng = ensure_rng(seed)
    g = Graph(name=f"ws-{n}-{k}-{beta:g}")
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(1, k // 2 + 1):
            g.add_edge(i, (i + j) % n)
    for i in range(n):
        for j in range(1, k // 2 + 1):
            if rng.random() < beta:
                old = (i + j) % n
                if not g.has_edge(i, old):
                    continue
                candidates = [
                    w for w in range(n) if w != i and not g.has_edge(i, w)
                ]
                if not candidates:
                    continue
                new = candidates[int(rng.integers(0, len(candidates)))]
                g.remove_edge(i, old)
                g.add_edge(i, new)
    return g


def barabasi_albert_graph(n: int, m: int, seed: RngLike = None) -> Graph:
    """Barabási–Albert preferential-attachment graph (paper's scale-free model).

    Starts from a star on ``m + 1`` nodes, then attaches each new node to *m*
    existing nodes chosen proportionally to degree (without replacement).
    This matches the construction the paper relies on via NetworkX [16] with
    "number of edges to attach from a new node" = *m*.
    """
    if m < 1 or m >= n:
        raise ConfigurationError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    g = Graph(name=f"ba-{n}-{m}")
    # Seed clique-free core: a star keeps initial degrees non-degenerate.
    for leaf in range(1, m + 1):
        g.add_edge(0, leaf)
    # repeated_nodes holds one entry per edge endpoint: sampling uniformly
    # from it is sampling proportional to degree.
    repeated_nodes: list[int] = []
    for leaf in range(1, m + 1):
        repeated_nodes.extend((0, leaf))
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            targets.add(pick)
        for target in targets:
            g.add_edge(new_node, target)
            repeated_nodes.extend((new_node, target))
    return g


def directed_preferential_graph(
    n: int, m: int, seed: RngLike = None
) -> list[tuple[int, int]]:
    """Directed preferential-attachment edge list (Twitter surrogate input).

    Each new node directs *m* edges toward existing nodes chosen by
    (in-degree + 1), and receives reciprocal edges back with probability
    proportional to mutual-follow behaviour (modeled as 0.5).  The result is
    a directed edge list; :func:`repro.datasets.surrogates.twitter_surrogate`
    reduces it to the mutual undirected graph exactly as the paper does for
    Twitter (§2.1).
    """
    if m < 1 or m >= n:
        raise ConfigurationError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    edges: list[tuple[int, int]] = []
    in_weight = [1.0] * n
    for new_node in range(1, n):
        pool = min(new_node, m)
        weights = in_weight[:new_node]
        total = sum(weights)
        chosen: set[int] = set()
        while len(chosen) < pool:
            r = rng.random() * total
            acc = 0.0
            for node in range(new_node):
                acc += weights[node]
                if acc >= r:
                    chosen.add(node)
                    break
        for target in chosen:
            edges.append((new_node, target))
            in_weight[target] += 1.0
            if rng.random() < 0.5:
                edges.append((target, new_node))
                in_weight[new_node] += 1.0
    return edges
