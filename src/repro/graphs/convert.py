"""Converters between :class:`repro.graphs.Graph` and other representations.

Two boundaries live here:

* NetworkX — interoperability and cross-validation in tests; all
  algorithms in this library run on the native structures.
* :class:`~repro.graphs.csr.CSRGraph` — the frozen array form the batch
  walk engine consumes.  :func:`graph_to_csr` / :func:`csr_to_graph` are
  exact inverses (nodes, edges, and attributes all round-trip).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph


def graph_to_csr(graph: Graph) -> CSRGraph:
    """Freeze *graph* into CSR form (alias of :meth:`Graph.compile`)."""
    return CSRGraph.from_graph(graph)


def csr_to_graph(csr: CSRGraph, name: str | None = None) -> Graph:
    """Thaw a :class:`CSRGraph` back into a mutable :class:`Graph`."""
    return csr.to_graph(name=name)


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to an undirected :class:`networkx.Graph` with attributes."""
    out = nx.Graph(name=graph.name)
    out.add_nodes_from(graph.nodes())
    out.add_edges_from(graph.edges())
    for attr in graph.attribute_names():
        values = graph.attribute_values(attr)
        nx.set_node_attributes(out, values, name=attr)
    return out


def from_networkx(nx_graph: "nx.Graph", name: str | None = None) -> Graph:
    """Convert an undirected NetworkX graph (must have integer node labels).

    Raises
    ------
    GraphError
        If the input is directed, has a self-loop, or has non-int labels.
    """
    if nx_graph.is_directed():
        raise GraphError("convert directed graphs via the mutual-edge reduction first")
    g = Graph(name=name if name is not None else (nx_graph.name or "graph"))
    for node in nx_graph.nodes():
        if not isinstance(node, int):
            raise GraphError(f"node labels must be ints, got {node!r}")
        g.add_node(node)
    for u, v in nx_graph.edges():
        if u == v:
            raise GraphError(f"self-loop on {u} not supported")
        g.add_edge(u, v)
    # Per-attribute dicts: only copy attributes present on every node to keep
    # attribute_mean well-defined.
    attr_names: set[str] = set()
    for _, data in nx_graph.nodes(data=True):
        attr_names.update(data)
    for attr in sorted(attr_names):
        values = {
            node: data[attr]
            for node, data in nx_graph.nodes(data=True)
            if attr in data
        }
        g.set_attribute(attr, values)
    return g
