"""Shared-memory CSR slabs: one topology, any number of processes.

A frozen :class:`~repro.graphs.csr.CSRGraph` is four int64 arrays — which
makes it mmap-friendly by construction.  This module packs those arrays
back-to-back into a single :class:`multiprocessing.shared_memory`
segment so that N worker processes can *attach* the same topology with
zero per-worker copies: every attached graph's ``indptr`` / ``indices`` /
``degrees`` / ``node_ids`` are NumPy views straight into the one kernel
mapping.  This is the substrate :class:`repro.walks.parallel.ShardedWalkEngine`
fans its walk batches over.

Round trip::

    shared = SharedCSR.create(csr)          # owner process
    spec = shared.spec                      # picklable, ships to workers
    attached = SharedCSR.attach(spec)       # worker process
    attached.graph                          # zero-copy CSRGraph
    ...
    attached.close()                        # worker: drop the mapping
    shared.close()                          # owner: drop mapping AND unlink

The round trip is lossless: the attached graph has the same nodes, edges,
name, and per-node attributes as the original (attributes ride along in
the picklable spec as plain dicts — they are metadata-sized and are
*copied*, not shared; only the four topology arrays are zero-copy).

**Lifetime and cleanup.**  A POSIX shared-memory segment is a kernel
object with a filesystem name (``/dev/shm/psm_…``); it outlives every
process that maps it until someone calls ``unlink``.  The rules here:

* The **creating** process owns the segment.  Its :meth:`SharedCSR.close`
  both closes the local mapping and unlinks the name — after that no new
  attach can succeed, and the memory is freed once the last extant
  mapping closes.  ``SharedCSR`` is a context manager, and a garbage
  collection finalizer backstops ``close`` so an abandoned handle does
  not leak ``/dev/shm`` entries for the life of the machine.
* **Attaching** processes must not unlink; their :meth:`close` only drops
  the local mapping.  (Workers share the owner's ``resource_tracker``
  process, whose cache is a set — the attach-side auto-registration that
  Python 3.11 performs is therefore an idempotent no-op, and crash
  cleanup stays the owner's tracker's job.)
* After ``close``, :attr:`SharedCSR.graph` raises instead of handing out
  a new view.  Array views handed out *before* close stay readable —
  they pin the kernel mapping until the last of them is garbage
  collected — but the segment name is gone, so the memory is reclaimed
  the moment they die.

Segment names are randomized by the stdlib, so concurrent engines never
collide; tests assert no ``/dev/shm`` entries survive an engine's close.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, Node

#: Names of every segment created by this process and not yet unlinked.
#: Tests read this to assert engines clean up after themselves.
_LIVE_SEGMENTS: Set[str] = set()

_FIELDS = ("indptr", "indices", "degrees", "node_ids")


@dataclass(frozen=True)
class CSRSlabSpec:
    """Picklable recipe for attaching one shared CSR slab.

    Everything a worker needs to rebuild the graph: the segment name, the
    per-array element offsets/lengths inside the segment's one int64
    carpet, and the (copied) graph metadata.
    """

    segment: str
    lengths: Tuple[int, int, int, int]
    name: str
    attributes: Dict[str, Dict[Node, float]]

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Element offset of each field, in declaration order."""
        out = [0]
        for length in self.lengths[:-1]:
            out.append(out[-1] + length)
        return tuple(out)

    @property
    def total_elements(self) -> int:
        """Total int64 elements across all four arrays."""
        return sum(self.lengths)


def _views(spec: CSRSlabSpec, buf) -> Dict[str, np.ndarray]:
    """The four field views over one segment buffer, zero-copy."""
    carpet = np.frombuffer(buf, dtype=np.int64, count=spec.total_elements)
    views: Dict[str, np.ndarray] = {}
    for field, offset, length in zip(_FIELDS, spec.offsets, spec.lengths):
        views[field] = carpet[offset : offset + length]
    return views


class SharedCSR:
    """Handle on one shared-memory CSR slab (owner or attached).

    Build with :meth:`create` in the owning process or :meth:`attach` in a
    worker; never construct directly.  See the module docstring for the
    lifetime rules.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: CSRSlabSpec,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._graph: Optional[CSRGraph] = None
        self._closed = False
        # Finalizer (not __del__): runs the cleanup even if this handle
        # dies in a reference cycle, and never resurrects the object.
        self._finalizer = weakref.finalize(
            self, SharedCSR._cleanup, shm, owner, spec.segment
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, csr: CSRGraph) -> "SharedCSR":
        """Copy *csr*'s arrays into a fresh segment (the one-time cost).

        The returned handle owns the segment; its :attr:`graph` is a
        zero-copy view usable in this process, and :attr:`spec` ships to
        workers.
        """
        arrays = {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "degrees": csr.degrees,
            "node_ids": csr.node_ids,
        }
        for field, array in arrays.items():
            if array.dtype != np.int64:  # pragma: no cover - CSRGraph invariant
                raise GraphError(f"{field} must be int64, got {array.dtype}")
        spec = CSRSlabSpec(
            segment="",
            lengths=tuple(int(arrays[f].size) for f in _FIELDS),
            name=csr.name,
            attributes={
                attr: csr.attribute_values(attr) for attr in csr.attribute_names()
            },
        )
        # A zero-length segment is illegal; an empty graph still shares
        # its one-element indptr, so size is always positive.
        nbytes = max(1, spec.total_elements * np.dtype(np.int64).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = CSRSlabSpec(
            segment=shm.name,
            lengths=spec.lengths,
            name=spec.name,
            attributes=spec.attributes,
        )
        for field, view in _views(spec, shm.buf).items():
            view[...] = arrays[field]
        _LIVE_SEGMENTS.add(shm.name)
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: CSRSlabSpec) -> "SharedCSR":
        """Map an existing slab (worker side); never unlinks on close."""
        shm = shared_memory.SharedMemory(name=spec.segment, create=False)
        # Python 3.11 registers the segment with the resource tracker on
        # attach as well as create.  Workers share the owner's tracker
        # process (its fd travels through spawn's preparation data), and
        # the tracker's cache is a set — so the attach-side registration
        # is an idempotent no-op, and the owner's unlink unregisters the
        # name exactly once.  Unregistering here instead would strip the
        # owner's crash-cleanup guarantee.
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> CSRSlabSpec:
        """The picklable attach recipe for this slab."""
        return self._spec

    @property
    def owner(self) -> bool:
        """True in the process that created (and must unlink) the slab."""
        return self._owner

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; the graph is then unusable."""
        return self._closed

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the shared mapping (cached)."""
        if self._closed:
            raise GraphError(
                f"shared CSR slab {self._spec.segment!r} is closed; "
                "its arrays would view freed memory"
            )
        if self._graph is None:
            views = _views(self._spec, self._shm.buf)
            self._graph = CSRGraph.from_validated_parts(
                views["indptr"],
                views["indices"],
                views["degrees"],
                views["node_ids"],
                name=self._spec.name,
                attributes=self._spec.attributes,
            )
        return self._graph

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    @staticmethod
    def _cleanup(shm: shared_memory.SharedMemory, owner: bool, name: str) -> None:
        try:
            shm.close()
        except BufferError:
            # Outstanding numpy views still pin the mapping.  Defuse the
            # handle instead of failing: drop its buffer references (the
            # arrays keep the mmap alive until they die, then the OS
            # reclaims it) and close the fd, so ``SharedMemory.__del__``
            # has nothing left to retry.  The unlink below still frees
            # the segment *name* immediately.
            shm._buf = None
            shm._mmap = None
            if getattr(shm, "_fd", -1) >= 0:
                os.close(shm._fd)
                shm._fd = -1
        if owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_SEGMENTS.discard(name)

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the segment name.

        Idempotent.  Every view handed out via :attr:`graph` becomes
        invalid — call only once nothing references the arrays.
        """
        if self._closed:
            return
        self._closed = True
        self._graph = None
        self._finalizer()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return f"SharedCSR(segment={self._spec.segment!r}, {state})"
