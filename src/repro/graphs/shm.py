"""Shared CSR slabs: one topology, any number of processes, two storages.

A frozen :class:`~repro.graphs.csr.CSRGraph` is four int64 arrays — which
makes it mmap-friendly by construction.  This module packs those arrays
back-to-back into a single *slab* so that N worker processes can *attach*
the same topology with zero per-worker copies: every attached graph's
``indptr`` / ``indices`` / ``degrees`` / ``node_ids`` are NumPy views
straight into one kernel mapping.  This is the substrate
:class:`repro.walks.parallel.ShardedWalkEngine` fans its walk batches over.

Two storage backends share one spec, one attach path, and one lifetime
discipline (``CSRSlabSpec.storage`` selects; nothing above this layer
forks on the choice):

* ``"shm"`` — a POSIX shared-memory segment (``/dev/shm/psm_…``).  Fast,
  anonymous-ish, RAM-backed; dies with the machine and must be rebuilt
  after a restart.
* ``"file"`` — a single mmap-backed ``*.slab`` file under a caller-chosen
  ``slab_dir``, created with the same write-temp-fsync-rename discipline
  as :mod:`repro.bench.io` (a crash mid-create leaves at most a
  ``.*.tmp``, never a half-written slab a later attach could map).
  Owner and attachers map it ``ACCESS_READ``: views are read-only and
  walk straight from the page cache, so slabs can exceed RAM and —
  paired with the checkpoint's path+digest record — outlive the process
  that built them.

Round trip::

    shared = SharedCSR.create(csr)          # owner process (storage="shm")
    shared = SharedCSR.create(csr, storage="file", slab_dir="slabs/")
    spec = shared.spec                      # picklable, ships to workers
    attached = SharedCSR.attach(spec)       # worker process, either storage
    attached.graph                          # zero-copy CSRGraph
    ...
    attached.close()                        # worker: drop the mapping
    shared.close()                          # owner: drop mapping AND unlink

The round trip is lossless: the attached graph has the same nodes, edges,
name, and per-node attributes as the original (attributes ride along in
the picklable spec as plain dicts — they are metadata-sized and are
*copied*, not shared; only the four topology arrays are zero-copy).

**Lifetime and cleanup.**  Both storages are kernel objects with a
filesystem name that outlives every process mapping them until someone
unlinks it.  The rules are identical for both:

* The **creating** process owns the slab.  Its :meth:`SharedCSR.close`
  both closes the local mapping and unlinks the name — after that no new
  attach can succeed, and the memory is freed once the last extant
  mapping closes.  ``SharedCSR`` is a context manager, and a garbage
  collection finalizer backstops ``close`` so an abandoned handle does
  not leak ``/dev/shm`` entries (or stray ``*.slab`` files) for the life
  of the machine.
* **Attaching** processes must not unlink; their :meth:`close` only drops
  the local mapping.  (Workers share the owner's ``resource_tracker``
  process, whose cache is a set — the attach-side auto-registration that
  Python 3.11 performs is therefore an idempotent no-op, and crash
  cleanup stays the owner's tracker's job.)
* After ``close``, :attr:`SharedCSR.graph` raises instead of handing out
  a new view.  Array views handed out *before* close stay readable —
  they pin the kernel mapping until the last of them is garbage
  collected — but the slab name is gone, so the memory is reclaimed the
  moment they die.
* :meth:`SharedCSR.adopt` is the resume-side exception: it re-attaches a
  slab that already exists on disk (a persisted file slab recorded in a
  checkpoint) *as owner*, taking over unlink duty from the process that
  crashed.

Names never collide: the stdlib randomizes shm segment names and file
slabs get a fresh uuid per create.  Tests assert no ``/dev/shm`` entry
and no ``*.slab`` file survives an engine's close.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import tempfile
import uuid
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graphs.csr import CSRGraph, Node

#: Names of every slab created by this process and not yet unlinked —
#: shm segment names and file-slab paths alike.  Tests read this to
#: assert engines clean up after themselves.
_LIVE_SEGMENTS: Set[str] = set()

_FIELDS = ("indptr", "indices", "degrees", "node_ids")

#: The storage backends ``CSRSlabSpec.storage`` may name.
STORAGES = ("shm", "file")

#: File-backed slabs end with this; hygiene checks grep for it.
SLAB_SUFFIX = ".slab"

_ITEMSIZE = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class CSRSlabSpec:
    """Picklable recipe for attaching one shared CSR slab.

    Everything a worker needs to rebuild the graph: the slab's name (an
    shm segment name or a file path, per :attr:`storage`), the per-array
    element offsets/lengths inside the slab's one int64 carpet, and the
    (copied) graph metadata.
    """

    segment: str
    lengths: Tuple[int, int, int, int]
    name: str
    attributes: Dict[str, Dict[Node, float]]
    storage: str = field(default="shm")

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Element offset of each field, in declaration order."""
        out = [0]
        for length in self.lengths[:-1]:
            out.append(out[-1] + length)
        return tuple(out)

    @property
    def total_elements(self) -> int:
        """Total int64 elements across all four arrays."""
        return sum(self.lengths)

    @property
    def total_bytes(self) -> int:
        """Size of the carpet in bytes (always positive: indptr >= 1)."""
        return self.total_elements * _ITEMSIZE

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (checkpoints persist file-slab specs)."""
        return {
            "segment": self.segment,
            "lengths": list(self.lengths),
            "name": self.name,
            "attributes": {
                attr: {str(node): float(value) for node, value in values.items()}
                for attr, values in self.attributes.items()
            },
            "storage": self.storage,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "CSRSlabSpec":
        """Inverse of :meth:`to_dict`; re-coerces the node keys JSON
        stringified back to ints."""
        lengths = tuple(int(n) for n in document["lengths"])
        if len(lengths) != len(_FIELDS):
            raise GraphError(f"slab spec needs {len(_FIELDS)} lengths, got {lengths}")
        return cls(
            segment=str(document["segment"]),
            lengths=lengths,
            name=str(document["name"]),
            attributes={
                str(attr): {int(node): float(value) for node, value in values.items()}
                for attr, values in dict(document["attributes"]).items()
            },
            storage=str(document.get("storage", "shm")),
        )


def _views(spec: CSRSlabSpec, buf) -> Dict[str, np.ndarray]:
    """The four field views over one slab buffer, zero-copy."""
    carpet = np.frombuffer(buf, dtype=np.int64, count=spec.total_elements)
    views: Dict[str, np.ndarray] = {}
    for field_name, offset, length in zip(_FIELDS, spec.offsets, spec.lengths):
        views[field_name] = carpet[offset : offset + length]
    return views


# ----------------------------------------------------------------------
# Storage blocks: one buffer + close/unlink per backend
# ----------------------------------------------------------------------
def _defuse_shared_memory(shm: shared_memory.SharedMemory) -> None:
    """Neutralize a ``SharedMemory`` handle whose ``close()`` raised
    ``BufferError`` (outstanding numpy views still pin the mapping).

    The handle's buffer attributes are CPython internals, not API — they
    have already shifted across versions (3.13 grew ``track=``), so every
    poke is guarded per attribute: whatever exists is dropped, whatever
    doesn't is skipped.  The views keep the mmap alive until they die,
    then the OS reclaims it; ``SharedMemory.__del__`` is left with
    nothing to retry.
    """
    for attr in ("_buf", "_mmap"):
        if getattr(shm, attr, None) is not None:
            try:
                setattr(shm, attr, None)
            except AttributeError:  # pragma: no cover - slotted/readonly attr
                pass
    fd = getattr(shm, "_fd", None)
    if isinstance(fd, int) and fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed elsewhere
            pass
        try:
            shm._fd = -1
        except AttributeError:  # pragma: no cover - slotted/readonly attr
            pass


def _unregister_tracker(shm: shared_memory.SharedMemory) -> None:
    """Best-effort ``resource_tracker.unregister`` for *shm*'s name.

    CPython's ``unlink()`` unregisters only after a successful
    ``shm_unlink``; when the segment name is already gone the tracker
    still holds it and warns about a "leaked shared_memory" object at
    interpreter exit.  Guarded throughout: tracker layout is not API.
    """
    name = getattr(shm, "_name", None)
    if not name:
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


class _ShmBlock:
    """A POSIX shared-memory segment behind the uniform block interface."""

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm

    @property
    def buf(self):
        return self._shm.buf

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:
            _defuse_shared_memory(self._shm)

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:
            _unregister_tracker(self._shm)


class _FileBlock:
    """An mmap-backed slab file behind the uniform block interface."""

    def __init__(self, path: str, mapping: mmap.mmap) -> None:
        self._path = path
        self._mmap: Optional[mmap.mmap] = mapping

    @property
    def buf(self):
        if self._mmap is None:  # pragma: no cover - guarded by SharedCSR.closed
            raise GraphError(f"slab file {self._path!r} is no longer mapped")
        return self._mmap

    def close(self) -> None:
        if self._mmap is None:
            return
        mapping, self._mmap = self._mmap, None
        try:
            mapping.close()
        except BufferError:
            # Leaked views pin the mapping.  Dropping our reference is
            # the whole defusal: the arrays keep the mmap object alive
            # until they die, then the OS reclaims the pages.  (The file
            # descriptor was closed right after mapping — an mmap needs
            # no fd once constructed.)
            pass

    def unlink(self) -> None:
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass


def _write_slab_file(path: Path, chunks: Iterable[bytes]) -> None:
    """Write *chunks* to *path* via temp-file + fsync + atomic rename.

    Same discipline as :func:`repro.bench.io.atomic_write_json`: readers
    only ever see a complete slab, and a crash mid-write leaves at most a
    ``.{name}.*.tmp`` orphan (swept by hygiene checks), never a torn
    ``*.slab``.
    """
    fd, tmp_path = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - temp already gone
            pass
        raise


def _open_slab_file(path: str, expected_bytes: int) -> _FileBlock:
    """Map *path* read-only, validating it can hold the spec's carpet."""
    fd = os.open(path, os.O_RDONLY)
    try:
        size = os.fstat(fd).st_size
        if size < expected_bytes:
            raise GraphError(
                f"slab file {path!r} holds {size} bytes; "
                f"spec expects {expected_bytes}"
            )
        mapping = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
    finally:
        os.close(fd)
    return _FileBlock(path, mapping)


def compute_file_digest(path: Union[str, Path]) -> str:
    """sha256 hex digest of a slab file's bytes.

    The checkpoint records this at capture time; resume recomputes it
    before re-attaching, so a tampered or torn slab falls back to
    rebuild-from-rows instead of publishing a wrong graph.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class SharedCSR:
    """Handle on one shared CSR slab (owner or attached, either storage).

    Build with :meth:`create` in the owning process, :meth:`attach` in a
    worker, or :meth:`adopt` when resuming onto a persisted file slab;
    never construct directly.  See the module docstring for the lifetime
    rules.
    """

    def __init__(
        self,
        block: Union[_ShmBlock, _FileBlock],
        spec: CSRSlabSpec,
        owner: bool,
    ) -> None:
        self._block = block
        self._spec = spec
        self._owner = owner
        self._graph: Optional[CSRGraph] = None
        self._closed = False
        # Finalizer (not __del__): runs the cleanup even if this handle
        # dies in a reference cycle, and never resurrects the object.
        self._finalizer = weakref.finalize(
            self, SharedCSR._cleanup, block, owner, spec.segment
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        csr: CSRGraph,
        *,
        storage: str = "shm",
        slab_dir: Optional[Union[str, Path]] = None,
    ) -> "SharedCSR":
        """Copy *csr*'s arrays into a fresh slab (the one-time cost).

        The returned handle owns the slab; its :attr:`graph` is a
        zero-copy view usable in this process, and :attr:`spec` ships to
        workers.  ``storage="file"`` writes one ``*.slab`` file under
        *slab_dir* (created if missing) and maps it read-only —
        ``storage="shm"`` keeps today's ``/dev/shm`` semantics, where the
        owner's views are writable.
        """
        if storage not in STORAGES:
            raise ConfigurationError(
                f"unknown slab storage {storage!r}; expected one of {STORAGES}"
            )
        arrays = {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "degrees": csr.degrees,
            "node_ids": csr.node_ids,
        }
        for field_name, array in arrays.items():
            if array.dtype != np.int64:  # pragma: no cover - CSRGraph invariant
                raise GraphError(f"{field_name} must be int64, got {array.dtype}")
        lengths = tuple(int(arrays[f].size) for f in _FIELDS)
        attributes = {
            attr: csr.attribute_values(attr) for attr in csr.attribute_names()
        }
        if storage == "shm":
            # A zero-length segment is illegal; an empty graph still
            # shares its one-element indptr, so size is always positive.
            nbytes = max(1, sum(lengths) * _ITEMSIZE)
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            spec = CSRSlabSpec(
                segment=shm.name,
                lengths=lengths,
                name=csr.name,
                attributes=attributes,
                storage="shm",
            )
            for field_name, view in _views(spec, shm.buf).items():
                view[...] = arrays[field_name]
            block: Union[_ShmBlock, _FileBlock] = _ShmBlock(shm)
        else:
            if slab_dir is None:
                raise ConfigurationError("storage='file' requires a slab_dir")
            directory = Path(slab_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"csr-{uuid.uuid4().hex}{SLAB_SUFFIX}"
            _write_slab_file(path, (arrays[f].tobytes() for f in _FIELDS))
            spec = CSRSlabSpec(
                segment=str(path),
                lengths=lengths,
                name=csr.name,
                attributes=attributes,
                storage="file",
            )
            block = _open_slab_file(str(path), spec.total_bytes)
        _LIVE_SEGMENTS.add(spec.segment)
        return cls(block, spec, owner=True)

    @classmethod
    def attach(cls, spec: CSRSlabSpec) -> "SharedCSR":
        """Map an existing slab (worker side); never unlinks on close."""
        return cls(cls._open_block(spec), spec, owner=False)

    @classmethod
    def adopt(cls, spec: CSRSlabSpec) -> "SharedCSR":
        """Re-attach an existing slab **as owner**, taking unlink duty.

        The resume path: a checkpoint recorded a persisted file slab, the
        process that created it is gone, and whoever re-attaches must
        also retire it.  The slab joins this process's live-segment
        ledger exactly as if :meth:`create` had built it.
        """
        block = cls._open_block(spec)
        _LIVE_SEGMENTS.add(spec.segment)
        return cls(block, spec, owner=True)

    @classmethod
    def _open_block(cls, spec: CSRSlabSpec) -> Union[_ShmBlock, _FileBlock]:
        """Open *spec*'s slab; the single fork on storage kind."""
        if spec.storage == "file":
            return _open_slab_file(spec.segment, spec.total_bytes)
        if spec.storage != "shm":
            raise ConfigurationError(
                f"unknown slab storage {spec.storage!r}; expected one of {STORAGES}"
            )
        shm = shared_memory.SharedMemory(name=spec.segment, create=False)
        # Python 3.11 registers the segment with the resource tracker on
        # attach as well as create.  Workers share the owner's tracker
        # process (its fd travels through spawn's preparation data), and
        # the tracker's cache is a set — so the attach-side registration
        # is an idempotent no-op, and the owner's unlink unregisters the
        # name exactly once.  Unregistering here instead would strip the
        # owner's crash-cleanup guarantee.
        return _ShmBlock(shm)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> CSRSlabSpec:
        """The picklable attach recipe for this slab."""
        return self._spec

    @property
    def storage(self) -> str:
        """Which backend holds the slab: ``"shm"`` or ``"file"``."""
        return self._spec.storage

    @property
    def owner(self) -> bool:
        """True in the process that created (and must unlink) the slab."""
        return self._owner

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; the graph is then unusable."""
        return self._closed

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the shared mapping (cached)."""
        if self._closed:
            raise GraphError(
                f"shared CSR slab {self._spec.segment!r} is closed; "
                "its arrays would view freed memory"
            )
        if self._graph is None:
            views = _views(self._spec, self._block.buf)
            self._graph = CSRGraph.from_validated_parts(
                views["indptr"],
                views["indices"],
                views["degrees"],
                views["node_ids"],
                name=self._spec.name,
                attributes=self._spec.attributes,
            )
        return self._graph

    def content_digest(self) -> str:
        """sha256 over the slab's carpet bytes (the four arrays in order).

        Matches :func:`compute_file_digest` of the backing file for
        file-backed slabs — the checkpoint invariant resume validates.
        """
        if self._closed:
            raise GraphError(
                f"shared CSR slab {self._spec.segment!r} is closed; "
                "nothing left to digest"
            )
        view = memoryview(self._block.buf)[: self._spec.total_bytes]
        try:
            return hashlib.sha256(view).hexdigest()
        finally:
            view.release()

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    @staticmethod
    def _cleanup(
        block: Union[_ShmBlock, _FileBlock], owner: bool, segment: str
    ) -> None:
        # Block.close() absorbs BufferError from leaked views (each
        # backend defuses its own way); the owner's unlink below still
        # frees the slab *name* immediately.
        block.close()
        if owner:
            block.unlink()
            _LIVE_SEGMENTS.discard(segment)

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the slab name.

        Idempotent.  Every view handed out via :attr:`graph` becomes
        invalid — call only once nothing references the arrays.
        """
        if self._closed:
            return
        self._closed = True
        self._graph = None
        self._finalizer()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return (
            f"SharedCSR(segment={self._spec.segment!r}, "
            f"storage={self._spec.storage!r}, {state})"
        )
