"""Graph substrate: data structure, generators, properties, and I/O.

The social networks the paper samples are modeled as simple undirected
graphs (paper §2.1).  :class:`~repro.graphs.graph.Graph` is a small,
dependency-free adjacency-set structure with deterministic iteration order —
determinism matters because every experiment in this repository must be
reproducible from a seed alone.
"""

from repro.graphs.graph import Graph
from repro.graphs.csr import CSRGraph
from repro.graphs.discovered import DiscoveredGraph, DiscoveredSlab
from repro.graphs.generators import (
    barabasi_albert_graph,
    balanced_tree_graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    directed_preferential_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    regular_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import (
    average_clustering,
    average_degree,
    connected_components,
    degree_histogram,
    diameter,
    is_connected,
    largest_connected_component,
    local_clustering,
    mean_shortest_path_lengths,
    shortest_path_lengths,
)
from repro.graphs.convert import (
    csr_to_graph,
    from_networkx,
    graph_to_csr,
    to_networkx,
)
from repro.graphs.io import load_edge_list, save_edge_list
from repro.graphs.shm import CSRSlabSpec, SharedCSR
from repro.graphs.statistics import (
    GraphSummary,
    degree_assortativity,
    gini_coefficient,
    power_law_alpha,
    summarize,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "DiscoveredGraph",
    "DiscoveredSlab",
    "barabasi_albert_graph",
    "balanced_tree_graph",
    "barbell_graph",
    "complete_graph",
    "cycle_graph",
    "directed_preferential_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "hypercube_graph",
    "regular_graph",
    "star_graph",
    "watts_strogatz_graph",
    "average_clustering",
    "average_degree",
    "connected_components",
    "degree_histogram",
    "diameter",
    "is_connected",
    "largest_connected_component",
    "local_clustering",
    "mean_shortest_path_lengths",
    "shortest_path_lengths",
    "from_networkx",
    "to_networkx",
    "graph_to_csr",
    "csr_to_graph",
    "load_edge_list",
    "save_edge_list",
    "CSRSlabSpec",
    "SharedCSR",
    "GraphSummary",
    "summarize",
    "power_law_alpha",
    "degree_assortativity",
    "gini_coefficient",
]
