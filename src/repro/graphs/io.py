"""Edge-list I/O in the SNAP style used by the paper's public datasets.

Format: one ``u v`` pair per line, ``#`` comments ignored.  Attributes are
stored next to the edge list as JSON (``{attr: {node: value}}``) because the
SNAP format itself carries no attributes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def save_edge_list(graph: Graph, path: PathLike, with_attributes: bool = True) -> None:
    """Write *graph* as a SNAP-style edge list (plus ``<path>.attrs.json``)."""
    path = Path(path)
    lines = [f"# {graph.name}: {graph.number_of_nodes()} nodes, "
             f"{graph.number_of_edges()} edges"]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    # Isolated nodes would be lost from a pure edge list; record them too.
    isolated = [n for n in graph.nodes() if graph.degree(n) == 0]
    if isolated:
        lines.append("# isolated: " + " ".join(str(n) for n in isolated))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    if with_attributes and graph.attribute_names():
        payload = {
            attr: {
                str(node): value
                for node, value in graph.attribute_values(attr).items()
            }
            for attr in graph.attribute_names()
        }
        attrs_path = path.with_suffix(path.suffix + ".attrs.json")
        attrs_path.write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_edge_list(path: PathLike, name: str | None = None) -> Graph:
    """Load a SNAP-style edge list written by :func:`save_edge_list`.

    Also accepts raw SNAP downloads (whitespace-separated int pairs with
    ``#`` comments).  Attribute JSON is loaded when present.
    """
    path = Path(path)
    if not path.exists():
        raise GraphError(f"edge list not found: {path}")
    g = Graph(name=name if name is not None else path.stem)
    for line_number, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# isolated:"):
                for token in line.removeprefix("# isolated:").split():
                    g.add_node(int(token))
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"{path}:{line_number}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"{path}:{line_number}: non-integer node id") from exc
        if u == v:
            continue  # SNAP dumps occasionally contain self-loops; drop them.
        g.add_edge(u, v)
    attrs_path = path.with_suffix(path.suffix + ".attrs.json")
    if attrs_path.exists():
        payload = json.loads(attrs_path.read_text(encoding="utf-8"))
        for attr, values in payload.items():
            g.set_attribute(attr, {int(node): value for node, value in values.items()})
    return g
