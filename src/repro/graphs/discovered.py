"""The discovered graph: an incremental cache of everything a crawl paid for.

Under the paper's cost model (§2.4) a sampler pays one query for the *first*
access to a node; every repeat access is free because the response can be
cached client-side.  :class:`DiscoveredGraph` is that client-side cache made
explicit and shared: it accumulates every neighbor list a charged
:class:`~repro.osn.api.SocialNetworkAPI` has returned, so

* repeat lookups are served from the store without touching the API —
  the "free" half of the cost model is an O(1) dict hit or one vectorized
  gather, never a second charge;
* *membership* (every node id the crawler has ever seen — fetched nodes,
  their listed neighbors, and profile-only fetches) is available as a
  sorted array, which is what lets the batch accounting layer decide
  "new or already paid for?" for K nodes in one :func:`numpy.searchsorted`
  instead of K set probes;
* the fetched region re-compacts cheaply into a frozen
  :class:`~repro.graphs.csr.CSRGraph` slab (:meth:`compact`), so any
  vectorized machinery built for free in-memory graphs can run over the
  part of the network that has already been paid for.

The store is deliberately append-only (plus :meth:`clear` for new
measurement epochs): it is the state the asynchronous crawler
(:mod:`repro.crawl`) feeds incrementally while a
:class:`~repro.crawl.publisher.TopologyPublisher` periodically
re-compacts it for the walkers.

**Locking discipline.**  The async pipeline puts a *producer* (the
crawler appending rows) and a *consumer* (the publisher compacting) on
the same store, potentially from different threads.  Rather than leaning
on CPython's per-opcode atomicity — an implementation detail, and false
for the multi-step array paths here — every mutator (:meth:`record`,
:meth:`mark`, :meth:`clear`) and every multi-step reader (the array
lookups and :meth:`compact`) serializes on one reentrant lock, so a
compaction always sees a row-complete store and an append never tears a
half-refreshed id array.  The single-dict scalar reads (:meth:`row`,
:meth:`has_row`, :meth:`member`, the counts) stay lock-free on purpose:
each is one dict/set operation returning an immutable value, atomic under
the GIL by construction, and they sit on the scalar walkers' hot path.
The lock is reentrant so a locked reader may call another locked reader
(``compact`` → ``fetched_mask``) without deadlock; hold times are bounded
by one compaction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.arrays import sorted_lookup
from repro.errors import CheckpointError, NodeNotFoundError
from repro.graphs.csr import CSRGraph

Node = int

#: Ceiling for the dense id → slot table (ids above it switch the store to
#: sorted-array lookups; 2^22 ids cap the table at 32 MB of int64).
_DENSE_ID_LIMIT = 1 << 22


@dataclass(frozen=True)
class DiscoveredSlab:
    """One compaction of a :class:`DiscoveredGraph` into CSR form.

    Attributes
    ----------
    csr:
        Frozen CSR adjacency over *all* member nodes (sorted id order).
        Unfetched members — nodes seen only as someone's neighbor — get an
        empty row, so ``csr.degrees`` is only meaningful where
        :attr:`fetched` is True.
    fetched:
        Boolean mask aligned to CSR positions: True where the row is a
        genuinely fetched neighbor list rather than a placeholder.
    """

    csr: CSRGraph
    fetched: np.ndarray

    @property
    def fetched_ids(self) -> np.ndarray:
        """Original ids of the nodes whose rows are real, sorted."""
        return self.csr.node_ids[self.fetched]

    def fetched_csr(self) -> CSRGraph:
        """The fetched-induced subgraph: paid-for nodes, edges between them.

        Frontier members (seen but never fetched) are dropped entirely —
        including as targets — so every row is a complete, walkable
        neighbor list and no walk strands on a placeholder.  The result is
        symmetric whenever the hidden graph is (an edge survives iff both
        endpoints were fetched), and it converges to the hidden graph as
        the crawl completes.  This is the graph the
        :class:`~repro.crawl.publisher.TopologyPublisher` ships to the
        walk engine each epoch.
        """
        csr, fetched = self.csr, self.fetched
        fetched_positions = np.flatnonzero(fetched)
        # Unfetched rows are empty by construction, so masking targets is
        # the whole filter: every surviving edge starts at a fetched row.
        keep = fetched[csr.indices]
        cumulative = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(keep, dtype=np.int64))
        )
        kept_per_row = cumulative[csr.indptr[1:]] - cumulative[csr.indptr[:-1]]
        indptr = np.zeros(fetched_positions.size + 1, dtype=np.int64)
        np.cumsum(kept_per_row[fetched_positions], out=indptr[1:])
        # Renumber surviving targets from member positions to fetched
        # positions; row order (sorted ids) is preserved by the mask.
        new_position = np.cumsum(fetched, dtype=np.int64) - 1
        indices = new_position[csr.indices[keep]]
        return CSRGraph(
            indptr,
            indices,
            node_ids=csr.node_ids[fetched_positions].copy(),
            name=f"{csr.name}-fetched",
        )


class DiscoveredGraph:
    """Grow-only store of fetched neighbor rows with array-backed lookups.

    The scalar interface (:meth:`record` / :meth:`row` / :meth:`neighbors`)
    is plain dict work; the array interface (:meth:`fetched_mask` /
    :meth:`degrees_of` / :meth:`member_ids`) maintains sorted id arrays
    lazily — rebuilt at most once per growth generation — so batch callers
    pay O(log n) per lookup with no per-node Python.
    """

    def __init__(self, name: str = "discovered") -> None:
        self.name = name
        # One reentrant lock covers every mutator and every multi-step
        # array reader — see the module docstring for the discipline.
        self._lock = threading.RLock()
        self._rows: Dict[Node, Tuple[Node, ...]] = {}
        self._members: set[Node] = set()
        self._generation = 0
        self._fetched_ids: Optional[np.ndarray] = None
        self._fetched_slots: Optional[np.ndarray] = None
        self._member_ids: Optional[np.ndarray] = None
        self._arrays_generation = -1
        self._slab: Optional[DiscoveredSlab] = None
        self._slab_generation = -1
        # Incremental row pool: every fetched row is appended once as a
        # flat int64 segment, so batch callers gather K ragged rows with
        # pure array arithmetic instead of K tuple conversions per level.
        self._pool = np.empty(1024, dtype=np.int64)
        self._pool_used = 0
        self._slot_starts = np.empty(256, dtype=np.int64)
        self._slot_lengths = np.empty(256, dtype=np.int64)
        self._slot_by_id: Dict[Node, int] = {}
        # Dense id → slot table: one gather instead of a binary search per
        # lookup (~10x on the hot path) whenever node ids are small
        # non-negative ints — true for every surrogate dataset.  Falls
        # back to sorted-array search the moment an id outside the dense
        # range shows up.
        self._dense = True
        self._slot_table = np.full(1024, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Recording (the charged API writes here)
    # ------------------------------------------------------------------
    def record(self, node: Node, neighbors: Tuple[Node, ...]) -> None:
        """Store the fetched neighbor row of *node* (idempotent)."""
        with self._lock:
            if self._rows.get(node) == neighbors:
                return
            self._rows[node] = neighbors
            self._append_pool_row(node, neighbors)
            self._members.add(node)
            self._members.update(neighbors)
            self._generation += 1

    def _append_pool_row(self, node: Node, neighbors: Tuple[Node, ...]) -> None:
        length = len(neighbors)
        needed = self._pool_used + length
        if needed > self._pool.size:
            grown = np.empty(max(2 * self._pool.size, needed), dtype=np.int64)
            grown[: self._pool_used] = self._pool[: self._pool_used]
            self._pool = grown
        self._pool[self._pool_used : needed] = neighbors
        slot = self._slot_by_id.get(node)
        if slot is None:
            slot = len(self._slot_by_id)
            if slot == self._slot_starts.size:
                self._slot_starts = np.concatenate(
                    (self._slot_starts, np.empty(self._slot_starts.size, np.int64))
                )
                self._slot_lengths = np.concatenate(
                    (self._slot_lengths, np.empty(self._slot_lengths.size, np.int64))
                )
            self._slot_by_id[node] = slot
            if self._dense:
                if 0 <= node < _DENSE_ID_LIMIT:
                    if node >= self._slot_table.size:
                        grown = np.full(
                            max(2 * self._slot_table.size, node + 1), -1, np.int64
                        )
                        grown[: self._slot_table.size] = self._slot_table
                        self._slot_table = grown
                    self._slot_table[node] = slot
                else:
                    self._dense = False
        self._slot_starts[slot] = self._pool_used
        self._slot_lengths[slot] = length
        self._pool_used = needed

    def mark(self, node: Node, neighbors: Iterable[Node] = ()) -> None:
        """Add *node* (and optionally ids it exposed) to membership only.

        Used for accesses that pay for a node without yielding a cacheable
        row: profile/attribute fetches, and type-1-restricted neighbor
        calls whose response changes per invocation.
        """
        with self._lock:
            before = len(self._members)
            self._members.add(node)
            self._members.update(neighbors)
            if len(self._members) != before:
                self._generation += 1

    def clear(self) -> None:
        """Forget everything (new measurement epoch)."""
        with self._lock:
            self._rows.clear()
            self._members.clear()
            self._pool_used = 0
            self._slot_by_id.clear()
            self._dense = True
            self._slot_table = np.full(1024, -1, dtype=np.int64)
            self._generation += 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_rows(self) -> Dict[str, object]:
        """JSON-safe snapshot of every cached row, in insertion order.

        ``rows`` lists ``[node, [neighbors...]]`` pairs in the exact order
        :meth:`record` first stored them — replaying them through a fresh
        store reproduces the identical dict order, pool layout, and slot
        assignment, which is what makes a restored store bit-compatible
        with the one that was checkpointed.  ``marked`` carries members
        that arrived via :meth:`mark` only (never fetched, never listed),
        which a row replay alone could not recover.
        """
        with self._lock:
            rows = [
                [int(node), [int(n) for n in row]] for node, row in self._rows.items()
            ]
            listed: set[Node] = set(self._rows)
            for row in self._rows.values():
                listed.update(row)
            marked = sorted(int(node) for node in self._members - listed)
            return {"rows": rows, "marked": marked}

    def restore_rows(self, state: Dict[str, object]) -> None:
        """Replay a :meth:`snapshot_rows` document into this (empty) store.

        Refuses to merge into a non-empty store — a half-restored cache
        would silently desynchronize the §2.4 accounting that trusts it.
        """
        with self._lock:
            if self._rows or self._members:
                raise CheckpointError(
                    f"cannot restore rows into a non-empty store "
                    f"({self.fetched_count} rows, {self.membership_size} members); "
                    "restore targets must be freshly constructed"
                )
            for node, row in state["rows"]:
                self.record(int(node), tuple(int(n) for n in row))
            marked = state.get("marked", ())
            if marked:
                self.mark(int(marked[0]), (int(n) for n in marked))

    # ------------------------------------------------------------------
    # Scalar lookups (NeighborView over the paid-for region)
    # ------------------------------------------------------------------
    def has_row(self, node: Node) -> bool:
        """True if *node*'s neighbor list is cached."""
        return node in self._rows

    def row(self, node: Node) -> Optional[Tuple[Node, ...]]:
        """The cached neighbor row of *node*, or None if never fetched."""
        return self._rows.get(node)

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Cached neighbors of *node*; raises if the row was never paid for."""
        row = self._rows.get(node)
        if row is None:
            raise NodeNotFoundError(node)
        return row

    def degree(self, node: Node) -> int:
        """Cached visible degree of *node*."""
        return len(self.neighbors(node))

    def member(self, node: Node) -> bool:
        """True if the crawler has ever seen this node id."""
        return node in self._members

    def __contains__(self, node: Node) -> bool:
        return self.member(node)

    @property
    def fetched_count(self) -> int:
        """Number of nodes with a cached neighbor row."""
        return len(self._rows)

    @property
    def membership_size(self) -> int:
        """Number of distinct node ids ever seen (fetched ∪ listed ∪ marked)."""
        return len(self._members)

    # ------------------------------------------------------------------
    # Array lookups (the batch accounting layer reads here)
    # ------------------------------------------------------------------
    def _refresh_arrays(self) -> None:
        if self._arrays_generation == self._generation:
            return
        ids = np.fromiter(self._slot_by_id, dtype=np.int64, count=len(self._slot_by_id))
        slots = np.fromiter(
            self._slot_by_id.values(), dtype=np.int64, count=ids.size
        )
        order = np.argsort(ids)
        self._fetched_ids = ids[order]
        self._fetched_slots = slots[order]
        self._member_ids = np.fromiter(
            self._members, dtype=np.int64, count=len(self._members)
        )
        self._member_ids.sort()
        self._arrays_generation = self._generation

    def _slots_lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Pool slots for an array of node ids; -1 where no row is cached."""
        if self._dense:
            table = self._slot_table
            inside = (nodes >= 0) & (nodes < table.size)
            slots = np.full(nodes.shape, -1, dtype=np.int64)
            slots[inside] = table[nodes[inside]]
            return slots
        self._refresh_arrays()
        pos, ok = sorted_lookup(self._fetched_ids, nodes)
        slots = np.full(nodes.shape, -1, dtype=np.int64)
        slots[ok] = self._fetched_slots[pos[ok]]
        return slots

    def _slots_of(self, nodes: np.ndarray) -> np.ndarray:
        """Pool slots for an array of fetched node ids (raises on misses)."""
        slots = self._slots_lookup(nodes)
        if slots.size == 0 or np.all(slots >= 0):
            return slots
        raise NodeNotFoundError(int(nodes[slots < 0][0]))

    def fetched_ids(self) -> np.ndarray:
        """Sorted ids of all nodes with cached rows (do not mutate).

        The returned array is a frozen snapshot: a concurrent append
        rebuilds (never mutates) the internal arrays, so a handed-out
        reference stays internally consistent even if it goes stale.
        """
        with self._lock:
            self._refresh_arrays()
            return self._fetched_ids

    def member_ids(self) -> np.ndarray:
        """Sorted ids of all members (do not mutate; snapshot semantics)."""
        with self._lock:
            self._refresh_arrays()
            return self._member_ids

    def fetched_mask(self, nodes) -> np.ndarray:
        """Boolean mask: which of *nodes* have a cached neighbor row.

        One table gather (or sorted-array search) for the whole batch —
        the set-free membership test the vectorized accounting layer
        charges by.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            return self._slots_lookup(nodes) >= 0

    def try_degrees(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """``(degrees, known)`` in one lookup: degrees valid where known.

        The fused form of :meth:`fetched_mask` + :meth:`degrees_of` the
        batch accounting layer uses — one table gather decides both what
        is already paid for and what it answers.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            slots = self._slots_lookup(nodes)
            known = slots >= 0
            degrees = np.zeros(nodes.shape, dtype=np.int64)
            degrees[known] = self._slot_lengths[slots[known]]
            return degrees, known

    def degrees_of(self, nodes) -> np.ndarray:
        """Cached degrees for an array of fetched nodes (one gather).

        Raises
        ------
        NodeNotFoundError
            If any node's row was never fetched (its degree is unknown —
            serving a guess would corrupt transition probabilities).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=np.int64)
        with self._lock:
            return self._slot_lengths[self._slots_of(nodes)]

    def rows_flat(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """Cached rows of *nodes* as ``(concatenated ids, lengths)`` arrays.

        The ragged-batch form of :meth:`rows_of`: one gather over the
        incremental row pool, no per-node Python.  All nodes must have
        fetched rows.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        with self._lock:
            slots = self._slots_of(nodes)
            starts = self._slot_starts[slots]
            lengths = self._slot_lengths[slots]
            total = int(lengths.sum())
            offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
            flat = self._pool[np.repeat(starts, lengths) + np.arange(total) - offsets]
            return flat, lengths

    def rows_contain(self, nodes, values) -> np.ndarray:
        """Per-row membership: is ``values[i]`` in *nodes[i]*'s cached row.

        A vectorized binary search inside each (sorted) cached row —
        O(log d_max) array passes for the whole batch.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=bool)
        with self._lock:
            slots = self._slots_of(nodes)
            starts = self._slot_starts[slots]
            lengths = self._slot_lengths[slots]
            lo = np.zeros(nodes.size, dtype=np.int64)
            hi = lengths.copy()
            while True:
                active = lo < hi
                if not active.any():
                    break
                mid = (lo + hi) >> 1
                less = np.zeros(nodes.size, dtype=bool)
                less[active] = (
                    self._pool[starts[active] + mid[active]] < values[active]
                )
                lo = np.where(active & less, mid + 1, lo)
                hi = np.where(active & ~less, mid, hi)
            found = lo < lengths
            found[found] = self._pool[starts[found] + lo[found]] == values[found]
            return found

    # ------------------------------------------------------------------
    # Re-compaction
    # ------------------------------------------------------------------
    def compact(self) -> DiscoveredSlab:
        """Freeze the discovered region into a CSR slab (cached per growth).

        Every member becomes a CSR row — fetched nodes carry their cached
        neighbor list, frontier nodes (seen but never fetched) an empty
        row, with :attr:`DiscoveredSlab.fetched` telling them apart.  All
        listed neighbors are members by construction, so every index
        resolves.  Compaction cost is O(members + cached edges); the slab
        is reused until the store grows.

        Safe against a concurrent producer: the whole compaction holds the
        store lock, so the slab reflects one well-defined generation —
        rows appended while it runs land in the *next* compaction.
        """
        with self._lock:
            if self._slab is not None and self._slab_generation == self._generation:
                return self._slab
            self._refresh_arrays()
            members = self._member_ids
            n = members.size
            degrees = np.zeros(n, dtype=np.int64)
            fetched = self.fetched_mask(members)
            degrees[fetched] = self.degrees_of(members[fetched])
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            flat = np.empty(int(indptr[-1]), dtype=np.int64)
            for p in np.flatnonzero(fetched):
                flat[indptr[p] : indptr[p + 1]] = self._rows[int(members[p])]
            indices = np.searchsorted(members, flat)
            csr = CSRGraph(indptr, indices, node_ids=members.copy(), name=self.name)
            self._slab = DiscoveredSlab(csr=csr, fetched=fetched)
            self._slab_generation = self._generation
            return self._slab

    def __repr__(self) -> str:
        return (
            f"DiscoveredGraph(name={self.name!r}, fetched={self.fetched_count}, "
            f"members={self.membership_size})"
        )
