"""Frozen CSR (compressed sparse row) adjacency for vectorized walking.

:class:`CSRGraph` is the read-optimized twin of the mutable adjacency-set
:class:`~repro.graphs.graph.Graph`.  The whole topology lives in three
NumPy arrays —

* ``indptr``  — row offsets, shape ``(n + 1,)``;
* ``indices`` — concatenated neighbor lists, sorted within each row;
* ``degrees`` — per-node degree, ``indptr[i+1] - indptr[i]``;

so a batch of K independent walks advances one step with a handful of
array operations instead of K Python-level neighbor lookups.  That is the
substrate :mod:`repro.walks.batch` builds on.

**When to use which.**  Use :class:`~repro.graphs.graph.Graph` while the
topology is still changing (loading, generators, restriction surgery) and
for anything charged through :class:`~repro.osn.api.SocialNetworkAPI` —
query-cost accounting is inherently per-node.  Once the graph is frozen
and the workload is throughput-bound (many walks, backward-estimate
sweeps, benchmarks), compile it with :meth:`Graph.compile` /
:meth:`CSRGraph.from_graph` and hand it to the batch engine.

``CSRGraph`` also satisfies the ``NeighborView`` protocol
(``neighbors(node)`` / ``degree(node)`` over original node ids), so every
scalar walker and transition design runs on it unchanged — which is what
makes seed-for-seed parity tests between the two engines possible.

Conversion is lossless: ``CSRGraph.from_graph(g).to_graph()`` reproduces
``g``'s nodes, edges, and attributes exactly (see
:func:`repro.graphs.convert.graph_to_csr` /
:func:`repro.graphs.convert.csr_to_graph`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.errors import GraphError, NodeNotFoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.graph import Graph

Node = int


class CSRGraph:
    """Immutable CSR adjacency over nodes relabeled to positions ``0..n-1``.

    Positions follow sorted original node-id order; ``node_ids[p]`` maps a
    position back to its id and :meth:`position_of` maps forward.  When the
    ids already are ``0..n-1`` (:attr:`contiguous`), both maps are the
    identity and the batch engine skips them entirely.

    Parameters
    ----------
    indptr, indices:
        CSR arrays over *positions*; ``indices`` must be sorted within each
        row (the same deterministic neighbor order ``Graph.neighbors``
        exposes, which seeded walks rely on).
    node_ids:
        Sorted original node ids, one per position; defaults to
        ``0..n-1``.
    name:
        Human-readable label carried into reports.
    attributes:
        Per-node attribute maps keyed by original node id (possibly
        partial), copied verbatim so conversion round-trips.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        node_ids: Optional[np.ndarray] = None,
        name: str = "csr",
        attributes: Optional[Dict[str, Dict[Node, float]]] = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphError("indptr must be a 1-d array of length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphError(
                "indptr must start at 0 and end at len(indices); got "
                f"[{self.indptr[0]}, {self.indptr[-1]}] for {self.indices.size}"
            )
        self.degrees = np.diff(self.indptr)
        if np.any(self.degrees < 0):
            raise GraphError("indptr must be non-decreasing")
        n = self.indptr.size - 1
        if node_ids is None:
            self.node_ids = np.arange(n, dtype=np.int64)
        else:
            self.node_ids = np.ascontiguousarray(node_ids, dtype=np.int64)
            if self.node_ids.size != n:
                raise GraphError(
                    f"node_ids has {self.node_ids.size} entries for {n} rows"
                )
            if n and np.any(np.diff(self.node_ids) <= 0):
                raise GraphError("node_ids must be strictly increasing")
        self.name = name
        self.contiguous = bool(
            n == 0 or (self.node_ids[0] == 0 and self.node_ids[-1] == n - 1)
        )
        self._attributes: Dict[str, Dict[Node, float]] = {
            attr: dict(values) for attr, values in (attributes or {}).items()
        }
        self._position: Optional[Dict[Node, int]] = None
        self._mhrw_selfloop: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Freeze a :class:`Graph` into CSR form (nodes in sorted-id order)."""
        ids = np.fromiter(graph.nodes(), dtype=np.int64, count=len(graph))
        degrees = np.fromiter(
            (graph.degree(int(node)) for node in ids), dtype=np.int64, count=ids.size
        )
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        if ids.size and not (ids[0] == 0 and ids[-1] == ids.size - 1):
            position = {int(node): p for p, node in enumerate(ids)}
            for p, node in enumerate(ids):
                row = [position[v] for v in graph.neighbors(int(node))]
                indices[indptr[p] : indptr[p + 1]] = row
        else:
            for p, node in enumerate(ids):
                indices[indptr[p] : indptr[p + 1]] = graph.neighbors(int(node))
        attributes = {
            attr: graph.attribute_values(attr) for attr in graph.attribute_names()
        }
        return cls(
            indptr, indices, node_ids=ids, name=graph.name, attributes=attributes
        )

    @classmethod
    def from_validated_parts(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        node_ids: np.ndarray,
        name: str = "csr",
        attributes: Optional[Dict[str, Dict[Node, float]]] = None,
    ) -> "CSRGraph":
        """Assemble a graph from already-validated int64 arrays, copy-free.

        The regular constructor normalizes dtypes (which may copy) and
        recomputes ``degrees`` — both wrong for arrays that live in a
        shared-memory segment, where every view must alias the one mapping.
        :mod:`repro.graphs.shm` validates at share time and attaches
        through here; the arrays are adopted exactly as passed.
        """
        self = cls.__new__(cls)
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self.node_ids = node_ids
        self.name = name
        n = indptr.size - 1
        self.contiguous = bool(n == 0 or (node_ids[0] == 0 and node_ids[-1] == n - 1))
        self._attributes = {
            attr: dict(values) for attr, values in (attributes or {}).items()
        }
        self._position = None
        self._mhrw_selfloop = None
        return self

    def to_graph(self, name: Optional[str] = None) -> "Graph":
        """Thaw back into a mutable :class:`Graph` (exact inverse of
        :meth:`from_graph`)."""
        from repro.graphs.graph import Graph

        out = Graph(name=name if name is not None else self.name)
        out.add_nodes_from(int(node) for node in self.node_ids)
        for p in range(self.number_of_nodes()):
            u = int(self.node_ids[p])
            for q in self.indices[self.indptr[p] : self.indptr[p + 1]]:
                v = int(self.node_ids[q])
                if u < v:
                    out.add_edge(u, v)
        for attr, values in self._attributes.items():
            out.set_attribute(attr, values)
        return out

    # ------------------------------------------------------------------
    # Position <-> id maps
    # ------------------------------------------------------------------
    def position_of(self, node: Node) -> int:
        """Position (CSR row) of original node id *node*."""
        if self.contiguous:
            if 0 <= node < self.number_of_nodes():
                return int(node)
            raise NodeNotFoundError(node)
        if self._position is None:
            self._position = {int(n): p for p, n in enumerate(self.node_ids)}
        try:
            return self._position[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def positions_of(self, nodes) -> np.ndarray:
        """Vectorized :meth:`position_of` for an array of node ids."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.contiguous:
            if nodes.size and (nodes.min() < 0 or nodes.max() >= len(self)):
                bad = nodes[(nodes < 0) | (nodes >= len(self))][0]
                raise NodeNotFoundError(int(bad))
            return nodes
        positions = np.searchsorted(self.node_ids, nodes)
        ok = (positions < self.node_ids.size) & (
            self.node_ids[np.minimum(positions, self.node_ids.size - 1)] == nodes
        )
        if not np.all(ok):
            raise NodeNotFoundError(int(nodes[~ok][0]))
        return positions

    def ids_of(self, positions: np.ndarray) -> np.ndarray:
        """Original node ids for an array of positions."""
        if self.contiguous:
            return np.asarray(positions, dtype=np.int64)
        return self.node_ids[positions]

    # ------------------------------------------------------------------
    # NeighborView protocol (original node ids)
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Sorted tuple of *node*'s neighbors, as original ids."""
        p = self.position_of(node)
        row = self.indices[self.indptr[p] : self.indptr[p + 1]]
        return tuple(int(v) for v in self.ids_of(row))

    def degree(self, node: Node) -> int:
        """Number of neighbors of *node*."""
        return int(self.degrees[self.position_of(node)])

    def has_node(self, node: Node) -> bool:
        """True if *node* is in the graph."""
        try:
            self.position_of(node)
        except NodeNotFoundError:
            return False
        return True

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if the undirected edge ``(u, v)`` exists (binary search)."""
        pu = self.position_of(u)
        pv = self.position_of(v)
        row = self.indices[self.indptr[pu] : self.indptr[pu + 1]]
        i = np.searchsorted(row, pv)
        return bool(i < row.size and row[i] == pv)

    def nodes(self) -> Tuple[Node, ...]:
        """All node ids in sorted order."""
        return tuple(int(n) for n in self.node_ids)

    def number_of_nodes(self) -> int:
        """Node count ``|V|``."""
        return self.indptr.size - 1

    def number_of_edges(self) -> int:
        """Edge count ``|E|`` (each undirected edge counted once)."""
        return self.indices.size // 2

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph)."""
        return int(self.degrees.max()) if self.degrees.size else 0

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of all defined attributes, sorted."""
        return tuple(sorted(self._attributes))

    def attribute_values(self, name: str) -> Dict[Node, float]:
        """Copy of the full value map for attribute *name*."""
        if name not in self._attributes:
            raise GraphError(f"attribute {name!r} is not defined on {self.name!r}")
        return dict(self._attributes[name])

    def get_attribute(self, name: str, node: Node) -> float:
        """Value of attribute *name* at *node*."""
        if name not in self._attributes:
            raise GraphError(f"attribute {name!r} is not defined on {self.name!r}")
        values = self._attributes[name]
        if node not in values:
            raise NodeNotFoundError(node)
        return values[node]

    def attribute_array(self, name: str) -> np.ndarray:
        """Attribute values as a float array aligned to positions.

        Requires the attribute to cover every node — the vectorized
        estimators index it by walk position, where a hole would silently
        poison aggregates.
        """
        if name not in self._attributes:
            raise GraphError(f"attribute {name!r} is not defined on {self.name!r}")
        values = self._attributes[name]
        if len(values) != self.number_of_nodes():
            raise GraphError(
                f"attribute {name!r} covers {len(values)} of "
                f"{self.number_of_nodes()} nodes; dense array would be wrong"
            )
        return np.array([values[int(node)] for node in self.node_ids], dtype=np.float64)

    # ------------------------------------------------------------------
    # Precomputed transition quantities
    # ------------------------------------------------------------------
    def mhrw_selfloop_mass(self) -> np.ndarray:
        """Per-position MHRW self-loop mass, ``1 - Σ_v (1/dᵤ)·min(1, dᵤ/dᵥ)``.

        The scalar design computes this on demand by querying every
        neighbor's degree; here one O(|E|) vectorized pass precomputes it
        for all nodes at once (cached), which is what lets the batch
        backward estimator price MHRW self-loop predecessors without
        per-node row materialization.
        """
        if self._mhrw_selfloop is None:
            du = np.repeat(self.degrees, self.degrees).astype(np.float64)
            dv = self.degrees[self.indices].astype(np.float64)
            per_edge = np.minimum(1.0, du / dv) / du
            moved = np.zeros(self.number_of_nodes(), dtype=np.float64)
            row_of_edge = np.repeat(np.arange(self.number_of_nodes()), self.degrees)
            np.add.at(moved, row_of_edge, per_edge)
            self._mhrw_selfloop = np.maximum(0.0, 1.0 - moved)
        return self._mhrw_selfloop

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
