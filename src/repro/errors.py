"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common operational cases (budget exhaustion, bad
graph input, configuration mistakes).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: querying a node that does not exist, adding a self-loop to a
    simple graph, or loading a malformed edge list.
    """


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node absent from the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class QueryBudgetExceededError(ReproError):
    """Raised when an OSN access would exceed the configured query budget.

    The sampler catches this to stop gracefully and report partial results;
    user code may also catch it to implement its own retry/abort policy.
    """

    def __init__(self, budget: int, spent: int) -> None:
        super().__init__(
            f"query budget exhausted: budget={budget}, already spent={spent}"
        )
        self.budget = budget
        self.spent = spent


class RateLimitExceededError(ReproError):
    """Raised when the simulated OSN rate limiter rejects a query."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded; retry after {retry_after:.2f} simulated seconds"
        )
        self.retry_after = retry_after


class TransientAPIError(ReproError):
    """Raised when the simulated OSN returns a transient (5xx-style) failure.

    Injected by :class:`~repro.faults.FaultyAPI` and retried by
    :class:`~repro.osn.resilience.ResilientAPI`; nothing was charged for
    the failed attempt, so a retry repeats the accounting exactly once.
    """


class APITimeoutError(TransientAPIError):
    """Raised when a simulated OSN call exceeds its per-call timeout.

    A timeout is ambiguous: the request may or may not have reached the
    network (the fault plan's ``phase`` decides).  Either way the charged
    API's client-side cache (§2.4) makes the retry idempotent — a lost
    response was cached server-side-of-the-wrapper, so re-asking is free.
    """


class CircuitOpenError(ReproError):
    """Raised when a tenant's circuit breaker is open (failing fast).

    After ``threshold`` consecutive failures the
    :class:`~repro.osn.resilience.ResilientAPI` stops hammering the
    backend for that tenant until ``reset_seconds`` of virtual time pass.
    """

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker for tenant {tenant!r} is open; "
            f"retry after {retry_after:.2f} simulated seconds"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class WorkerCrashError(ReproError):
    """Raised when a sharded walk round cannot recover from worker deaths.

    The :class:`~repro.walks.parallel.ShardedWalkEngine` respawns its pool
    and re-executes failed shards transparently; this surfaces only after
    the bounded retry allowance is exhausted.
    """


class CheckpointError(ReproError):
    """Raised when a service checkpoint cannot be captured or restored.

    Covers schema-version mismatches, documents missing required state,
    and restore targets whose live state conflicts with the snapshot.
    """


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid algorithm or experiment configuration values."""


class EstimationError(ReproError):
    """Raised when a probability estimation cannot be produced.

    For example, a backward walk that is configured with zero repetitions,
    or an estimate requested for a node the forward walk never reached.
    """


class ConvergenceError(ReproError):
    """Raised when a convergence monitor cannot make a determination."""


class AdmissionError(ReproError):
    """Raised when the serving layer cannot accept a job.

    Two shapes: backpressure (the bounded pending queue is full — retry
    later or use the awaiting submit path) and rejection (the job spec is
    one the service cannot run, e.g. a charged scalar backend against the
    shared free topology).
    """


class ExperimentError(ReproError):
    """Raised when an experiment is misconfigured or references unknown ids."""
