"""The restricted OSN web interface: local-neighborhood queries only.

:class:`SocialNetworkAPI` wraps a hidden :class:`~repro.graphs.Graph` and
exposes exactly what the paper's third party sees (§2.1):

* ``neighbors(v)`` — the neighbor list of ``v`` (possibly restricted);
* ``degree(v)`` — ``len(neighbors(v))`` under the same restriction;
* ``attribute(v, name)`` — node-profile attributes (star ratings,
  self-description length, …), charged like a neighbor query since both
  come from the same profile fetch.

Every access to a *new* node costs one query against the counter/budget
(§2.4's cost model); results are cached client-side, so repeat accesses are
free — except under the type-1 restriction (fresh random neighbor subset
per call, §6.3.1), where each ``neighbors`` call re-invokes the API.

The API satisfies the :class:`~repro.walks.transitions.NeighborView`
protocol, so transition designs and backward estimators run against it
unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph, Node
from repro.osn.accounting import QueryBudget, QueryCounter, QueryLog
from repro.osn.ratelimit import TokenBucketRateLimiter
from repro.osn.restrictions import NeighborRestriction, RandomKRestriction


class SocialNetworkAPI:
    """Query interface over a hidden graph with cost accounting.

    Parameters
    ----------
    graph:
        The hidden social graph.  Samplers must only touch it through this
        API; experiments may read it directly to compute ground truth.
    budget:
        Optional hard cap on unique-node queries.
    restriction:
        Optional neighbor-access restriction (paper §6.3.1 types 1–3).
    rate_limiter:
        Optional token bucket; when present, each API invocation consumes a
        token, waiting on the virtual clock as needed.
    log_queries:
        Record every API invocation's node id (diagnostics; off by default).
    """

    def __init__(
        self,
        graph: Graph,
        budget: Optional[QueryBudget] = None,
        restriction: Optional[NeighborRestriction] = None,
        rate_limiter: Optional[TokenBucketRateLimiter] = None,
        log_queries: bool = False,
    ) -> None:
        self._graph = graph
        self.budget = budget if budget is not None else QueryBudget(None)
        self.restriction = restriction
        self.rate_limiter = rate_limiter
        self.counter = QueryCounter()
        self.log = QueryLog(enabled=log_queries)
        self._neighbor_cache: dict[Node, Tuple[Node, ...]] = {}

    # ------------------------------------------------------------------
    # Charged queries
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Visible neighbors of *node* (charged on first access).

        Raises
        ------
        NodeNotFoundError
            If *node* does not exist on the network.
        QueryBudgetExceededError
            If this access would exceed the query budget.
        """
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        visible = self._invoke(node)
        if not isinstance(self.restriction, RandomKRestriction):
            # Type-1 responses change per call and must not be cached;
            # everything else is stable and cacheable client-side.
            self._neighbor_cache[node] = visible
        return visible

    def degree(self, node: Node) -> int:
        """Visible degree: size of the (restricted) neighbor list."""
        return len(self.neighbors(node))

    def attribute(self, node: Node, name: str) -> float:
        """Profile attribute of *node*; charged like a neighbor query.

        A node whose profile was already fetched (by ``neighbors`` or a
        previous ``attribute`` call) is served from cache at no cost.
        """
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        if not self.counter.seen(node):
            self.budget.check(self.counter, node)
            if self.rate_limiter is not None:
                self.rate_limiter.acquire_or_wait()
            self.counter.charge(node)
            self.log.record(node)
        return self._graph.get_attribute(name, node)

    def _invoke(self, node: Node) -> Tuple[Node, ...]:
        """One real API invocation: validate, rate-limit, charge, restrict."""
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        self.budget.check(self.counter, node)
        if self.rate_limiter is not None:
            self.rate_limiter.acquire_or_wait()
        self.counter.charge(node)
        self.log.record(node)
        true_neighbors = self._graph.neighbors(node)
        if self.restriction is not None:
            return self.restriction.apply(node, true_neighbors)
        return true_neighbors

    # ------------------------------------------------------------------
    # Free metadata
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Existence check (id validity is free: a failed fetch costs nothing)."""
        return self._graph.has_node(node)

    @property
    def query_cost(self) -> int:
        """Unique-node query cost so far (the paper's measure)."""
        return self.counter.unique_nodes

    @property
    def raw_calls(self) -> int:
        """Number of real API invocations (cache hits excluded)."""
        return self.counter.raw_calls

    def reset_accounting(self) -> None:
        """Zero the counters and cache (new measurement epoch)."""
        self.counter.reset()
        self.log.clear()
        self._neighbor_cache.clear()
        if self.restriction is not None:
            self.restriction.reset()

    def __repr__(self) -> str:
        return (
            f"SocialNetworkAPI(graph={self._graph.name!r}, "
            f"cost={self.query_cost}, raw={self.raw_calls})"
        )
