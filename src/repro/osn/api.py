"""The restricted OSN web interface: local-neighborhood queries only.

:class:`SocialNetworkAPI` wraps a hidden :class:`~repro.graphs.Graph` and
exposes exactly what the paper's third party sees (§2.1):

* ``neighbors(v)`` — the neighbor list of ``v`` (possibly restricted);
* ``degree(v)`` — ``len(neighbors(v))`` under the same restriction;
* ``attribute(v, name)`` — node-profile attributes (star ratings,
  self-description length, …), charged like a neighbor query since both
  come from the same profile fetch.

Every access to a *new* node costs one query against the counter/budget
(§2.4's cost model); results accumulate in a shared
:class:`~repro.graphs.discovered.DiscoveredGraph`, so repeat accesses are
served from the discovered store for free — except under the type-1
restriction (fresh random neighbor subset per call, §6.3.1), where each
``neighbors`` call re-invokes the API (the queried node still joins the
discovered membership: it has been paid for, even if its row cannot be
cached).

Two access grains share one accounting state.  The scalar grain
(``neighbors``/``degree``/``attribute``) is what the per-step walkers use.
The batch grain (:meth:`SocialNetworkAPI.neighbors_batch` /
:meth:`SocialNetworkAPI.degrees_batch`) settles a whole array of lookups
in one operation: cache membership is one vectorized search over the
discovered-graph id arrays, the budget is enforced for the batch as a
whole (the affordable prefix is charged, then exhaustion raises *before*
the first over-budget invocation), the rate limiter is drained in one
closed-form acquisition, and the counter is charged once — this is the
charged-API counterpart of the free-graph batch walk engine.

The API satisfies the :class:`~repro.walks.transitions.NeighborView`
protocol, so transition designs and backward estimators run against it
unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, NodeNotFoundError, QueryBudgetExceededError
from repro.graphs.discovered import DiscoveredGraph
from repro.graphs.graph import Graph, Node
from repro.osn.accounting import (
    QueryBudget,
    QueryCounter,
    QueryCounterSnapshot,
    QueryLog,
)
from repro.osn.ratelimit import TokenBucketRateLimiter
from repro.osn.restrictions import NeighborRestriction, RandomKRestriction


class SocialNetworkAPI:
    """Query interface over a hidden graph with cost accounting.

    Parameters
    ----------
    graph:
        The hidden social graph.  Samplers must only touch it through this
        API; experiments may read it directly to compute ground truth.
    budget:
        Optional hard cap on unique-node queries.
    restriction:
        Optional neighbor-access restriction (paper §6.3.1 types 1–3).
    rate_limiter:
        Optional token bucket; when present, each API invocation consumes a
        token, waiting on the virtual clock as needed.
    log_queries:
        Record every API invocation's node id (diagnostics; off by default).
    """

    def __init__(
        self,
        graph: Graph,
        budget: Optional[QueryBudget] = None,
        restriction: Optional[NeighborRestriction] = None,
        rate_limiter: Optional[TokenBucketRateLimiter] = None,
        log_queries: bool = False,
    ) -> None:
        self._graph = graph
        self.budget = budget if budget is not None else QueryBudget(None)
        self.restriction = restriction
        self.rate_limiter = rate_limiter
        self.counter = QueryCounter()
        self.log = QueryLog(enabled=log_queries)
        #: Everything this API has returned so far — the client-side cache
        #: of §2.4's cost model, shared with any batch machinery that wants
        #: to walk the already-paid-for region for free.
        self.discovered = DiscoveredGraph(name=f"discovered-{graph.name}")

    @property
    def cacheable(self) -> bool:
        """Whether neighbor responses are call-stable (cacheable)."""
        # Type-1 responses change per call and must not be cached;
        # everything else is stable and cacheable client-side.
        return not isinstance(self.restriction, RandomKRestriction)

    # ------------------------------------------------------------------
    # Charged queries (scalar grain)
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Visible neighbors of *node* (charged on first access).

        Raises
        ------
        NodeNotFoundError
            If *node* does not exist on the network.
        QueryBudgetExceededError
            If this access would exceed the query budget.
        """
        cached = self.discovered.row(node)
        if cached is not None:
            return cached
        visible = self._invoke(node)
        if self.cacheable:
            self.discovered.record(node, visible)
        else:
            self.discovered.mark(node, visible)
        return visible

    def degree(self, node: Node) -> int:
        """Visible degree: size of the (restricted) neighbor list."""
        return len(self.neighbors(node))

    def attribute(self, node: Node, name: str) -> float:
        """Profile attribute of *node*; charged like a neighbor query.

        A node whose profile was already fetched (by ``neighbors`` or a
        previous ``attribute`` call) is served from cache at no cost.
        """
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        if not self.counter.seen(node):
            self.budget.check(self.counter, node)
            if self.rate_limiter is not None:
                self.rate_limiter.acquire_or_wait()
            self.counter.charge(node)
            self.log.record(node)
            self.discovered.mark(node)
        return self._graph.get_attribute(name, node)

    def _invoke(self, node: Node) -> Tuple[Node, ...]:
        """One real API invocation: validate, rate-limit, charge, restrict."""
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        self.budget.check(self.counter, node)
        if self.rate_limiter is not None:
            self.rate_limiter.acquire_or_wait()
        self.counter.charge(node)
        self.log.record(node)
        true_neighbors = self._graph.neighbors(node)
        if self.restriction is not None:
            return self.restriction.apply(node, true_neighbors)
        return true_neighbors

    # ------------------------------------------------------------------
    # Charged queries (batch grain)
    # ------------------------------------------------------------------
    def neighbors_batch(self, nodes) -> List[Tuple[Node, ...]]:
        """Visible neighbor rows for an array of nodes, settled as one batch.

        Semantically equivalent to ``[self.neighbors(v) for v in nodes]``
        — same unique-node charges, same raw-call count, same cache
        contents afterwards — but the accounting happens once for the
        whole batch: one vectorized membership test against the
        discovered graph, one counter charge, one rate-limiter
        acquisition, one budget decision.  Node-id validity is checked up
        front for the entire batch (a failed lookup is free, §2.4), so an
        unknown id raises before anything is charged.

        Under the type-1 restriction each *occurrence* is its own fresh
        invocation, exactly as in the scalar path; otherwise duplicate
        ids in one batch share a single fetch.

        Raises
        ------
        NodeNotFoundError
            If any requested node does not exist (checked before charging).
        QueryBudgetExceededError
            After charging the affordable prefix, if the batch needs more
            new unique nodes than the budget allows — the over-budget
            invocation itself never happens.
        """
        order = np.asarray(nodes, dtype=np.int64)
        if order.ndim != 1:
            raise ConfigurationError(
                f"nodes must be 1-d, got shape {tuple(order.shape)}"
            )
        if order.size == 0:
            return []
        for node in order.tolist():
            if not self._graph.has_node(node):
                raise NodeNotFoundError(node)
        unique_sorted, first_index = np.unique(order, return_index=True)
        appearance = np.argsort(first_index, kind="stable")
        unique = unique_sorted[appearance]
        firsts = first_index[appearance]
        if self.cacheable:
            uncached = ~self.discovered.fetched_mask(unique)
            to_invoke, firsts = unique[uncached], firsts[uncached]
        else:
            to_invoke = unique
        new_mask = ~self.counter.seen_many(to_invoke)
        requested = int(new_mask.sum())
        affordable = self.budget.affordable(self.counter, requested)
        exhausted = affordable < requested
        occurrences = None if self.cacheable else order
        if exhausted:
            # Process exactly the invocations a scalar sequence would have
            # completed before the first over-budget charge.
            cutoff = int(np.flatnonzero(np.cumsum(new_mask) > affordable)[0])
            if occurrences is not None:
                occurrences = order[: int(firsts[cutoff])]
            to_invoke = to_invoke[:cutoff]
        rows = self._invoke_batch(to_invoke, occurrences)
        if exhausted:
            raise QueryBudgetExceededError(self.budget.limit, self.counter.unique_nodes)
        if self.cacheable:
            lookup = {int(n): self.discovered.neighbors(int(n)) for n in unique}
            return [lookup[int(n)] for n in order.tolist()]
        # Type-1: every occurrence got its own fresh subset, in input order.
        return rows

    def _invoke_batch(
        self, to_invoke: np.ndarray, occurrences: Optional[np.ndarray]
    ) -> List[Tuple[Node, ...]]:
        """Rate-limit, charge, log, fetch, and cache one batch of invocations.

        *occurrences* is None on the cacheable path (one invocation per
        unique node); under type-1 it is the occurrence array and every
        entry is invoked separately.  Returns the per-invocation rows of
        the type-1 path (empty list otherwise — cacheable callers read
        the discovered graph instead).
        """
        calls = int(to_invoke.size if occurrences is None else occurrences.size)
        if self.rate_limiter is not None and calls:
            self.rate_limiter.acquire_or_wait_many(calls)
        self.counter.charge_batch(to_invoke)
        self.counter.record_raw(calls - int(to_invoke.size))
        rows: List[Tuple[Node, ...]] = []
        if occurrences is None:
            self.log.record_many(to_invoke)
            for node in to_invoke.tolist():
                row = self._graph.neighbors(node)
                if self.restriction is not None:
                    row = self.restriction.apply(node, row)
                self.discovered.record(node, row)
        else:
            self.log.record_many(occurrences)
            for node in occurrences.tolist():
                row = self.restriction.apply(node, self._graph.neighbors(node))
                self.discovered.mark(node, row)
                rows.append(row)
        return rows

    def degrees_batch(self, nodes) -> np.ndarray:
        """Visible degrees for an array of nodes, settled as one batch.

        Nodes whose rows are already in the discovered graph are answered
        by one array gather without touching the API; only genuinely new
        nodes are fetched (and charged) via :meth:`neighbors_batch`.
        """
        arr = np.asarray(nodes, dtype=np.int64)
        if arr.ndim != 1:
            raise ConfigurationError(f"nodes must be 1-d, got shape {tuple(arr.shape)}")
        if not self.cacheable:
            rows = self.neighbors_batch(arr)
            return np.fromiter((len(r) for r in rows), dtype=np.int64, count=arr.size)
        out, known = self.discovered.try_degrees(arr)
        if not np.all(known):
            rows = self.neighbors_batch(arr[~known])
            out[~known] = np.fromiter(
                (len(r) for r in rows), dtype=np.int64, count=int((~known).sum())
            )
        return out

    # ------------------------------------------------------------------
    # Free metadata
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Existence check (id validity is free: a failed fetch costs nothing)."""
        return self._graph.has_node(node)

    @property
    def query_cost(self) -> int:
        """Unique-node query cost so far (the paper's measure)."""
        return self.counter.unique_nodes

    @property
    def raw_calls(self) -> int:
        """Number of real API invocations (cache hits excluded)."""
        return self.counter.raw_calls

    def snapshot(self) -> QueryCounterSnapshot:
        """Counter snapshot for per-phase attribution (see
        :meth:`~repro.osn.accounting.QueryCounter.delta`)."""
        return self.counter.snapshot()

    def reset_accounting(self) -> None:
        """Zero the counters and cache (new measurement epoch)."""
        self.counter.reset()
        self.log.clear()
        self.discovered.clear()
        if self.restriction is not None:
            self.restriction.reset()

    def __repr__(self) -> str:
        return (
            f"SocialNetworkAPI(graph={self._graph.name!r}, "
            f"cost={self.query_cost}, raw={self.raw_calls})"
        )
