"""Rate limiting on a virtual clock.

The paper motivates query cost with Twitter's limit of 15 follower-list
requests per 15 minutes (§1.1).  A :class:`TokenBucketRateLimiter` over a
:class:`VirtualClock` reproduces the *time* cost of a sampling campaign
(how long a budget of queries takes to spend) without real sleeping, so
experiments can report wall-clock-equivalent durations deterministically.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, RateLimitExceededError


class VirtualClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds


class TokenBucketRateLimiter:
    """Classic token bucket: *capacity* tokens refilled over *period* seconds.

    ``TokenBucketRateLimiter(15, 900)`` models Twitter's 15 requests per 15
    minutes.  Two usage modes:

    * :meth:`acquire` — raise :class:`RateLimitExceededError` when empty
      (callers that implement their own waiting policy);
    * :meth:`acquire_or_wait` — advance the virtual clock to the next token
      and return the simulated seconds waited (the common mode; this is what
      "sampling is slow because of rate limits" means in practice).
    """

    def __init__(
        self,
        capacity: int,
        period_seconds: float,
        clock: VirtualClock | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if period_seconds <= 0:
            raise ConfigurationError(f"period must be positive, got {period_seconds}")
        self.capacity = capacity
        self.period_seconds = float(period_seconds)
        self.clock = clock if clock is not None else VirtualClock()
        self._tokens = float(capacity)
        self._last_refill = self.clock.now

    @property
    def refill_rate(self) -> float:
        """Tokens per simulated second."""
        return self.capacity / self.period_seconds

    def _refill(self) -> None:
        elapsed = self.clock.now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_rate)
            self._last_refill = self.clock.now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._tokens

    def acquire(self) -> None:
        """Consume one token or raise :class:`RateLimitExceededError`."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return
        deficit = 1.0 - self._tokens
        raise RateLimitExceededError(retry_after=deficit / self.refill_rate)

    def acquire_or_wait(self) -> float:
        """Consume one token, advancing the clock if needed; returns wait time."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        wait = (1.0 - self._tokens) / self.refill_rate
        self.clock.advance(wait)
        self._refill()
        self._tokens -= 1.0
        return wait

    def acquire_or_wait_many(self, count: int) -> float:
        """Consume *count* tokens as one batch; returns total simulated wait.

        Exactly equivalent to *count* successive :meth:`acquire_or_wait`
        calls (the bucket refills linearly while draining, so the waits
        telescope into one closed-form advance), but O(1) — the batch API
        settles a whole step's invocations without a per-call loop.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count == 0:
            return 0.0
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return 0.0
        wait = (count - self._tokens) / self.refill_rate
        self.clock.advance(wait)
        self._last_refill = self.clock.now
        self._tokens = 0.0
        return wait
