"""Query accounting: counters, budgets, and logs.

The paper's efficiency measure is *query cost* — "the number of nodes it has
to access in order to obtain a predetermined number of samples" (§2.4).
Re-querying a node a crawler has already seen is free in this model (the
response can be cached locally), so :class:`QueryCounter` counts **unique**
nodes by default while still tracking raw calls for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import QueryBudgetExceededError


@dataclass
class QueryLog:
    """Append-only record of issued queries (node id per call)."""

    entries: List[int] = field(default_factory=list)
    enabled: bool = False

    def record(self, node: int) -> None:
        """Append *node* if logging is enabled."""
        if self.enabled:
            self.entries.append(node)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()


class QueryCounter:
    """Counts unique-node accesses and raw API calls."""

    def __init__(self) -> None:
        self._seen: set[int] = set()
        self._raw_calls = 0

    @property
    def unique_nodes(self) -> int:
        """Number of distinct nodes accessed — the paper's query cost."""
        return len(self._seen)

    @property
    def raw_calls(self) -> int:
        """Total API invocations including repeats."""
        return self._raw_calls

    def seen(self, node: int) -> bool:
        """True if *node* was already accessed (its result is cached)."""
        return node in self._seen

    def charge(self, node: int) -> bool:
        """Record an access to *node*; returns True if it was a new node."""
        self._raw_calls += 1
        if node in self._seen:
            return False
        self._seen.add(node)
        return True

    def snapshot(self) -> "QueryCounterSnapshot":
        """Immutable view of the current counts (cheap, for deltas)."""
        return QueryCounterSnapshot(self.unique_nodes, self._raw_calls)

    def reset(self) -> None:
        """Forget everything (new measurement epoch)."""
        self._seen.clear()
        self._raw_calls = 0


@dataclass(frozen=True)
class QueryCounterSnapshot:
    """Point-in-time counter values, used to compute per-phase costs."""

    unique_nodes: int
    raw_calls: int

    def cost_since(self, later: "QueryCounterSnapshot") -> int:
        """Unique-node cost accrued between this snapshot and *later*."""
        return later.unique_nodes - self.unique_nodes


class QueryBudget:
    """A hard cap on unique-node query cost.

    ``None`` means unlimited.  The API consults :meth:`check` *before*
    executing a charging query so a run never silently overshoots.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"budget limit must be >= 0, got {limit}")
        self.limit = limit

    def check(self, counter: QueryCounter, node: int) -> None:
        """Raise if charging *node* would exceed the budget.

        Cached (already-seen) nodes never raise: they cost nothing.
        """
        if self.limit is None or counter.seen(node):
            return
        if counter.unique_nodes + 1 > self.limit:
            raise QueryBudgetExceededError(self.limit, counter.unique_nodes)

    def remaining(self, counter: QueryCounter) -> Optional[int]:
        """Unique-node queries left, or None when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - counter.unique_nodes)

    def __repr__(self) -> str:
        return f"QueryBudget(limit={self.limit})"
