"""Query accounting: counters, budgets, and logs.

The paper's efficiency measure is *query cost* — "the number of nodes it has
to access in order to obtain a predetermined number of samples" (§2.4).
Re-querying a node a crawler has already seen is free in this model (the
response can be cached locally), so :class:`QueryCounter` counts **unique**
nodes by default while still tracking raw calls for diagnostics.

Two access grains coexist.  The scalar grain (:meth:`QueryCounter.seen` /
:meth:`QueryCounter.charge`) serves the per-step walkers; the batch grain
(:meth:`QueryCounter.seen_many` / :meth:`QueryCounter.charge_batch`) lets K
simultaneous walks settle their whole step in one operation — membership is
decided by one binary search over a lazily maintained sorted id array
rather than K Python set probes, which is what keeps accounting off the
critical path of the batched charged-API engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.arrays import sorted_lookup
from repro.errors import ConfigurationError, QueryBudgetExceededError


@dataclass
class QueryLog:
    """Append-only record of issued queries (node id per call)."""

    entries: List[int] = field(default_factory=list)
    enabled: bool = False

    def record(self, node: int) -> None:
        """Append *node* if logging is enabled."""
        if self.enabled:
            self.entries.append(node)

    def record_many(self, nodes) -> None:
        """Append every id in *nodes* if logging is enabled."""
        if self.enabled:
            self.entries.extend(int(n) for n in nodes)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()


class QueryCounter:
    """Counts unique-node accesses and raw API calls."""

    def __init__(self) -> None:
        self._seen: set[int] = set()
        self._raw_calls = 0
        self._seen_ids: Optional[np.ndarray] = None

    @property
    def unique_nodes(self) -> int:
        """Number of distinct nodes accessed — the paper's query cost."""
        return len(self._seen)

    @property
    def raw_calls(self) -> int:
        """Total API invocations including repeats."""
        return self._raw_calls

    def seen(self, node: int) -> bool:
        """True if *node* was already accessed (its result is cached)."""
        return node in self._seen

    def seen_ids(self) -> np.ndarray:
        """Sorted array of every charged node id (rebuilt lazily on growth)."""
        if self._seen_ids is None:
            self._seen_ids = np.fromiter(
                self._seen, dtype=np.int64, count=len(self._seen)
            )
            self._seen_ids.sort()
        return self._seen_ids

    def seen_many(self, nodes) -> np.ndarray:
        """Vectorized :meth:`seen`: boolean mask for an array of node ids."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return sorted_lookup(self.seen_ids(), nodes)[1]

    def charge(self, node: int) -> bool:
        """Record an access to *node*; returns True if it was a new node."""
        self._raw_calls += 1
        if node in self._seen:
            return False
        self._seen.add(node)
        self._seen_ids = None
        return True

    def charge_batch(self, nodes) -> np.ndarray:
        """Record one access per entry of *nodes* in a single operation.

        Returns the mask of entries that charged a *new* unique node
        (duplicates within the batch charge on their first occurrence
        only, exactly as the equivalent sequence of :meth:`charge` calls
        would).  Raw calls grow by ``len(nodes)``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        self._raw_calls += int(nodes.size)
        if nodes.size == 0:
            return np.zeros(0, dtype=bool)
        new = ~self.seen_many(nodes)
        if np.any(new):
            first = np.zeros(nodes.size, dtype=bool)
            first[np.unique(nodes, return_index=True)[1]] = True
            new &= first
            fresh = nodes[new]
            self._seen.update(fresh.tolist())
            if self._seen_ids is not None:
                # Linear merge instead of invalidate-and-resort: keeps a
                # long campaign's per-batch accounting at O(S + k log S)
                # rather than O(S log S) per level.
                fresh = np.sort(fresh)
                self._seen_ids = np.insert(
                    self._seen_ids, np.searchsorted(self._seen_ids, fresh), fresh
                )
        return new

    def record_raw(self, count: int) -> None:
        """Count *count* extra raw invocations that charged nothing new."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._raw_calls += count

    def state(self) -> tuple[tuple[int, ...], int]:
        """Canonical full state: ``(sorted seen ids, raw_calls)``.

        Two counters that report equal states have charged exactly the
        same node set and made the same number of raw invocations — the
        equality the async-vs-serial crawl parity tests pin, stronger
        than comparing the two scalar totals.
        """
        return tuple(int(n) for n in self.seen_ids()), self._raw_calls

    def snapshot(self) -> "QueryCounterSnapshot":
        """Immutable view of the current counts (cheap, for deltas)."""
        return QueryCounterSnapshot(self.unique_nodes, self._raw_calls)

    def delta(self, since: "QueryCounterSnapshot") -> "QueryCostDelta":
        """Cost accrued since an earlier :meth:`snapshot` (phase attribution).

        The standard way to price one phase of a campaign (crawl vs walk
        vs backward estimation): snapshot before, ``delta`` after — no
        ad-hoc arithmetic at call sites.
        """
        return QueryCostDelta(
            unique_nodes=self.unique_nodes - since.unique_nodes,
            raw_calls=self._raw_calls - since.raw_calls,
        )

    def restore(self, seen, raw_calls: int) -> None:
        """Adopt a checkpointed state: the seen-id set and raw-call count.

        The inverse of :meth:`state` for the crash-recovery path — a
        restored counter reports exactly the state the snapshot captured,
        so repeat lookups of already-paid-for nodes stay free (§2.4)
        across a service restart.  Replaces whatever the counter held.
        """
        if raw_calls < 0:
            raise ValueError(f"raw_calls must be >= 0, got {raw_calls}")
        self._seen = {int(node) for node in seen}
        self._raw_calls = int(raw_calls)
        self._seen_ids = None

    def reset(self) -> None:
        """Forget everything (new measurement epoch)."""
        self._seen.clear()
        self._raw_calls = 0
        self._seen_ids = None


@dataclass(frozen=True)
class QueryCounterSnapshot:
    """Point-in-time counter values, used to compute per-phase costs."""

    unique_nodes: int
    raw_calls: int

    def cost_since(self, later: "QueryCounterSnapshot") -> int:
        """Unique-node cost accrued between this snapshot and *later*."""
        return later.unique_nodes - self.unique_nodes


@dataclass(frozen=True)
class QueryCostDelta:
    """Cost attributed to one phase: unique-node and raw-call increments."""

    unique_nodes: int
    raw_calls: int


class TenantLedger:
    """Per-tenant attribution of one global :class:`QueryCounter`'s charge.

    The serving layer multiplexes many tenants over a single charged API,
    so §2.4's cost model needs a second axis: *who* caused each unique-node
    charge.  The ledger does not intercept queries — the counter stays the
    single source of truth — it brackets each phase of work with
    :meth:`attribute`, measuring the counter's ``unique_nodes`` before and
    after and booking the difference to the phase's tenant.  Because the
    charged API is cacheable, a unique-node charge happens exactly once,
    at the moment the first tenant touches the node: rows one tenant paid
    for are free for every later tenant (the whole point of the shared
    :class:`~repro.graphs.discovered.DiscoveredGraph`), and the ledger's
    books reflect that automatically.

    **Balance invariant.**  Per-tenant charges are accumulated
    independently of the counter's own total, so
    ``sum(charges().values()) + unattributed() == counter.unique_nodes -
    baseline`` is a real cross-check, not an identity;
    :meth:`assert_balanced` additionally demands that *nothing* escaped
    attribution — the property the service bench pins ("per-tenant budgets
    sum exactly to the global ``QueryCounter`` charge").

    Attribution phases cannot nest or overlap: with one shared counter
    there is no way to split a concurrent delta between two tenants, and
    the serving layer's cooperative scheduler never needs to — exactly one
    tenant's work charges the API at a time.
    """

    def __init__(self, counter: QueryCounter) -> None:
        self.counter = counter
        #: Counter charge present before the ledger started watching; never
        #: attributed to anyone.
        self.baseline = counter.unique_nodes
        self._charges: Dict[str, int] = {}
        self._open_phase: Optional[str] = None

    @contextmanager
    def attribute(self, tenant: str) -> Iterator[None]:
        """Book every unique-node charge inside the ``with`` to *tenant*.

        Attribution is exception-safe: if the phase raises (typically
        :class:`~repro.errors.QueryBudgetExceededError` after the API
        charged the affordable prefix of a batch), the prefix that *was*
        charged is still booked before the exception propagates.
        """
        if not tenant:
            raise ConfigurationError("tenant must be a non-empty string")
        if self._open_phase is not None:
            raise ConfigurationError(
                f"attribution phase for tenant {self._open_phase!r} is still "
                f"open; phases cannot nest or overlap"
            )
        self._open_phase = tenant
        before = self.counter.unique_nodes
        try:
            yield
        finally:
            self._open_phase = None
            delta = self.counter.unique_nodes - before
            if delta:
                self._charges[tenant] = self._charges.get(tenant, 0) + delta

    def charged(self, tenant: str) -> int:
        """Unique-node charge booked to *tenant* so far."""
        return self._charges.get(tenant, 0)

    def charges(self) -> Dict[str, int]:
        """Copy of the per-tenant charge map (tenants with charge > 0)."""
        return dict(self._charges)

    def total_attributed(self) -> int:
        """Sum of all per-tenant charges."""
        return sum(self._charges.values())

    def unattributed(self) -> int:
        """Charge accrued outside any :meth:`attribute` phase."""
        return self.counter.unique_nodes - self.baseline - self.total_attributed()

    def restore(self, baseline: int, charges: Dict[str, int]) -> None:
        """Adopt a checkpointed ledger state (baseline + per-tenant books).

        The counter must already hold its restored state — the balance
        invariant is checked against it immediately, so a mismatched pair
        of snapshots fails loudly at restore time instead of at the next
        :meth:`assert_balanced`.
        """
        if self._open_phase is not None:
            raise ConfigurationError(
                "cannot restore a ledger while an attribution phase is open"
            )
        self.baseline = int(baseline)
        self._charges = {str(tenant): int(charge) for tenant, charge in charges.items()}
        self.assert_balanced()

    def assert_balanced(self) -> None:
        """Raise unless every post-baseline charge is booked to a tenant.

        This is the provable-sum property the multi-tenant bench asserts:
        ``sum(charges().values()) == counter.unique_nodes - baseline``.
        """
        leak = self.unattributed()
        if leak:
            raise ConfigurationError(
                f"{leak} unique-node charges escaped tenant attribution "
                f"(attributed {self.total_attributed()}, counter at "
                f"{self.counter.unique_nodes}, baseline {self.baseline})"
            )

    def __repr__(self) -> str:
        return (
            f"TenantLedger(tenants={len(self._charges)}, "
            f"attributed={self.total_attributed()}, "
            f"unattributed={self.unattributed()})"
        )


class QueryBudget:
    """A hard cap on unique-node query cost.

    ``None`` means unlimited.  The API consults :meth:`check` *before*
    executing a charging query so a run never silently overshoots.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"budget limit must be >= 0, got {limit}")
        self.limit = limit

    def check(self, counter: QueryCounter, node: int) -> None:
        """Raise if charging *node* would exceed the budget.

        Cached (already-seen) nodes never raise: they cost nothing.
        """
        if self.limit is None or counter.seen(node):
            return
        if counter.unique_nodes + 1 > self.limit:
            raise QueryBudgetExceededError(self.limit, counter.unique_nodes)

    def remaining(self, counter: QueryCounter) -> Optional[int]:
        """Unique-node queries left, or None when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - counter.unique_nodes)

    def affordable(self, counter: QueryCounter, requested: int) -> int:
        """How many of *requested* new unique nodes the budget still covers.

        The batch API uses this to enforce the budget per batch: it
        charges the affordable prefix, then raises — so exhaustion
        surfaces *before* the first over-budget API call, never after.
        """
        left = self.remaining(counter)
        if left is None:
            return requested
        return min(requested, left)

    def __repr__(self) -> str:
        return f"QueryBudget(limit={self.limit})"
