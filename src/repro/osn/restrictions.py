"""Neighbor-access restrictions (paper §6.3.1).

Real OSN APIs rarely return a user's complete neighbor list.  The paper
classifies the restrictions into three types and argues their impact is
limited; this module implements all three so that claim can be tested:

1. :class:`RandomKRestriction` — each call returns a *fresh* random subset
   of k neighbors (different calls may disagree);
2. :class:`FixedRandomKRestriction` — a random-but-fixed subset of k
   neighbors (every call returns the same subset);
3. :class:`TruncatedKRestriction` — the first l neighbors in a fixed
   arbitrary order (Twitter's 5000-follower page is the paper's example).

The paper notes types (2) and (3) are statistically indistinguishable to a
third party; tests verify that too.  For types (2)/(3) the paper prescribes
walking only edges that pass a *bidirectional check* (``u ∈ N(v) and
v ∈ N(u)``) — see :func:`mutual_neighbors`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RngLike, ensure_rng

Node = int


class NeighborRestriction(ABC):
    """Transforms a true neighbor tuple into what the API exposes."""

    @abstractmethod
    def apply(self, node: Node, neighbors: Tuple[Node, ...]) -> Tuple[Node, ...]:
        """Visible neighbor tuple for *node* given the true *neighbors*."""

    def reset(self) -> None:
        """Forget per-node state (used between experiment repetitions)."""


class RandomKRestriction(NeighborRestriction):
    """Type (1): every call sees a fresh uniform subset of size ≤ k."""

    def __init__(self, k: int, seed: RngLike = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = ensure_rng(seed)

    def apply(self, node: Node, neighbors: Tuple[Node, ...]) -> Tuple[Node, ...]:
        if len(neighbors) <= self.k:
            return neighbors
        picked = self._rng.choice(len(neighbors), size=self.k, replace=False)
        return tuple(sorted(neighbors[int(i)] for i in picked))


class FixedRandomKRestriction(NeighborRestriction):
    """Type (2): a per-node random subset of size ≤ k, stable across calls."""

    def __init__(self, k: int, seed: RngLike = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._seed_root = ensure_rng(seed).integers(0, 2**63 - 1)
        self._cache: Dict[Node, Tuple[Node, ...]] = {}

    def apply(self, node: Node, neighbors: Tuple[Node, ...]) -> Tuple[Node, ...]:
        if len(neighbors) <= self.k:
            return neighbors
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        # Derive the subset from (root seed, node) so it is stable per node
        # without retaining one Generator per node.
        rng = np.random.default_rng((int(self._seed_root), node))
        picked = rng.choice(len(neighbors), size=self.k, replace=False)
        visible = tuple(sorted(neighbors[int(i)] for i in picked))
        self._cache[node] = visible
        return visible

    def reset(self) -> None:
        self._cache.clear()


class TruncatedKRestriction(NeighborRestriction):
    """Type (3): the first l neighbors in the API's fixed order."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        self.limit = limit

    def apply(self, node: Node, neighbors: Tuple[Node, ...]) -> Tuple[Node, ...]:
        return neighbors[: self.limit]


def _expected_distinct(d: float, k: float, rounds: int) -> float:
    """E[distinct neighbors seen] after *rounds* k-subsets of a d-set."""
    return d * (1.0 - (1.0 - k / d) ** rounds)


def mark_recapture_degree(api, node: Node, rounds: int = 6) -> float:
    """Estimate a node's *true* degree under the type-1 restriction.

    The paper (§6.3.1) points to mark-and-recapture [20, 34]: call the
    neighbors API repeatedly — each call returns a fresh random k-subset of
    the true neighbor set — and infer the set's size from how the captures
    overlap.  Classic Lincoln–Petersen uses pairwise overlaps, but for
    high-degree nodes (``d ≫ k²``) most pairs share nothing and the
    estimator degenerates.  This implementation inverts the expected
    *distinct count* instead: after ``r`` rounds of ``k``-subsets drawn
    from a ``d``-set,

        E[distinct] = d · (1 - (1 - k/d)^r),

    which stays informative whenever the rounds overlap at all.  The
    estimate is the ``d`` solving that equation for the observed distinct
    count (bisection; the function is increasing in ``d``), clamped when
    all captures were disjoint (the observation then only lower-bounds d).

    Repeat calls to an already-fetched node are raw API calls but cost no
    *unique* queries, so under the paper's cost model (§2.4) the extra
    rounds are free.

    Under no restriction — or types 2/3, whose responses are call-stable —
    every call returns the same set, the distinct count equals k, and the
    estimator collapses to the visible degree, so it is always safe to use.
    """
    if rounds < 2:
        raise ConfigurationError(f"need at least 2 rounds, got {rounds}")
    captures = [frozenset(api.neighbors(node)) for _ in range(rounds)]
    k = max(len(c) for c in captures)
    if k == 0:
        return 0.0
    distinct = len(frozenset().union(*captures))
    if distinct <= k:
        # Every round returned the same set: the full list is visible.
        return float(distinct)
    ceiling = 1e9
    if distinct >= rounds * k:
        # All captures disjoint: d is only lower-bounded; return a
        # conservative multiple of the bound rather than the ceiling.
        return float(distinct * rounds)
    low, high = float(distinct), ceiling
    for _ in range(200):
        mid = 0.5 * (low + high)
        if _expected_distinct(mid, k, rounds) < distinct:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def mutual_neighbors(api, node: Node) -> Tuple[Node, ...]:
    """Neighbors of *node* passing the paper's bidirectional check.

    Keeps edge ``(node, v)`` only when ``v ∈ N(node)`` *and*
    ``node ∈ N(v)`` under the restricted interface (§6.3.1, "Impact of
    Restrictions of Type (2) and (3)").  Each check queries ``v``, so this
    costs queries — exactly as it would against a real OSN.

    Parameters
    ----------
    api:
        A :class:`~repro.osn.api.SocialNetworkAPI` (typed loosely to avoid
        an import cycle).
    """
    visible = api.neighbors(node)
    return tuple(v for v in visible if node in api.neighbors(v))
